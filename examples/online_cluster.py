#!/usr/bin/env python
"""Online cluster operation: jobs arrive, run, and leave.

The paper's technique is static — it maps one fixed set of applications.
Real NOWs churn.  This example replays a submission/termination trace
against the :class:`repro.core.dynamic.DynamicScheduler`:

- each arrival is placed on the *free* switches minimizing its own
  intracluster cost (same criterion, restricted search);
- churn fragments the machine and the global quality `F_G` decays;
- a periodic `rebalance()` re-runs the full Tabu optimization and shows
  how much a migration would recover.

Run:  python examples/online_cluster.py
"""

from repro import random_irregular_topology
from repro.core import DynamicScheduler, LogicalCluster
from repro.util.reporting import Table

TRACE = [
    ("submit", LogicalCluster("fluid-sim", 16)),
    ("submit", LogicalCluster("render", 16)),
    ("submit", LogicalCluster("genomics", 16)),
    ("submit", LogicalCluster("video", 16)),
    ("remove", "render"),
    ("remove", "fluid-sim"),
    ("submit", LogicalCluster("ml-train", 32)),   # forced onto fragments
    ("remove", "genomics"),
    ("submit", LogicalCluster("web-cache", 16)),
]


def main() -> None:
    topo = random_irregular_topology(16, seed=42)
    dyn = DynamicScheduler(topo)
    log = Table(["event", "application", "placed on switches", "util", "F_G"],
                title="job trace on a 16-switch / 64-workstation NOW:")

    for step, (action, arg) in enumerate(TRACE):
        if action == "submit":
            placement = dyn.submit(arg, seed=step)
            detail = "(" + ",".join(map(str, placement.switches)) + ")"
            name = arg.name
        else:
            dyn.remove(arg)
            detail, name = "-", arg
        f_g = dyn.scores()["F_G"] if len(dyn.placements) > 1 else float("nan")
        log.add_row([action, name, detail, dyn.utilization, f_g])
    print(log.render())

    print("\nfragmentation after churn:")
    print(f"  resident: {sorted(dyn.placements)}")
    incumbent = dyn.scores()
    print(f"  F_G={incumbent['F_G']:.4f}  C_c={incumbent['C_c']:.4f}")

    out = dyn.rebalance(seed=99)
    print("\nglobal rebalance (would require migrating processes):")
    print(f"  F_G {out['incumbent_f_g']:.4f} -> {out['optimized_f_g']:.4f} "
          f"(improvement {out['improvement']:.4f})")
    dyn.apply_rebalance(out["partition"])
    print(f"  applied; C_c now {dyn.scores()['C_c']:.4f}")


if __name__ == "__main__":
    main()
