#!/usr/bin/env python
"""Integrated scheduling in a heterogeneous datacenter.

Section 1 of the paper sketches the full system: "an ideal scheduling
strategy would map the processes to processors taking into account both
the computational and the communication requirements [...] The scheduler
would choose either a computation-aware or a communication-aware task
scheduling strategy depending on the kind of requirements that leads to
the system performance bottleneck."

This example drives that selector on two workload profiles over the same
24-switch machine:

1. a render farm — CPU-heavy tasks that barely talk (computation wins:
   classic Min-min over the ETC matrix);
2. a streaming analytics pipeline — light tasks exchanging data constantly
   (communication wins: the paper's Tabu mapping).

Run:  python examples/heterogeneous_datacenter.py
"""

import numpy as np

from repro import Workload, four_rings_topology
from repro.hetsched import IntegratedScheduler, generate_etc
from repro.util.reporting import Table


def main() -> None:
    topo = four_rings_topology()
    scheduler = IntegratedScheduler(topo)
    workload = Workload.uniform(4, 24)  # 96 processes, 4 applications
    report = Table(
        ["profile", "comm pressure", "comp pressure", "chosen strategy"],
        title="bottleneck analysis per workload profile:",
    )

    profiles = {
        # (ETC heterogeneity, flits each process wants to inject per cycle)
        "render farm": (
            generate_etc(96, 96, task_heterogeneity=500,
                         machine_heterogeneity=20, seed=1),
            0.001,
        ),
        "stream pipeline": (
            generate_etc(96, 96, task_heterogeneity=5,
                         machine_heterogeneity=2, seed=2),
            0.40,
        ),
    }

    for name, (etc, comm_rate) in profiles.items():
        result = scheduler.schedule(workload, etc, comm_rate, seed=5)
        est = result.estimate
        report.add_row([name, est.comm_pressure, est.comp_pressure,
                        result.strategy])
        print(f"\n== {name} ==")
        print("  ", est.summary())
        if result.strategy == "communication":
            print("   -> communication-aware mapping (Tabu over the table "
                  "of equivalent distances)")
            print("   ", result.comm_result.summary())
        else:
            sched = result.comp_result
            loads = np.bincount(sched.assignment, minlength=etc.shape[1])
            print("   -> computation-aware mapping "
                  f"({scheduler.comp_heuristic.name}): makespan "
                  f"{sched.makespan:.1f}, busiest machine runs "
                  f"{int(loads.max())} tasks")

    print()
    print(report.render())


if __name__ == "__main__":
    main()
