#!/usr/bin/env python
"""Regular vs irregular topologies: the technique is topology-agnostic.

The paper closes Section 2 with: "this scheduling technique is applicable
to both regular and irregular topologies".  This example runs the full
pipeline (up*/down* routing → equivalent distances → Tabu) over a family
of networks and reports, for each: the clustering coefficient achieved,
the gap to random mappings, and whether the distance model deviates from
plain hop counts (i.e. where the resistance model actually matters).

Run:  python examples/topology_study.py
"""

from repro import (
    CommunicationAwareScheduler,
    Workload,
    four_rings_topology,
    random_irregular_topology,
)
from repro.distance.metrics import distance_hop_correlation, triangle_violations
from repro.distance.table import hop_distance_table
from repro.topology.designed import (
    hypercube_topology,
    mesh_topology,
    torus_topology,
)
from repro.util.reporting import Table
from repro.util.stats import summarize


def study(name, topo, clusters, per_cluster):
    scheduler = CommunicationAwareScheduler(topo)
    workload = Workload.uniform(
        clusters, per_cluster * topo.hosts_per_switch
    )
    op = scheduler.schedule(workload, seed=1)
    randoms = [scheduler.random_schedule(workload, seed=100 + s).c_c
               for s in range(8)]
    hops = hop_distance_table(scheduler.routing)
    return {
        "topology": name,
        "switches": topo.num_switches,
        "C_c (OP)": op.c_c,
        "C_c (random mean)": summarize(randoms)["mean"],
        "tri. violations": triangle_violations(scheduler.table),
        "corr(T, hops)": distance_hop_correlation(scheduler.table, hops),
    }


def main() -> None:
    cases = [
        ("random irregular 16", random_irregular_topology(16, seed=42), 4, 4),
        ("random irregular 24", random_irregular_topology(24, seed=42), 4, 6),
        ("four rings 4x6", four_rings_topology(), 4, 6),
        ("mesh 4x4", mesh_topology(4, 4), 4, 4),
        ("torus 4x4", torus_topology(4, 4), 4, 4),
        ("hypercube 4d", hypercube_topology(4), 4, 4),
    ]
    rows = [study(*case) for case in cases]
    t = Table(list(rows[0].keys()),
              title="communication-aware scheduling across topology families:")
    for row in rows:
        t.add_row(list(row.values()), digits=3)
    print(t.render())
    print(
        "\nReading the table: C_c(OP) >> C_c(random) on every family — the "
        "technique is\ntopology-agnostic.  'tri. violations' > 0 shows the "
        "equivalent-distance table is\nnot a metric (why the paper uses "
        "combinatorial search, not Euclidean clustering);\ncorr(T, hops) < 1 "
        "marks the topologies where path diversity makes the resistance\n"
        "model genuinely different from hop counting."
    )


if __name__ == "__main__":
    main()
