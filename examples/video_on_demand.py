#!/usr/bin/env python
"""Video-on-demand farm: bandwidth-bound applications of unequal intensity.

The paper motivates communication-aware scheduling with "applications with
huge network bandwidth requirements, like multimedia applications,
video-on-demand applications".  This example models a NOW shared by three
VoD services and one batch-analytics application:

- the VoD services stream constantly (high communication weight);
- analytics communicates rarely (low weight);
- a small fraction of traffic crosses applications (front-end fan-out),
  exercising the library's extension beyond the paper's 100 %-intracluster
  assumption.

The scheduler still only sees the topology (weights affect the *traffic*,
not the paper's objective), yet the mapping it produces keeps each
service's streams on dedicated switch clusters, which is exactly what the
heavy services need.

Run:  python examples/video_on_demand.py
"""

from repro import (
    CommunicationAwareScheduler,
    IntraClusterTraffic,
    LogicalCluster,
    RoutingTable,
    SimulationConfig,
    WormholeNetworkSimulator,
    Workload,
    random_irregular_topology,
)
from repro.util.reporting import Table


def main() -> None:
    topo = random_irregular_topology(20, seed=11, name="vod-now")
    workload = Workload([
        LogicalCluster("vod-news", 16, comm_weight=3.0),
        LogicalCluster("vod-sports", 16, comm_weight=3.0),
        LogicalCluster("vod-movies", 24, comm_weight=2.0),
        LogicalCluster("analytics", 24, comm_weight=0.5),
    ])
    print(f"machine: {topo.num_switches} switches / {topo.num_hosts} hosts")
    print(f"workload: {workload}")

    scheduler = CommunicationAwareScheduler(topo)
    op = scheduler.schedule(workload, seed=3)
    rnd = scheduler.random_schedule(workload, seed=30)

    print("\nper-application switch clusters (scheduled):")
    for app, members in zip(workload.clusters, op.partition.clusters()):
        print(f"  {app.name:<12} -> switches {members} "
              f"(weight {app.comm_weight})")

    table = RoutingTable(scheduler.routing)
    config = SimulationConfig(warmup_cycles=500, measure_cycles=2000, seed=2)
    base_rate = 0.012  # heavy services inject 3x this via their weight

    report = Table(
        ["mapping", "C_c", "accepted (flits/sw/cy)", "avg latency (cycles)"],
        title="\nweighted intracluster traffic, 10% cross-application:",
    )
    for name, result in (("scheduled", op), ("random", rnd)):
        traffic = IntraClusterTraffic(
            result.mapping, intercluster_fraction=0.10, weighted=True
        )
        sim = WormholeNetworkSimulator(table, traffic, base_rate, config)
        out = sim.run()
        report.add_row([name, result.c_c,
                        out.accepted_flits_per_switch_cycle, out.avg_latency])
    print(report.render())
    print("\nEven with weighted injection and 10% cross-application traffic, "
          "the communication-aware\nmapping sustains more stream bandwidth — "
          "the streams of each VoD service stay on\ntheir own switches "
          "instead of crossing the network core.")


if __name__ == "__main__":
    main()
