#!/usr/bin/env python
"""Quickstart: schedule four parallel applications on a 64-workstation NOW.

Builds the paper's standard scenario — a random irregular network of 16
eight-port switches (4 workstations each), four applications of 16
processes — runs the communication-aware Tabu scheduler, and compares the
resulting mapping against random placement both *a priori* (clustering
coefficient) and *measured* (flit-level simulation at a saturating load).

Run:  python examples/quickstart.py
"""

from repro import (
    CommunicationAwareScheduler,
    IntraClusterTraffic,
    RoutingTable,
    SimulationConfig,
    WormholeNetworkSimulator,
    Workload,
    random_irregular_topology,
)
from repro.util.reporting import Table


def main() -> None:
    # 1. The machine: 16 switches x 4 workstations, 3 inter-switch links
    #    per switch, up*/down* routing (built by the scheduler).
    topo = random_irregular_topology(16, seed=42)
    print(f"machine: {topo.num_switches} switches, {topo.num_hosts} hosts, "
          f"{topo.num_links} links, diameter {topo.diameter()}")

    # 2. The workload: four applications ("users"), 16 processes each; all
    #    communication stays inside an application.
    workload = Workload.uniform(4, 16)

    # 3. Communication-aware scheduling (table of equivalent distances +
    #    multi-start Tabu search minimizing F_G).
    scheduler = CommunicationAwareScheduler(topo)
    op = scheduler.schedule(workload, seed=1)
    print("\nscheduled mapping (OP):")
    print(" ", op.summary())

    baseline = scheduler.random_schedule(workload, seed=100)
    print("random mapping (baseline):")
    print(" ", baseline.summary())

    # 4. Measure both mappings in the wormhole simulator at a load that
    #    saturates the random mapping.
    table = RoutingTable(scheduler.routing)
    config = SimulationConfig(warmup_cycles=500, measure_cycles=2000, seed=7)
    rate = 0.02  # messages / cycle / workstation

    report = Table(["mapping", "C_c", "offered", "accepted", "avg latency"],
                   title="\nsimulation at a saturating load "
                         "(flits/switch/cycle, cycles)")
    for name, result in (("OP", op), ("random", baseline)):
        sim = WormholeNetworkSimulator(
            table, IntraClusterTraffic(result.mapping), rate, config
        )
        out = sim.run()
        report.add_row([
            name,
            result.c_c,
            out.offered_flits_per_switch_cycle,
            out.accepted_flits_per_switch_cycle,
            out.avg_latency,
        ])
    print(report.render())
    print("\nThe scheduled mapping should accept substantially more traffic "
          "at lower latency;\nits clustering coefficient predicted that "
          "before a single message was simulated.")


if __name__ == "__main__":
    main()
