"""Benchmark: regenerate Figure 3 (simulation results, 16-switch network).

Paper shape: latency-vs-traffic curves for the OP mapping and 9 randomly
generated mappings over S1..S9; the OP mapping's saturation throughput is
far above every random mapping (the paper reports ~85 % higher), and its
clustering coefficient is visibly larger.
"""

from conftest import run_once

from repro.experiments.fig3_sim16 import render_fig3, run_fig3


def test_fig3_sim16(benchmark, setup16, bench_config, record):
    res = run_once(
        benchmark,
        lambda: run_fig3(setup16, num_random=9, config=bench_config),
    )
    record("fig3_sim16", render_fig3(res))

    # OP dominates every random mapping in saturation throughput.
    op_tp = res.saturation_throughput["OP"]
    for m in res.random_records:
        assert op_tp > res.saturation_throughput[m.name]

    # The gap is of the paper's order (>= 1.4x; paper: ~1.85x on its
    # unpublished topology).
    assert res.op_over_best_random > 1.4

    # C_c ranks OP first (the a-priori criterion agrees with measurement).
    assert res.op_record.c_c > max(m.c_c for m in res.random_records)

    # At the top load point, OP's latency is the lowest.
    k = len(res.rates) - 1
    op_lat = res.sweeps["OP"][k].result.avg_latency
    for m in res.random_records:
        assert op_lat < res.sweeps[m.name][k].result.avg_latency
