"""Ablation: Tabu tenure and restart count vs solution quality.

The paper fixes 10 restarts, 20 iterations/seed and an unspecified tenure
h.  This bench sweeps both knobs on the 16-switch network to show (a) the
method is robust to tenure, and (b) restarts are what buys reliability —
the justification for the paper's multi-start design.
"""

from conftest import run_once

from repro.core.scheduler import CommunicationAwareScheduler
from repro.search.base import SimilarityObjective
from repro.search.tabu import TabuSearch
from repro.topology.irregular import random_irregular_topology
from repro.util.reporting import Table
from repro.util.stats import summarize


def test_ablation_tabu_params(benchmark, record):
    topo = random_irregular_topology(16, seed=42)
    sched = CommunicationAwareScheduler(topo)
    obj = SimilarityObjective(sched.table, [4] * 4)
    reference = TabuSearch().run(obj, seed=0).best_value

    def run():
        rows = []
        for tenure in (0, 2, 5, 10):
            for restarts in (1, 3, 10):
                vals = [
                    TabuSearch(tenure=tenure, restarts=restarts)
                    .run(obj, seed=s).best_value
                    for s in range(5)
                ]
                stats = summarize(vals)
                rows.append({
                    "tenure": tenure,
                    "restarts": restarts,
                    "best F (mean)": stats["mean"],
                    "best F (worst)": stats["max"],
                    "hit optimum": sum(
                        1 for v in vals if v <= reference + 1e-9
                    ),
                })
        return rows

    rows = run_once(benchmark, run)
    t = Table(list(rows[0].keys()),
              title="ablation - Tabu tenure/restarts (5 seeds each)")
    for row in rows:
        t.add_row(list(row.values()), digits=4)
    record("ablation_tabu_params", t.render())

    # 10 restarts must be at least as reliable as 1 restart at any tenure.
    by_key = {(r["tenure"], r["restarts"]): r for r in rows}
    for tenure in (0, 2, 5, 10):
        assert by_key[(tenure, 10)]["best F (worst)"] <= \
            by_key[(tenure, 1)]["best F (worst)"] + 1e-9
