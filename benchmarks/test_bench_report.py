"""Benchmark: what the operator console costs the scheduling daemon.

Drives the same closed-loop request mix against two live loopback
daemons:

* **console off**: the default ``ServiceConfig`` — the PR-8 fast path.
* **console on**: the same config with ``console_port=0``, while a
  scraper thread hammers ``/metrics`` and ``/status`` for the whole
  run — the worst realistic observation load (a Prometheus scrape
  interval is 10-60 s; this scrapes continuously).

The console shares the daemon's event loop, so this measures exactly
the contention the observability tier can introduce.  The bar: the
scraped daemon finishes the identical workload within 3% wall-clock of
the unobserved one (plus a small constant so short runs aren't judged
on scheduler jitter), and every scrape returns valid Prometheus text
exposition.  Writes ``benchmarks/BENCH_report.json``.
"""

import json
import os
import threading
import time
from pathlib import Path

from conftest import run_once

from repro.obs.export import validate_exposition
from repro.service import ScheduleRequest, ServiceClient, ServiceConfig, \
    running_service
from repro.topology.irregular import random_irregular_topology

BENCH_PATH = Path(__file__).parent / "BENCH_report.json"

CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", 32))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", 6))
UNIQUE = 8
WORKERS = 2
MAX_CONSOLE_OVERHEAD = 1.03
CONSOLE_SLACK_SECONDS = 0.25


def _request_pool():
    topo = random_irregular_topology(8, seed=101, name="bench-console8")
    return [ScheduleRequest.build(topo, clusters=4, seed=s).to_dict()
            for s in range(UNIQUE)]


def _drive(address, payloads):
    """Closed-loop load (one outstanding request per client thread)."""
    host, port = address
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS + 1)

    def client(idx):
        try:
            with ServiceClient(host, port, timeout=300.0) as cli:
                barrier.wait()
                for r in range(ROUNDS):
                    cli.submit_payload(payloads[(idx + r) % len(payloads)])
        except Exception as exc:
            with lock:
                errors.append(f"client {idx}: {exc!r}")
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    assert not errors, errors
    return wall


def _scrape_forever(console_address, stop, results):
    """GET /metrics and /status every ~50 ms until told to stop.

    A 50 ms cadence is already 200-1000x denser than a real Prometheus
    scrape interval; a generous per-scrape timeout keeps a single
    event-loop stall under full scheduling load from failing the run —
    responsiveness is asserted via the scrape count and status codes.
    """
    import socket

    host, port = console_address
    while not stop.is_set():
        for path in ("/metrics", "/status"):
            try:
                with socket.create_connection((host, port),
                                              timeout=60) as sock:
                    sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
                    chunks = []
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        chunks.append(chunk)
            except OSError as exc:
                results["errors"].append(repr(exc))
                continue
            raw = b"".join(chunks)
            head, _, body = raw.partition(b"\r\n\r\n")
            if b" 200 " not in head.split(b"\r\n", 1)[0]:
                results["errors"].append(head.decode(errors="replace"))
            elif path == "/metrics":
                results["exposition_errors"] += \
                    validate_exposition(body.decode())
            results["scrapes"] += 1
        stop.wait(0.05)


def _phase(config, payloads, *, scrape=False):
    with running_service(config) as svc:
        results = {"scrapes": 0, "errors": [], "exposition_errors": []}
        stop = threading.Event()
        scraper = None
        if scrape:
            console = svc.status().console
            assert console is not None
            scraper = threading.Thread(
                target=_scrape_forever,
                args=((console["host"], console["port"]), stop, results),
                daemon=True)
            scraper.start()
        wall = _drive(svc.address, payloads)
        stop.set()
        if scraper is not None:
            scraper.join(timeout=30)
        status = svc.status()
    return {
        "requests": CLIENTS * ROUNDS,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(CLIENTS * ROUNDS / wall, 2),
        "served_computed": status.served["computed"],
        "served_store": status.served["store"],
        "scrapes": results["scrapes"],
    }, results


def test_bench_report_console_overhead(benchmark, record):
    payloads = _request_pool()
    off_cfg = ServiceConfig(port=0, workers=WORKERS, max_pending=256)
    on_cfg = ServiceConfig(port=0, workers=WORKERS, max_pending=256,
                           console_port=0)

    off, _ = _phase(off_cfg, payloads)
    on, scrape_results = run_once(
        benchmark, lambda: _phase(on_cfg, payloads, scrape=True))

    overhead = on["wall_seconds"] / off["wall_seconds"]
    lines = [
        "operator-console overhead: %d clients x %d rounds, %d unique"
        % (CLIENTS, ROUNDS, UNIQUE),
        f"  console off: {off['wall_seconds']:.3f}s "
        f"({off['throughput_rps']:.1f} req/s)",
        f"  console on:  {on['wall_seconds']:.3f}s "
        f"({on['throughput_rps']:.1f} req/s), "
        f"{on['scrapes']} scrapes answered",
        f"  overhead: {overhead:.3f}x wall "
        f"(bar: {MAX_CONSOLE_OVERHEAD:.2f}x + "
        f"{CONSOLE_SLACK_SECONDS:.2f}s)",
    ]
    record("report_console_overhead", "\n".join(lines))

    assert on["scrapes"] > 0, "the scraper never reached the console"
    assert not scrape_results["errors"], scrape_results["errors"][:5]
    assert not scrape_results["exposition_errors"], \
        scrape_results["exposition_errors"][:5]
    assert on["wall_seconds"] <= (
        off["wall_seconds"] * MAX_CONSOLE_OVERHEAD
        + CONSOLE_SLACK_SECONDS), (
        f"console cost {overhead:.3f}x wall under continuous scraping "
        f"(bar: {MAX_CONSOLE_OVERHEAD:.2f}x + {CONSOLE_SLACK_SECONDS:.2f}s)")

    payload = {
        "benchmark": "report_console",
        "clients": CLIENTS,
        "rounds_per_client": ROUNDS,
        "unique_requests": UNIQUE,
        "workers": WORKERS,
        "console_off": off,
        "console_on": on,
        "console_overhead_wall": round(overhead, 4),
        "max_console_overhead": MAX_CONSOLE_OVERHEAD,
        "scrapes_answered": on["scrapes"],
        "scrape_errors": 0,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
