"""Extension bench: process-level optimization under relaxed assumptions.

The paper's future work lifts the one-process-per-whole-switch assumption
and equal communication requirements.  This bench runs the process-level
optimizer (`repro.search.process_local`) on a workload whose cluster sizes
do not divide into switches and whose weights differ, then *measures* the
resulting mapping in the simulator against random process placement.
"""

from conftest import run_once

from repro.core.mapping import LogicalCluster, Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.search.process_local import (
    ProcessMappingOptimizer,
    random_process_mapping,
)
from repro.simulation.sweep import find_saturation_rate
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.irregular import random_irregular_topology
from repro.routing.tables import RoutingTable
from repro.util.reporting import Table


def test_process_level_extension(benchmark, bench_config, record):
    topo = random_irregular_topology(16, seed=42)
    sched = CommunicationAwareScheduler(topo)
    rt = RoutingTable(sched.routing)
    # 10 + 22 + 32 = 64 processes; none is a multiple of 4 except the last.
    workload = Workload([
        LogicalCluster("streaming", 10, comm_weight=3.0),
        LogicalCluster("simulation", 22, comm_weight=1.0),
        LogicalCluster("batch", 32, comm_weight=0.5),
    ])

    def run():
        opt = ProcessMappingOptimizer(sched.table, workload, topo)
        optimized = opt.optimize(seed=0, restarts=4)
        randoms = [
            random_process_mapping(workload, topo, seed=100 + s)
            for s in range(3)
        ]
        rows = []
        for name, mapping, cost in (
            [("optimized", optimized.mapping, optimized.cost)]
            + [
                (f"random-{i}", m, opt.cost_of(m))
                for i, m in enumerate(randoms)
            ]
        ):
            traffic = IntraClusterTraffic(mapping, weighted=True)
            tp = find_saturation_rate(rt, traffic, bench_config)["throughput"]
            rows.append({
                "mapping": name,
                "weighted cost": cost,
                "sat. throughput": tp,
            })
        return rows

    rows = run_once(benchmark, run)
    t = Table(list(rows[0].keys()),
              title="extension - process-level mapping, uneven weighted "
                    "workload")
    for row in rows:
        t.add_row(list(row.values()), digits=4)
    record("process_level_extension", t.render())

    opt_row = rows[0]
    for row in rows[1:]:
        assert opt_row["weighted cost"] < row["weighted cost"]
        assert opt_row["sat. throughput"] > row["sat. throughput"], (
            f"optimized mapping must out-deliver {row['mapping']}"
        )
