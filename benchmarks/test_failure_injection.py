"""Extension bench: exhaustive single-link failure injection.

For every link of the paper's 16-switch network: fail it, reconfigure
up*/down*, re-evaluate the stale OP mapping, re-schedule, and verify the
recovery ordering — plus a simulated spot-check that the rescheduled
mapping out-delivers the stale one on the degraded network.
"""

from conftest import run_once

from repro.core.scheduler import CommunicationAwareScheduler
from repro.experiments.failures import render_failure_study, run_failure_study
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.sweep import find_saturation_rate
from repro.simulation.traffic import IntraClusterTraffic
from repro.core.mapping import partition_to_mapping


def test_failure_injection(benchmark, setup16, bench_config, record):
    res = run_once(benchmark, lambda: run_failure_study(setup16))
    record("failure_injection", render_failure_study(res))

    assert all(r.still_connected for r in res.rows), \
        "the 3-regular evaluation network must survive any single failure"
    assert res.all_survivable_rescheduled_ok()
    recovered = sum(1 for r in res.survivable if (r.recovery or 0) > 1e-9)
    assert recovered >= len(res.rows) // 2, \
        "re-scheduling should recover quality after most failures"

    # Simulated spot check on the most damaging failure.
    worst = min(res.survivable, key=lambda r: r.c_c_degraded)
    failed = setup16.topology.without_link(*worst.link)
    sched = CommunicationAwareScheduler(failed, routing=UpDownRouting(failed))
    rt = RoutingTable(sched.routing)
    stale = setup16.op_mapping()
    stale_mapping = partition_to_mapping(stale.partition, setup16.workload,
                                         failed)
    fresh = sched.schedule(setup16.workload, seed=1)
    tp_stale = find_saturation_rate(
        rt, IntraClusterTraffic(stale_mapping), bench_config
    )["throughput"]
    tp_fresh = find_saturation_rate(
        rt, IntraClusterTraffic(fresh.mapping), bench_config
    )["throughput"]
    print(f"\nworst failure {worst.link}: stale throughput {tp_stale:.3f}, "
          f"rescheduled {tp_fresh:.3f}")
    assert tp_fresh >= 0.95 * tp_stale, \
        "rescheduled mapping must not lose to the stale one"
