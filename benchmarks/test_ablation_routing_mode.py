"""Ablation: deterministic vs adaptive up*/down* forwarding.

The distance model counts *all* shortest legal paths; whether the
simulator lets headers use them (adaptive) or pins one next hop per
(switch, destination) pair (deterministic) changes how much of that path
diversity is realized.  Both modes must preserve the OP > random ordering;
adaptive should deliver equal or better absolute throughput.
"""

from conftest import run_once

from dataclasses import replace

from repro.simulation.sweep import find_saturation_rate
from repro.simulation.traffic import IntraClusterTraffic
from repro.util.reporting import Table


def test_ablation_routing_mode(benchmark, setup16, bench_config, record):
    op = setup16.op_mapping()
    rnd = setup16.random_mappings(1)[0]

    def run():
        rows = []
        for adaptive in (True, False):
            cfg = replace(bench_config, adaptive=adaptive)
            for rec in (op, rnd):
                tp = find_saturation_rate(
                    setup16.routing_table, IntraClusterTraffic(rec.mapping),
                    cfg,
                )["throughput"]
                rows.append({
                    "forwarding": "adaptive" if adaptive else "deterministic",
                    "mapping": rec.name,
                    "sat. throughput": tp,
                })
        return rows

    rows = run_once(benchmark, run)
    t = Table(list(rows[0].keys()),
              title="ablation - adaptive vs deterministic up*/down*")
    for row in rows:
        t.add_row(list(row.values()), digits=4)
    record("ablation_routing_mode", t.render())

    by = {(r["forwarding"], r["mapping"]): r["sat. throughput"] for r in rows}
    # OP > random in both modes.
    assert by[("adaptive", "OP")] > by[("adaptive", rnd.name)]
    assert by[("deterministic", "OP")] > by[("deterministic", rnd.name)]
    # Adaptive never materially worse than deterministic.
    assert by[("adaptive", "OP")] >= 0.85 * by[("deterministic", "OP")]
