"""Benchmark: the Section 5.2 closing claim over multiple networks.

"The correlation index for any of the considered networks was higher than
70 % for simulation points at both low network load and network
saturation."
"""

from conftest import run_once

from repro.experiments.survey import render_survey, run_survey


def test_survey_topologies(benchmark, bench_config, record):
    res = run_once(
        benchmark,
        lambda: run_survey(topology_seeds=(42, 43, 44, 45),
                           num_random=5, config=bench_config),
    )
    record("survey_topologies", render_survey(res))

    assert res.all_correlations_above(0.6), (
        "C_c/performance correlation must hold on every surveyed network "
        "(paper threshold: 0.70 with its scalar; 0.60 asserted here to "
        "absorb sweep noise at this fidelity)"
    )
    assert res.min_ratio() > 1.2, \
        "the OP mapping must beat random mappings on every surveyed network"
