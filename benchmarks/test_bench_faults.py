"""Benchmark: repair vs full reschedule across fault counts.

Runs the fault-injection study on the paper's 16-switch network — every
single-link failure (k=1) plus sampled k=2 and k=3 multi-fault scenarios
(switch faults included) — and writes the repair-vs-full-reschedule
quality/time tradeoff per fault count to ``benchmarks/BENCH_faults.json``.

The headline numbers: warm-start repair reaches the same C_c floor as a
full multi-start reschedule on almost every survivable scenario at a
fraction of the search time, and every partitioning scenario degrades to a
per-component schedule instead of an error.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.experiments.failures import render_fault_study, run_fault_study
from repro.faults.model import sample_fault_scenarios, single_link_scenarios

BENCH_PATH = Path(__file__).parent / "BENCH_faults.json"
SEED = 1
SAMPLES = 6


def _scenarios_for(topology, k):
    if k == 1:
        return single_link_scenarios(topology)
    return sample_fault_scenarios(topology, num_faults=k, count=SAMPLES,
                                  seed=SEED, include_switches=True)


def _summarize(k, res, seconds):
    surv = res.survivable
    repair_s = sum(r.repair_seconds for r in surv)
    full_s = sum(r.reschedule_seconds for r in surv)
    gaps = [r.repair_gap for r in surv if r.repair_gap is not None]
    return {
        "faults": k,
        "scenarios": len(res.rows),
        "survivable": len(surv),
        "partitioned": len(res.partitioned),
        "degraded_mode": len(res.degraded_mode),
        "repair_seconds": round(repair_s, 4),
        "reschedule_seconds": round(full_s, 4),
        "repair_speedup": round(full_s / repair_s, 3) if repair_s else None,
        "mean_repair_gap": round(sum(gaps) / len(gaps), 6) if gaps else None,
        "max_repair_gap": round(max(gaps), 6) if gaps else None,
        "study_seconds": round(seconds, 4),
        "repair_ok": res.all_survivable_repaired_ok(),
    }


def test_bench_faults(benchmark, setup16, record):
    def study(k):
        scenarios = _scenarios_for(setup16.topology, k)
        t0 = time.perf_counter()
        res = run_fault_study(setup16, scenarios, seed=SEED)
        return res, time.perf_counter() - t0

    res1, sec1 = run_once(benchmark, lambda: study(1))
    record("fault_injection_k1", render_fault_study(res1))
    summaries = [_summarize(1, res1, sec1)]
    for k in (2, 3):
        res, sec = study(k)
        record(f"fault_injection_k{k}", render_fault_study(res))
        summaries.append(_summarize(k, res, sec))

    for s in summaries:
        assert s["repair_ok"], \
            f"k={s['faults']}: a repaired mapping fell below the degraded one"
    assert summaries[0]["survivable"] == summaries[0]["scenarios"], \
        "the 3-regular evaluation network must survive any single-link failure"

    payload = {
        "benchmark": "faults",
        "topology": setup16.topology.name,
        "seed": SEED,
        "samples_per_k": SAMPLES,
        "by_fault_count": summaries,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
