"""Benchmark: telemetry overhead guard.

The observability layer promises to be near-zero-cost when disabled and
provably inert when enabled.  This benchmark checks both on a fig-3-style
smoke sweep (16-switch OP mapping, a short load ladder, fast engine):

- *disabled* overhead is estimated noise-robustly: a microbenchmark
  measures the per-call cost of each disabled primitive (one contextvar
  read and return), the traced run counts how many telemetry calls the
  sweep actually makes, and the product is compared against the sweep's
  wall time.  Diffing two wall-clock runs directly would drown a
  sub-percent effect in scheduler jitter.
- *enabled* wall time is recorded for the report (informational only);
- payloads with tracing on and off must match bit-for-bit.

Results land in ``benchmarks/BENCH_obs.json``; the run fails if the
estimated disabled overhead exceeds ``MAX_DISABLED_OVERHEAD``.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

from conftest import run_once

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.sinks import MemorySink
from repro.obs.trace import Tracer, use_tracer
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import canonical_payload
from repro.simulation.sweep import run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic

BENCH_PATH = Path(__file__).parent / "BENCH_obs.json"

RATES = [0.00196, 0.00859, 0.01522]
REPS = 3
MICRO_CALLS = 200_000
MAX_DISABLED_OVERHEAD = 0.02      # 2% of sweep wall time

OBS_BENCH_CONFIG = SimulationConfig(
    message_length=16,
    buffer_flits=2,
    warmup_cycles=600,
    measure_cycles=2500,
    seed=7,
    engine="fast",
)


def _best_of(fn, reps=REPS):
    """Best-of-``reps`` wall time plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(reps):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _micro_disabled_cost():
    """Per-call seconds of each disabled telemetry primitive."""
    def spans():
        for _ in range(MICRO_CALLS):
            with _trace.span("bench.noop", x=1):
                pass

    def events():
        for _ in range(MICRO_CALLS):
            _trace.event("bench.noop", x=1)

    def incs():
        for _ in range(MICRO_CALLS):
            _metrics.inc("bench.noop")

    costs = {}
    for name, fn in [("span", spans), ("event", events), ("inc", incs)]:
        best, _ = _best_of(fn)
        costs[name] = best / MICRO_CALLS
    return costs


def _count_disabled_calls(fn):
    """Count telemetry-primitive hits during one *untraced* run.

    The module-level helpers are what instrumented code calls, so
    wrapping them with counters measures exactly how many no-op calls a
    telemetry-off run pays for — including registry-presence checks.
    """
    targets = [
        (_trace, "span"), (_trace, "event"), (_trace, "current_tracer"),
        (_metrics, "inc"), (_metrics, "observe"),
        (_metrics, "set_gauge"), (_metrics, "current_registry"),
    ]
    counts = {"n": 0}

    def wrap(orig):
        def inner(*args, **kwargs):
            counts["n"] += 1
            return orig(*args, **kwargs)
        return inner

    saved = [(mod, name, getattr(mod, name)) for mod, name in targets]
    for mod, name, orig in saved:
        setattr(mod, name, wrap(orig))
    try:
        fn()
    finally:
        for mod, name, orig in saved:
            setattr(mod, name, orig)
    return counts["n"]


def test_bench_obs_overhead(benchmark, setup16):
    mapping = setup16.op_mapping().mapping
    table = setup16.routing_table

    def sweep():
        traffic = IntraClusterTraffic(mapping)
        return run_load_sweep(table, traffic, RATES,
                              replace(OBS_BENCH_CONFIG))

    state = {}

    def measure():
        state["micro"] = _micro_disabled_cost()
        state["calls"] = _count_disabled_calls(sweep)
        state["plain_seconds"], plain = _best_of(sweep)
        sink = MemorySink()
        registry = MetricsRegistry()
        with use_tracer(Tracer(sink)), use_registry(registry):
            state["traced_seconds"], traced = _best_of(sweep)
        state["payloads_match"] = (
            [canonical_payload(p.result) for p in plain]
            == [canonical_payload(p.result) for p in traced]
        )

    run_once(benchmark, measure)

    assert state["payloads_match"], "tracing changed the sweep payloads"

    # One untraced sweep makes `calls` disabled-primitive calls; the
    # dearest primitive bounds the estimated overhead from above.
    worst_call = max(state["micro"].values())
    est_overhead = state["calls"] * worst_call / state["plain_seconds"]
    assert est_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry overhead {est_overhead:.2%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )

    payload = {
        "benchmark": "obs",
        "topology": setup16.topology.name,
        "rates": len(RATES),
        "reps_best_of": REPS,
        "warmup_cycles": OBS_BENCH_CONFIG.warmup_cycles,
        "measure_cycles": OBS_BENCH_CONFIG.measure_cycles,
        "micro_ns_per_call": {
            k: round(v * 1e9, 1) for k, v in state["micro"].items()
        },
        "telemetry_calls_per_sweep": state["calls"],
        "plain_seconds": round(state["plain_seconds"], 4),
        "traced_seconds": round(state["traced_seconds"], 4),
        "enabled_ratio": round(
            state["traced_seconds"] / state["plain_seconds"], 3),
        "disabled_overhead_estimate": round(est_overhead, 6),
        "disabled_overhead_limit": MAX_DISABLED_OVERHEAD,
        "bit_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
