"""Benchmark: Section 2/4.2 — Tabu vs the other heuristic search methods.

"We have tried several of the heuristic search methods [...] and we have
obtained the best results for a variant of the Tabu Search method.  This
heuristic provided the same or better clustering coefficients than other
methods with higher computational cost."
"""

from conftest import run_once

from repro.core.scheduler import CommunicationAwareScheduler
from repro.search.annealing import SimulatedAnnealing
from repro.search.base import SimilarityObjective
from repro.search.genetic import GeneticAlgorithm
from repro.search.gsa import GeneticSimulatedAnnealing
from repro.search.random_search import RandomSearch
from repro.search.tabu import TabuSearch
from repro.topology.designed import four_rings_topology
from repro.topology.irregular import random_irregular_topology
from repro.util.reporting import Table

METHODS = [
    ("tabu (paper)", TabuSearch()),
    ("annealing", SimulatedAnnealing(iterations=3000)),
    ("genetic", GeneticAlgorithm(population=40, generations=80)),
    ("gsa", GeneticSimulatedAnnealing(population=20, generations=120)),
    ("random x500", RandomSearch(samples=500)),
]


def test_heuristic_comparison(benchmark, record):
    networks = [
        ("16sw irregular", random_irregular_topology(16, seed=42), [4] * 4),
        ("24sw four-rings", four_rings_topology(), [6] * 4),
    ]

    def run():
        rows = []
        for net_name, topo, sizes in networks:
            sched = CommunicationAwareScheduler(topo)
            obj = SimilarityObjective(sched.table, sizes)
            for name, method in METHODS:
                res = method.run(obj, seed=1)
                scores = sched.evaluate(res.best_partition)
                rows.append({
                    "network": net_name,
                    "method": name,
                    "F_G": res.best_value,
                    "C_c": scores["C_c"],
                    "evaluations": res.evaluations,
                })
        return rows

    rows = run_once(benchmark, run)

    t = Table(list(rows[0].keys()),
              title="heuristic comparison (lower F_G / higher C_c is better)")
    for row in rows:
        t.add_row(list(row.values()), digits=4)
    record("heuristic_comparison", t.render())

    # Tabu is never materially beaten on either network.
    for net_name in {r["network"] for r in rows}:
        net_rows = [r for r in rows if r["network"] == net_name]
        tabu_f = next(r["F_G"] for r in net_rows if r["method"] == "tabu (paper)")
        best_f = min(r["F_G"] for r in net_rows)
        assert tabu_f <= best_f * 1.02 + 1e-12, (
            f"tabu lost on {net_name}: {tabu_f:.4f} vs best {best_f:.4f}"
        )
