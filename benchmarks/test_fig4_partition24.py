"""Benchmark: regenerate Figure 4 (partition of the designed 24-switch net).

Paper shape: on a network "especially designed with four interconnected
rings of 6 nodes", the scheduling technique identifies the rings.
"""

from conftest import run_once

from repro.experiments.fig4_partition24 import render_fig4, run_fig4


def test_fig4_partition24(benchmark, setup24, record):
    res = run_once(benchmark, lambda: run_fig4(setup24, seed=1))
    record("fig4_partition24", render_fig4(res))

    assert res.matches_expected is True, \
        "the technique must recover the four designed rings exactly"
    assert sorted(len(c) for c in res.partition.clusters()) == [6, 6, 6, 6]
