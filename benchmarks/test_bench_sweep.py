"""Benchmark: parallel load sweep vs the serial baseline.

Fig.-5-scale work: the OP mapping of the 24-switch four-ring network swept
across a multi-point load ladder.  Times the serial and process-pool runs,
asserts the LoadPoints are identical, and writes the measurements to
``benchmarks/BENCH_sweep.json``.  As with the search benchmark, the speedup
reflects the machine it ran on.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.parallel import detect_workers
from repro.simulation.sweep import make_load_points, run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic

BENCH_PATH = Path(__file__).parent / "BENCH_sweep.json"
NUM_POINTS = 6
MAX_RATE = 0.06


def test_bench_sweep(benchmark, setup24, bench_config):
    op = setup24.op_mapping()
    traffic = IntraClusterTraffic(op.mapping)
    rates = make_load_points(MAX_RATE, n=NUM_POINTS)
    workers = detect_workers()

    t0 = time.perf_counter()
    serial = run_load_sweep(setup24.routing_table, traffic, rates,
                            bench_config, workers=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_once(
        benchmark,
        lambda: run_load_sweep(setup24.routing_table, traffic, rates,
                               bench_config, workers="auto"),
    )
    parallel_seconds = time.perf_counter() - t0

    assert len(parallel) == len(serial) == NUM_POINTS
    for s, p in zip(serial, parallel):
        assert p.index == s.index and p.rate == s.rate
        assert p.result == s.result

    payload = {
        "benchmark": "sweep",
        "topology": setup24.topology.name,
        "points": NUM_POINTS,
        "max_rate": MAX_RATE,
        "warmup_cycles": bench_config.warmup_cycles,
        "measure_cycles": bench_config.measure_cycles,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
