"""Benchmark: parallel load sweep vs the serial baseline.

Fig.-5-scale work: the OP mapping of the 24-switch four-ring network swept
across a multi-point load ladder.  Times the serial and process-pool runs,
asserts the LoadPoints are identical, and writes the measurements to
``benchmarks/BENCH_sweep.json``.  As with the search benchmark, the speedup
reflects the machine it ran on.

Beyond the pool, the sweep's chunked dispatch lets batch-capable engines
run a whole worker chunk as ONE ``simulate_batch`` call instead of one
process-pool job per point.  The bench times that path too: a ``batch``
sweep (bit-identical to the serial baseline — asserted) and a ``vector``
sweep (the statistically-equivalent lockstep kernel), recording their
speedups over the serial scalar sweep.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

from conftest import run_once

from repro.parallel import detect_workers
from repro.simulation.engine import canonical_payload
from repro.simulation.sweep import make_load_points, run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic

BENCH_PATH = Path(__file__).parent / "BENCH_sweep.json"
NUM_POINTS = 6
MAX_RATE = 0.06


def test_bench_sweep(benchmark, setup24, bench_config):
    op = setup24.op_mapping()
    traffic = IntraClusterTraffic(op.mapping)
    rates = make_load_points(MAX_RATE, n=NUM_POINTS)
    workers = detect_workers()

    t0 = time.perf_counter()
    serial = run_load_sweep(setup24.routing_table, traffic, rates,
                            bench_config, workers=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_once(
        benchmark,
        lambda: run_load_sweep(setup24.routing_table, traffic, rates,
                               bench_config, workers="auto"),
    )
    parallel_seconds = time.perf_counter() - t0

    assert len(parallel) == len(serial) == NUM_POINTS
    for s, p in zip(serial, parallel):
        assert p.index == s.index and p.rate == s.rate
        assert p.result == s.result

    # Chunked batch-capable dispatch: the whole ladder as one
    # simulate_batch call.  ``batch`` must reproduce the serial scalar
    # sweep bit-identically; ``vector`` is timed under its statistical
    # contract (equivalence is enforced by the tier-1 suite, not here).
    t0 = time.perf_counter()
    chunked = run_load_sweep(setup24.routing_table, traffic, rates,
                             replace(bench_config, engine="batch"),
                             workers=1)
    batch_seconds = time.perf_counter() - t0
    for s, c in zip(serial, chunked):
        assert c.index == s.index and c.rate == s.rate
        assert canonical_payload(c.result) == canonical_payload(s.result)

    t0 = time.perf_counter()
    vector = run_load_sweep(setup24.routing_table, traffic, rates,
                            replace(bench_config, engine="vector"),
                            workers=1)
    vector_seconds = time.perf_counter() - t0
    assert len(vector) == NUM_POINTS
    assert all(v.result.messages_completed > 0 for v in vector)

    payload = {
        "benchmark": "sweep",
        "topology": setup24.topology.name,
        "points": NUM_POINTS,
        "max_rate": MAX_RATE,
        "warmup_cycles": bench_config.warmup_cycles,
        "measure_cycles": bench_config.measure_cycles,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "identical": True,
        "batch_chunk_seconds": round(batch_seconds, 4),
        "batch_chunk_speedup": round(serial_seconds / batch_seconds, 3),
        "batch_chunk_identical": True,
        "vector_chunk_seconds": round(vector_seconds, 4),
        "vector_chunk_speedup": round(serial_seconds / vector_seconds, 3),
        "notes": ("chunked dispatch sends one simulate_batch call per "
                  "worker chunk instead of one pool job per point; the "
                  "vector engine's per-cycle array overhead only "
                  "amortizes at many replications (see BENCH_engine.json "
                  "vector_ladder at 144 seeds), so a 6-point sweep is "
                  "not its regime"),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
