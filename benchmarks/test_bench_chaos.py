"""Benchmark: recovery latency after worker kill + degraded-mode throughput.

Two phases against live loopback daemons, both quantifying the
self-healing tier rather than raw speed:

* **recovery** — SIGKILL every pool worker, then immediately submit and
  time how long the supervised restart + re-dispatch path takes to
  produce a byte-correct reply, versus the fault-free baseline latency
  measured on the same daemon.
* **degraded** — trip the circuit breaker with a crash-looping executor,
  then drive concurrent submits at the open breaker and measure how fast
  the daemon sheds them with typed ``degraded`` + ``retry_after`` errors
  (overload protection must be cheap), confirming ``ping`` stays live.

Writes ``benchmarks/BENCH_chaos.json``; the CI ``chaos-smoke`` job
schema-validates it.
"""

import json
import os
import threading
import time
from pathlib import Path

from conftest import run_once

from repro.chaos import ChaoticExecutor, crash_at, kill_workers
from repro.service import (
    BreakerConfig,
    ScheduleRequest,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    execute_request,
    running_service,
)
from repro.topology.irregular import random_irregular_topology

BENCH_PATH = Path(__file__).parent / "BENCH_chaos.json"

KILLS = int(os.environ.get("REPRO_BENCH_CHAOS_KILLS", 4))
DEGRADED_CLIENTS = int(os.environ.get("REPRO_BENCH_CHAOS_CLIENTS", 8))
DEGRADED_ROUNDS = int(os.environ.get("REPRO_BENCH_CHAOS_ROUNDS", 25))
WORKERS = 2


def _requests(n, base_seed):
    topo = random_irregular_topology(8, seed=101, name="bench-chaos8")
    return [ScheduleRequest.build(topo, clusters=4, seed=base_seed + i)
            for i in range(n)]


def _canon(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _recovery_phase():
    """Baseline latency, then KILLS rounds of kill-all-workers -> submit."""
    config = ServiceConfig(port=0, workers=WORKERS, batch_window=0.01,
                           max_redispatch=2, request_deadline=60.0)
    baseline, recovery, restarts = [], [], 0
    requests = _requests(2 + 2 * KILLS, base_seed=500)
    with running_service(config) as service:
        with ServiceClient(*service.address, timeout=300.0) as client:
            # Warm the pool and measure the fault-free floor.
            for request in requests[:2]:
                t0 = time.perf_counter()
                reply = client.submit(request)
                baseline.append(time.perf_counter() - t0)
                assert _canon(reply["result"]) \
                    == _canon(execute_request(request.to_dict()))
            for round_index in range(KILLS):
                killed = kill_workers(service.pool)
                assert killed >= 1, "no live workers to kill"
                request = requests[2 + 2 * round_index]
                t0 = time.perf_counter()
                reply = client.submit(request)
                recovery.append(time.perf_counter() - t0)
                assert _canon(reply["result"]) \
                    == _canon(execute_request(request.to_dict())), \
                    "post-kill reply diverged"
        restarts = service.supervisor.status()["restarts"]
    return {
        "kills": KILLS,
        "baseline_latency_ms": round(
            1000 * sum(baseline) / len(baseline), 3),
        "recovery_latency_ms_mean": round(
            1000 * sum(recovery) / len(recovery), 3),
        "recovery_latency_ms_max": round(1000 * max(recovery), 3),
        "supervisor_restarts": restarts,
    }


def _degraded_phase(tmp_dir):
    """Open the breaker, then measure typed-reject throughput at it."""
    executor = ChaoticExecutor(crash_at(*range(1, 200)),
                               str(Path(tmp_dir) / "latch"), once=False)
    config = ServiceConfig(
        port=0, workers=WORKERS, batch_window=0.01, executor=executor,
        max_redispatch=0, request_deadline=60.0,
        breaker=BreakerConfig(failure_threshold=1, reset_timeout=120.0))
    trip_request = _requests(1, base_seed=900)[0]
    load_requests = _requests(DEGRADED_CLIENTS, base_seed=910)
    rejects = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(DEGRADED_CLIENTS + 1)
    with running_service(config) as service:
        host, port = service.address
        with ServiceClient(host, port, timeout=300.0) as client:
            # One doomed submit crashes the batch and opens the breaker.
            try:
                client.submit(trip_request)
            except ServiceError as exc:
                assert exc.code in ("crashed", "degraded"), exc.code
            assert service.supervisor.breaker.state == "open"

            def hammer(idx):
                try:
                    with ServiceClient(host, port, timeout=60.0) as cli:
                        barrier.wait()
                        for _ in range(DEGRADED_ROUNDS):
                            try:
                                cli.submit(load_requests[idx])
                                with lock:
                                    errors.append(
                                        f"client {idx}: submit was accepted "
                                        "at an open breaker")
                            except ServiceError as exc:
                                with lock:
                                    rejects.append(
                                        exc.extra.get("retry_after"))
                except Exception as exc:
                    with lock:
                        errors.append(f"client {idx}: {exc!r}")
                    try:
                        barrier.abort()
                    except Exception:
                        pass

            threads = [threading.Thread(target=hammer, args=(i,),
                                        daemon=True)
                       for i in range(DEGRADED_CLIENTS)]
            for t in threads:
                t.start()
            barrier.wait()
            t0 = time.perf_counter()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            ping_ok = bool(client.ping().get("ok"))
    assert not errors, errors
    total = DEGRADED_CLIENTS * DEGRADED_ROUNDS
    assert len(rejects) == total
    return {
        "clients": DEGRADED_CLIENTS,
        "rounds_per_client": DEGRADED_ROUNDS,
        "rejects": len(rejects),
        "reject_throughput_rps": round(total / wall, 2),
        "retry_after_present": all(r is not None and r > 0
                                   for r in rejects),
        "ping_ok_while_degraded": ping_ok,
    }


def _render(recovery, degraded):
    lines = ["chaos benchmark",
             f"  baseline latency:      "
             f"{recovery['baseline_latency_ms']:.1f} ms",
             f"  recovery latency mean: "
             f"{recovery['recovery_latency_ms_mean']:.1f} ms "
             f"(max {recovery['recovery_latency_ms_max']:.1f} ms over "
             f"{recovery['kills']} kills)",
             f"  supervisor restarts:   {recovery['supervisor_restarts']}",
             f"  degraded rejects:      {degraded['rejects']} at "
             f"{degraded['reject_throughput_rps']:.0f} rejects/s",
             f"  retry_after present:   {degraded['retry_after_present']}",
             f"  ping while degraded:   {degraded['ping_ok_while_degraded']}"]
    return "\n".join(lines)


def test_bench_chaos(benchmark, record, tmp_path):
    recovery = _recovery_phase()
    degraded = run_once(benchmark, lambda: _degraded_phase(tmp_path))

    record("chaos_bench", _render(recovery, degraded))

    assert recovery["supervisor_restarts"] >= KILLS
    assert degraded["retry_after_present"]
    assert degraded["ping_ok_while_degraded"]

    payload = {
        "benchmark": "chaos",
        "workers": WORKERS,
        "recovery": recovery,
        "degraded": degraded,
        "invariant_ok": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
