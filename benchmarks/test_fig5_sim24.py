"""Benchmark: regenerate Figure 5 (simulation of the designed 24-switch net).

Paper shape: the OP/random throughput gap is much larger than on the
16-switch network (paper: ~5x vs ~1.85x) because random mappings must push
almost all traffic across the sparse inter-ring links; C_c(OP) is also
higher than on the 16-switch network (better-defined clusters).
"""

from conftest import run_once

from repro.experiments.fig3_sim16 import run_fig3
from repro.experiments.fig5_sim24 import render_fig5, run_fig5


def test_fig5_sim24(benchmark, setup16, setup24, bench_config, record):
    res = run_once(
        benchmark,
        lambda: run_fig5(setup24, num_random=3, config=bench_config),
    )
    record("fig5_sim24", render_fig5(res))

    # OP dominates every random mapping, by a large factor.
    assert res.op_over_best_random > 2.5, (
        f"expected a >2.5x gap on the designed network, got "
        f"{res.op_over_best_random:.2f}x"
    )

    # Comparative claims against the 16-switch experiment (quick version).
    fig3 = run_fig3(setup16, num_random=3, config=bench_config)
    assert res.op_over_best_random > fig3.op_over_best_random, \
        "designed-network gap must exceed the random-16-switch gap"
    assert res.op_record.c_c > fig3.op_record.c_c, \
        "C_c(OP) on the designed network must exceed the 16-switch value"
