"""Ablation: equivalent distances vs plain hop counts as the search metric.

The paper's model of communication cost (Section 3) credits parallel
shortest paths via electrical resistance.  This bench asks: does that
matter, or would hop counts do?  We schedule with both tables and score
every result under (a) the equivalent-distance criterion and (b) measured
saturation throughput.
"""

from conftest import run_once

from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.table import hop_distance_table
from repro.routing.tables import RoutingTable
from repro.routing.updown import UpDownRouting
from repro.simulation.sweep import find_saturation_rate
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.irregular import random_irregular_topology
from repro.util.reporting import Table


def test_ablation_distance_model(benchmark, bench_config, record):
    def run():
        rows = []
        for seed in (42, 43, 44):
            topo = random_irregular_topology(16, seed=seed)
            routing = UpDownRouting(topo)
            rt = RoutingTable(routing)
            workload = Workload.uniform(4, 16)
            sched_eq = CommunicationAwareScheduler(topo, routing=routing)
            sched_hop = CommunicationAwareScheduler(
                topo, routing=routing, table=hop_distance_table(routing)
            )
            for name, sched in (("equivalent", sched_eq), ("hops", sched_hop)):
                res = sched.schedule(workload, seed=1)
                tp = find_saturation_rate(
                    rt, IntraClusterTraffic(res.mapping), bench_config
                )["throughput"]
                scores = sched_eq.evaluate(res.partition)
                rows.append({
                    "topology seed": seed,
                    "metric": name,
                    "F_G (equiv criterion)": scores["F_G"],
                    "C_c": scores["C_c"],
                    "sat. throughput": tp,
                })
        return rows

    rows = run_once(benchmark, run)
    t = Table(list(rows[0].keys()),
              title="ablation - equivalent distance vs hop count")
    for row in rows:
        t.add_row(list(row.values()), digits=4)
    record("ablation_distance_model", t.render())

    # The equivalent-distance table always wins (or ties) on its own
    # criterion, and never loses badly on measured throughput.
    for seed in {r["topology seed"] for r in rows}:
        eq = next(r for r in rows
                  if r["topology seed"] == seed and r["metric"] == "equivalent")
        hp = next(r for r in rows
                  if r["topology seed"] == seed and r["metric"] == "hops")
        assert eq["F_G (equiv criterion)"] <= \
            hp["F_G (equiv criterion)"] + 1e-9
        assert eq["sat. throughput"] >= 0.75 * hp["sat. throughput"]
