"""Ablation: virtual channels vs the scheduling gain.

A classic question for communication-aware placement: does better network
hardware (virtual channels reducing head-of-line blocking) shrink the
benefit of clever mapping?  We measure OP and random saturation throughput
at 1, 2 and 4 VCs.  Expected shape: VCs lift *both* mappings, but the OP
advantage persists — placement and flow control attack different losses.
"""

from dataclasses import replace

from conftest import run_once

from repro.simulation.sweep import find_saturation_rate
from repro.simulation.traffic import IntraClusterTraffic
from repro.util.reporting import Table


def test_ablation_virtual_channels(benchmark, setup16, bench_config, record):
    op = setup16.op_mapping()
    rnd = setup16.random_mappings(1)[0]

    def run():
        rows = []
        for vcs in (1, 2, 4):
            cfg = replace(bench_config, virtual_channels=vcs)
            tps = {}
            for rec in (op, rnd):
                tps[rec.name] = find_saturation_rate(
                    setup16.routing_table,
                    IntraClusterTraffic(rec.mapping), cfg,
                )["throughput"]
            rows.append({
                "virtual channels": vcs,
                "OP throughput": tps["OP"],
                "random throughput": tps[rnd.name],
                "OP / random": tps["OP"] / tps[rnd.name],
            })
        return rows

    rows = run_once(benchmark, run)
    t = Table(list(rows[0].keys()),
              title="ablation - virtual channels vs mapping quality")
    for row in rows:
        t.add_row(list(row.values()), digits=4)
    record("ablation_virtual_channels", t.render())

    # VCs help the congested random mapping...
    assert rows[-1]["random throughput"] > rows[0]["random throughput"]
    # ...but the scheduled mapping keeps a clear advantage at every VC count.
    for row in rows:
        assert row["OP / random"] > 1.3, row
