"""Benchmark: regenerate Figure 2 (4-cluster partition, 16-switch network).

Paper shape: the technique produces a balanced partition of exactly four
4-switch clusters with a markedly better quality score than random.
"""

from conftest import run_once

from repro.core.mapping import random_partition
from repro.experiments.fig2_partition16 import render_fig2, run_fig2


def test_fig2_partition16(benchmark, setup16, record):
    res = run_once(benchmark, lambda: run_fig2(setup16, seed=1))
    record("fig2_partition16", render_fig2(res))

    assert sorted(len(c) for c in res.partition.clusters()) == [4, 4, 4, 4]
    assert res.f_g < 0.6, "scheduled F_G must be far below the random ~1.0"
    assert res.c_c > 2.0

    # A priori comparison against random mappings on the same criterion.
    random_ccs = [
        setup16.scheduler.evaluate(
            random_partition([4] * 4, 16, seed=s)
        )["C_c"]
        for s in range(9)
    ]
    assert all(res.c_c > c for c in random_ccs)
