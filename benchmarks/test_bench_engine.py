"""Benchmark: the array kernels vs the readable reference engine.

Fig.-3-scale work: the 16-switch network's OP mapping plus three random
mappings, each swept across the 9-point load ladder, once per engine.
Every point's canonical payload must match bit-for-bit (the tentpole
guarantee); the wall-clock ratios are recorded to
``benchmarks/BENCH_engine.json``.

Two comparisons:

- ``fast`` vs ``reference`` — one simulator per (mapping, rate) cell;
- ``batch`` vs both — each mapping's whole 9-rate ladder runs as a single
  :func:`simulate_batch` call, the way ``run_load_sweep`` uses it.

Timing protocol: the box this runs on is noisy, so each cell (and each
batched ladder) is timed best-of-``REPS`` and the aggregate is the sum of
the best times.  The recorded speedup therefore reflects the engines'
intrinsic cost ratio, not scheduler jitter.

On the batch floor: the ISSUE's 10x target assumes the replication axis
amortizes per-cycle work, but bit-identity pins every RNG draw and
arbitration decision to the reference's scalar order, so the batch
kernel's win comes from replication-level event skipping and tighter
scalar paths, not vectorization — measured ~0.95-1.1x over ``fast``
(larger batches skip more; the 36-cell mega-batch clears 1x) and ~5x
over the reference on this workload.  The asserts below are
non-regression floors for the honest numbers, not the aspirational
target.

The third comparison is the ``vector`` engine's many-seed ladder: the
OP mapping's 9-rate ladder replicated across ``VECTOR_SEEDS`` seeds and
run as ONE ``simulate_batch_vector`` call (1296 replications in a
lockstep arena), against ``fast`` running the same jobs one by one.
The vector engine gives up bit-identity (its contract is the
statistical-equivalence suite in
``tests/simulation/test_engine_equivalence.py``), which is exactly what
frees it to vectorize across the replication axis — the recorded floor
is >= 3x over ``fast`` at this scale.  ``fast`` is timed on a 12-seed
subset and scaled (its cost is linear in jobs; the extrapolation factor
is recorded), and the two sides are timed interleaved best-of-
``VECTOR_ROUNDS`` because the ratio is far more stable than either
absolute number on a shared box.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import run_once

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import canonical_payload, make_simulator
from repro.simulation.engine_batch import simulate_batch
from repro.simulation.engine_vector import simulate_batch_vector
from repro.simulation.traffic import IntraClusterTraffic

BENCH_PATH = Path(__file__).parent / "BENCH_engine.json"

# The fig-3 ladder (S1..S9) measured for the seed topology; hardcoded so
# the benchmark never pays for a saturation probe.
RATES = [0.00196, 0.00417, 0.00638, 0.00859, 0.0108,
         0.01301, 0.01522, 0.01743, 0.01963]
REPS = 3

# The many-seed ladder: per-iteration fixed costs amortize across the
# replication axis, so the vector engine's advantage grows with batch
# size; 144 seeds x 9 rates is where the curve flattens on this
# workload.  Random mappings ride along at a smaller seed count for the
# honest per-mapping spread.  The floor can be relaxed for smoke runs on
# noisy CI boxes via REPRO_BENCH_VECTOR_FLOOR.
VECTOR_SEEDS = 144
VECTOR_SEEDS_RANDOM = 48
VECTOR_FAST_SUBSET = 12
VECTOR_ROUNDS = 2
VECTOR_FLOOR = float(os.environ.get("REPRO_BENCH_VECTOR_FLOOR", 3.0))

ENGINE_BENCH_CONFIG = SimulationConfig(
    message_length=16,
    buffer_flits=2,
    warmup_cycles=600,
    measure_cycles=2500,
    seed=7,
)

# Shorter windows for the many-seed ladder: the replication axis, not
# the cycle count, is what this phase scales.
VECTOR_LADDER_CONFIG = SimulationConfig(
    message_length=16,
    buffer_flits=2,
    warmup_cycles=400,
    measure_cycles=1600,
)


def _time_point(table, mapping, rate, cfg):
    """Best-of-REPS wall time for one (mapping, rate, engine) cell."""
    best = float("inf")
    payload = None
    for _ in range(REPS):
        traffic = IntraClusterTraffic(mapping)
        sim = make_simulator(table, traffic, rate, cfg)
        t0 = time.perf_counter()
        res = sim.run()
        best = min(best, time.perf_counter() - t0)
        payload = canonical_payload(res)
    return best, payload


def _time_ladder_batched(table, mapping, cfg):
    """Best-of-REPS wall time for one mapping's ladder as a single batch."""
    best = float("inf")
    payloads = None
    for _ in range(REPS):
        jobs = [(table, IntraClusterTraffic(mapping), rate, cfg)
                for rate in RATES]
        t0 = time.perf_counter()
        results = simulate_batch(jobs)
        best = min(best, time.perf_counter() - t0)
        payloads = [canonical_payload(r) for r in results]
    return best, payloads


def _time_ladder_vector(table, mapping, seeds, rounds):
    """Interleaved best-of-``rounds`` many-seed ladder timing.

    Returns ``(fast_seconds_scaled, vector_seconds, fast_jobs_measured,
    total_jobs)``.  ``fast`` runs a ``VECTOR_FAST_SUBSET``-seed subset of
    the same jobs and is scaled linearly; the vector side runs ALL
    seeds as one lockstep batch.  Each round times fast then vector
    back to back so load spikes hit both sides alike.
    """
    vjobs = [(table, IntraClusterTraffic(mapping), rate,
              replace(VECTOR_LADDER_CONFIG, seed=seed, engine="vector"))
             for seed in range(seeds) for rate in RATES]
    fjobs = [(table, IntraClusterTraffic(mapping), rate,
              replace(VECTOR_LADDER_CONFIG, seed=seed, engine="fast"))
             for seed in range(VECTOR_FAST_SUBSET) for rate in RATES]
    scale = seeds / VECTOR_FAST_SUBSET
    best_f = best_v = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for tbl, traffic, rate, cfg in fjobs:
            make_simulator(tbl, traffic, rate, cfg).run()
        best_f = min(best_f, (time.perf_counter() - t0) * scale)
        t0 = time.perf_counter()
        results = simulate_batch_vector(vjobs)
        best_v = min(best_v, time.perf_counter() - t0)
        assert all(r.messages_completed > 0 for r in results)
    return best_f, best_v, len(fjobs), len(vjobs)


def test_bench_engine(benchmark, setup16):
    records = [setup16.op_mapping()] + setup16.random_mappings(3)
    table = setup16.routing_table

    totals = {"reference": 0.0, "fast": 0.0, "batch": 0.0}
    per_mapping = {}
    vector_ladder = {}
    mismatches = 0

    def measure():
        nonlocal mismatches
        for rec in records:
            ref_s = fast_s = 0.0
            fast_payloads = []
            for rate in RATES:
                rs, rp = _time_point(
                    table, rec.mapping, rate,
                    replace(ENGINE_BENCH_CONFIG, engine="reference"))
                fs, fp = _time_point(
                    table, rec.mapping, rate,
                    replace(ENGINE_BENCH_CONFIG, engine="fast"))
                ref_s += rs
                fast_s += fs
                fast_payloads.append(fp)
                if rp != fp:
                    mismatches += 1
            bat_s, bat_payloads = _time_ladder_batched(
                table, rec.mapping,
                replace(ENGINE_BENCH_CONFIG, engine="batch"))
            mismatches += sum(
                bp != fp for bp, fp in zip(bat_payloads, fast_payloads))
            totals["reference"] += ref_s
            totals["fast"] += fast_s
            totals["batch"] += bat_s
            per_mapping[rec.name] = {
                "reference_seconds": round(ref_s, 4),
                "fast_seconds": round(fast_s, 4),
                "batch_seconds": round(bat_s, 4),
                "speedup": round(ref_s / fast_s, 3),
                "batch_speedup_vs_fast": round(fast_s / bat_s, 3),
            }
        # Many-seed vector ladder: the OP mapping at full scale (the
        # headline number), random mappings at a smaller seed count for
        # the per-mapping spread.
        for i, rec in enumerate(records):
            seeds = VECTOR_SEEDS if i == 0 else VECTOR_SEEDS_RANDOM
            rounds = VECTOR_ROUNDS if i == 0 else 1
            fast_many, vec_many, fjobs, vjobs = _time_ladder_vector(
                table, rec.mapping, seeds, rounds)
            vector_ladder[rec.name] = {
                "seeds": seeds,
                "jobs": vjobs,
                "fast_jobs_measured": fjobs,
                "fast_seconds_scaled": round(fast_many, 4),
                "vector_seconds": round(vec_many, 4),
                "vector_speedup_vs_fast": round(fast_many / vec_many, 3),
            }
            per_mapping[rec.name]["vector_speedup_vs_fast"] = \
                vector_ladder[rec.name]["vector_speedup_vs_fast"]

    run_once(benchmark, measure)

    assert mismatches == 0, f"{mismatches} points diverged between engines"
    speedup = totals["reference"] / totals["fast"]
    batch_vs_fast = totals["fast"] / totals["batch"]
    batch_vs_reference = totals["reference"] / totals["batch"]
    # The fast kernel targets >= 5x on this workload; keep the hard floor
    # loose enough that a loaded CI box doesn't flake.
    assert speedup >= 1.5
    # Batch floors (see module docstring): must clearly beat the reference
    # and must not regress materially against fast.
    assert batch_vs_reference >= 1.5
    assert batch_vs_fast >= 0.8
    # Vector floor: the headline many-seed ladder (OP mapping, all
    # seeds in one lockstep batch) must clear VECTOR_FLOOR x over fast.
    headline = vector_ladder[records[0].name]
    vector_vs_fast = headline["vector_speedup_vs_fast"]
    assert vector_vs_fast >= VECTOR_FLOOR, vector_ladder
    # Derived (both sides measured against the same fast baseline): how
    # the vector engine stands vs the readable reference engine.
    vector_vs_reference = vector_vs_fast * speedup
    vec_speedups = [row["vector_speedup_vs_fast"]
                    for row in vector_ladder.values()]
    bat_speedups = [row["batch_speedup_vs_fast"]
                    for row in per_mapping.values()]

    payload = {
        "benchmark": "engine",
        "topology": setup16.topology.name,
        "mappings": [r.name for r in records],
        "rates": len(RATES),
        "reps_best_of": REPS,
        "message_length": ENGINE_BENCH_CONFIG.message_length,
        "warmup_cycles": ENGINE_BENCH_CONFIG.warmup_cycles,
        "measure_cycles": ENGINE_BENCH_CONFIG.measure_cycles,
        "reference_seconds": round(totals["reference"], 4),
        "fast_seconds": round(totals["fast"], 4),
        "batch_seconds": round(totals["batch"], 4),
        "speedup": round(speedup, 3),
        "batch_speedup_vs_fast": round(batch_vs_fast, 3),
        "batch_speedup_vs_reference": round(batch_vs_reference, 3),
        "batch_notes": (
            "batch runs each mapping's 9-rate ladder as one simulate_batch "
            "call; bit-identity fixes the scalar RNG/arbitration draw order, "
            "so the win is event skipping, not vectorization"
        ),
        "vector_seconds": headline["vector_seconds"],
        "vector_speedup_vs_fast": vector_vs_fast,
        "vector_speedup_vs_reference": round(vector_vs_reference, 3),
        "vector_ladder": {
            "rates": len(RATES),
            "warmup_cycles": VECTOR_LADDER_CONFIG.warmup_cycles,
            "measure_cycles": VECTOR_LADDER_CONFIG.measure_cycles,
            "rounds_best_of": VECTOR_ROUNDS,
            "headline_mapping": records[0].name,
            "fast_extrapolated_from_seeds": VECTOR_FAST_SUBSET,
            "per_mapping": vector_ladder,
        },
        "per_mapping_vector_speedup_min": round(min(vec_speedups), 3),
        "per_mapping_vector_speedup_max": round(max(vec_speedups), 3),
        "per_mapping_batch_speedup_min": round(min(bat_speedups), 3),
        "per_mapping_batch_speedup_max": round(max(bat_speedups), 3),
        "vector_notes": (
            "vector gives up bit-identity (statistical-equivalence "
            "contract in tests/simulation/test_engine_equivalence.py) to "
            "vectorize across replications; fast is timed on a seed "
            "subset and scaled linearly, interleaved with the vector "
            "runs, best-of-N on both sides"
        ),
        "per_mapping": per_mapping,
        "bit_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
