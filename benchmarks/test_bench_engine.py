"""Benchmark: the array kernels vs the readable reference engine.

Fig.-3-scale work: the 16-switch network's OP mapping plus three random
mappings, each swept across the 9-point load ladder, once per engine.
Every point's canonical payload must match bit-for-bit (the tentpole
guarantee); the wall-clock ratios are recorded to
``benchmarks/BENCH_engine.json``.

Two comparisons:

- ``fast`` vs ``reference`` — one simulator per (mapping, rate) cell;
- ``batch`` vs both — each mapping's whole 9-rate ladder runs as a single
  :func:`simulate_batch` call, the way ``run_load_sweep`` uses it.

Timing protocol: the box this runs on is noisy, so each cell (and each
batched ladder) is timed best-of-``REPS`` and the aggregate is the sum of
the best times.  The recorded speedup therefore reflects the engines'
intrinsic cost ratio, not scheduler jitter.

On the batch floor: the ISSUE's 10x target assumes the replication axis
amortizes per-cycle work, but bit-identity pins every RNG draw and
arbitration decision to the reference's scalar order, so the batch
kernel's win comes from replication-level event skipping and tighter
scalar paths, not vectorization — measured ~0.95-1.1x over ``fast``
(larger batches skip more; the 36-cell mega-batch clears 1x) and ~5x
over the reference on this workload.  The asserts below are
non-regression floors for the honest numbers, not the aspirational
target.
"""

import json
import time
from dataclasses import replace
from pathlib import Path

from conftest import run_once

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import canonical_payload, make_simulator
from repro.simulation.engine_batch import simulate_batch
from repro.simulation.traffic import IntraClusterTraffic

BENCH_PATH = Path(__file__).parent / "BENCH_engine.json"

# The fig-3 ladder (S1..S9) measured for the seed topology; hardcoded so
# the benchmark never pays for a saturation probe.
RATES = [0.00196, 0.00417, 0.00638, 0.00859, 0.0108,
         0.01301, 0.01522, 0.01743, 0.01963]
REPS = 3

ENGINE_BENCH_CONFIG = SimulationConfig(
    message_length=16,
    buffer_flits=2,
    warmup_cycles=600,
    measure_cycles=2500,
    seed=7,
)


def _time_point(table, mapping, rate, cfg):
    """Best-of-REPS wall time for one (mapping, rate, engine) cell."""
    best = float("inf")
    payload = None
    for _ in range(REPS):
        traffic = IntraClusterTraffic(mapping)
        sim = make_simulator(table, traffic, rate, cfg)
        t0 = time.perf_counter()
        res = sim.run()
        best = min(best, time.perf_counter() - t0)
        payload = canonical_payload(res)
    return best, payload


def _time_ladder_batched(table, mapping, cfg):
    """Best-of-REPS wall time for one mapping's ladder as a single batch."""
    best = float("inf")
    payloads = None
    for _ in range(REPS):
        jobs = [(table, IntraClusterTraffic(mapping), rate, cfg)
                for rate in RATES]
        t0 = time.perf_counter()
        results = simulate_batch(jobs)
        best = min(best, time.perf_counter() - t0)
        payloads = [canonical_payload(r) for r in results]
    return best, payloads


def test_bench_engine(benchmark, setup16):
    records = [setup16.op_mapping()] + setup16.random_mappings(3)
    table = setup16.routing_table

    totals = {"reference": 0.0, "fast": 0.0, "batch": 0.0}
    per_mapping = {}
    mismatches = 0

    def measure():
        nonlocal mismatches
        for rec in records:
            ref_s = fast_s = 0.0
            fast_payloads = []
            for rate in RATES:
                rs, rp = _time_point(
                    table, rec.mapping, rate,
                    replace(ENGINE_BENCH_CONFIG, engine="reference"))
                fs, fp = _time_point(
                    table, rec.mapping, rate,
                    replace(ENGINE_BENCH_CONFIG, engine="fast"))
                ref_s += rs
                fast_s += fs
                fast_payloads.append(fp)
                if rp != fp:
                    mismatches += 1
            bat_s, bat_payloads = _time_ladder_batched(
                table, rec.mapping,
                replace(ENGINE_BENCH_CONFIG, engine="batch"))
            mismatches += sum(
                bp != fp for bp, fp in zip(bat_payloads, fast_payloads))
            totals["reference"] += ref_s
            totals["fast"] += fast_s
            totals["batch"] += bat_s
            per_mapping[rec.name] = {
                "reference_seconds": round(ref_s, 4),
                "fast_seconds": round(fast_s, 4),
                "batch_seconds": round(bat_s, 4),
                "speedup": round(ref_s / fast_s, 3),
                "batch_speedup_vs_fast": round(fast_s / bat_s, 3),
            }

    run_once(benchmark, measure)

    assert mismatches == 0, f"{mismatches} points diverged between engines"
    speedup = totals["reference"] / totals["fast"]
    batch_vs_fast = totals["fast"] / totals["batch"]
    batch_vs_reference = totals["reference"] / totals["batch"]
    # The fast kernel targets >= 5x on this workload; keep the hard floor
    # loose enough that a loaded CI box doesn't flake.
    assert speedup >= 1.5
    # Batch floors (see module docstring): must clearly beat the reference
    # and must not regress materially against fast.
    assert batch_vs_reference >= 1.5
    assert batch_vs_fast >= 0.8

    payload = {
        "benchmark": "engine",
        "topology": setup16.topology.name,
        "mappings": [r.name for r in records],
        "rates": len(RATES),
        "reps_best_of": REPS,
        "message_length": ENGINE_BENCH_CONFIG.message_length,
        "warmup_cycles": ENGINE_BENCH_CONFIG.warmup_cycles,
        "measure_cycles": ENGINE_BENCH_CONFIG.measure_cycles,
        "reference_seconds": round(totals["reference"], 4),
        "fast_seconds": round(totals["fast"], 4),
        "batch_seconds": round(totals["batch"], 4),
        "speedup": round(speedup, 3),
        "batch_speedup_vs_fast": round(batch_vs_fast, 3),
        "batch_speedup_vs_reference": round(batch_vs_reference, 3),
        "batch_notes": (
            "batch runs each mapping's 9-rate ladder as one simulate_batch "
            "call; bit-identity fixes the scalar RNG/arbitration draw order, "
            "so the win is event skipping, not vectorization"
        ),
        "per_mapping": per_mapping,
        "bit_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
