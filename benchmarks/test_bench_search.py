"""Benchmark: parallel multi-start Tabu search vs the serial baseline.

Fig.-5-scale work (24-switch four-ring network, 10 restarts).  Times the
serial and process-pool runs, asserts they are bit-identical, and writes
the measurements to ``benchmarks/BENCH_search.json``.  The speedup column
is honest for the machine it ran on — on a single-CPU container it hovers
around 1x (pool overhead, no parallel hardware); on a multi-core runner the
10 restarts spread across cores.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.parallel import detect_workers
from repro.search.base import SimilarityObjective
from repro.search.tabu import TabuSearch

BENCH_PATH = Path(__file__).parent / "BENCH_search.json"
RESTARTS = 10
SEED = 7


def test_bench_search(benchmark, setup24):
    objective = SimilarityObjective(
        setup24.scheduler.table,
        setup24.workload.switch_quota(setup24.topology),
    )
    workers = detect_workers()

    t0 = time.perf_counter()
    serial = TabuSearch(restarts=RESTARTS, workers=1).run(objective, seed=SEED)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_once(
        benchmark,
        lambda: TabuSearch(restarts=RESTARTS, workers="auto").run(
            objective, seed=SEED
        ),
    )
    parallel_seconds = time.perf_counter() - t0

    assert parallel.best_value == serial.best_value
    assert (parallel.best_partition.canonical_key()
            == serial.best_partition.canonical_key())
    assert parallel.trace == serial.trace

    payload = {
        "benchmark": "search",
        "topology": setup24.topology.name,
        "method": "tabu",
        "restarts": RESTARTS,
        "seed": SEED,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "identical": True,
        "best_value": serial.best_value,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
