"""Benchmark: scheduling-service throughput under concurrent load.

Drives a closed-loop load generator — 64 concurrent clients, each with a
persistent connection, submitting a duplicate-heavy request mix — against
two live loopback daemons:

* **naive**: batching off, dedup off, ``cold=True`` (worker caches cleared
  per request).  Every submit pays the full one-shot CLI cost, exactly the
  pre-service world.
* **service**: micro-batching + content-addressed dedup + warm persistent
  pool, i.e. the default ``ServiceConfig``.
* **hardened**: the service config plus the full self-healing tier —
  write-ahead journal (fsync per accepted request), per-request deadline,
  supervision and heartbeat.  Measures what crash safety costs on the
  fault-free path; the bar is < 5% wall-clock regression (plus a small
  constant for short runs).

Writes sustained req/s and p50/p95/p99 latency for all three to
``benchmarks/BENCH_service.json`` and asserts the full service clears the
naive baseline by >= 3x while every reply stays byte-identical to a solo
``execute_batch`` run — the determinism contract under load.
"""

import json
import os
import threading
import time
from pathlib import Path

from conftest import run_once

from repro.service import (
    ScheduleRequest,
    ServiceClient,
    ServiceConfig,
    execute_batch,
    running_service,
)
from repro.topology.irregular import random_irregular_topology

BENCH_PATH = Path(__file__).parent / "BENCH_service.json"

CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", 64))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", 6))
UNIQUE = 8          # distinct requests in the mix (duplicate-heavy load)
WORKERS = 2
MIN_SPEEDUP = 3.0
# Hardening (WAL + deadlines + supervision) may cost at most 5% on the
# fault-free path, plus a small constant so short runs aren't judged on
# scheduler jitter alone.
MAX_HARDENED_OVERHEAD = 1.05
HARDENED_SLACK_SECONDS = 0.25


def _request_pool():
    """The shared request mix: UNIQUE seeds on one 8-switch network."""
    topo = random_irregular_topology(8, seed=101, name="bench-svc8")
    requests = [ScheduleRequest.build(topo, clusters=4, seed=s)
                for s in range(UNIQUE)]
    return [r.to_dict() for r in requests], [r.fingerprint() for r in requests]


def _drive(address, payloads):
    """Closed-loop load: CLIENTS threads, each submitting ROUNDS requests.

    Returns (wall_seconds, per-request latencies, replies by fingerprint,
    error strings).  Each client reuses one connection and never has more
    than one request outstanding — classic closed-loop offered load.
    """
    host, port = address
    latencies = [[] for _ in range(CLIENTS)]
    replies = {}
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS + 1)

    def client(idx):
        try:
            with ServiceClient(host, port, timeout=300.0) as cli:
                barrier.wait()
                for r in range(ROUNDS):
                    payload = payloads[(idx + r) % len(payloads)]
                    t0 = time.perf_counter()
                    reply = cli.submit_payload(payload)
                    latencies[idx].append(time.perf_counter() - t0)
                    result = reply["result"]
                    with lock:
                        replies[result["fingerprint"]] = result
        except Exception as exc:  # collected, not raised: keep others going
            with lock:
                errors.append(f"client {idx}: {exc!r}")
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    flat = sorted(lat for per in latencies for lat in per)
    return wall, flat, replies, errors


def _percentile(sorted_vals, q):
    if not sorted_vals:
        return None
    idx = min(len(sorted_vals) - 1, round(q * (len(sorted_vals) - 1)))
    return sorted_vals[idx]


def _phase(config, payloads):
    with running_service(config) as svc:
        wall, lats, replies, errors = _drive(svc.address, payloads)
        status = svc.status()
    assert not errors, errors
    total = CLIENTS * ROUNDS
    assert len(lats) == total
    return {
        "requests": total,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(total / wall, 2),
        "latency_p50_ms": round(_percentile(lats, 0.50) * 1000, 3),
        "latency_p95_ms": round(_percentile(lats, 0.95) * 1000, 3),
        "latency_p99_ms": round(_percentile(lats, 0.99) * 1000, 3),
        "served_computed": status.served["computed"],
        "served_store": status.served["store"],
        "served_inflight": status.served["inflight"],
        "batches": status.batches["count"],
        "max_batch": status.batches["max_size"],
    }, replies


def _render(naive, full, hardened, speedup, overhead):
    rows = [("", "naive", "service", "hardened")]
    for key in ("requests", "wall_seconds", "throughput_rps",
                "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
                "served_computed", "served_store", "served_inflight",
                "batches", "max_batch"):
        rows.append((key, str(naive[key]), str(full[key]),
                     str(hardened[key])))
    widths = [max(len(r[i]) for r in rows) for i in range(4)]
    lines = ["service load test: %d clients x %d rounds, %d unique requests"
             % (CLIENTS, ROUNDS, UNIQUE)]
    for r in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    lines.append(f"throughput speedup: {speedup:.2f}x "
                 f"(required >= {MIN_SPEEDUP:.1f}x)")
    lines.append(f"hardening overhead: {overhead:.3f}x wall "
                 f"(bar: {MAX_HARDENED_OVERHEAD:.2f}x "
                 f"+ {HARDENED_SLACK_SECONDS:.2f}s)")
    return "\n".join(lines)


def test_bench_service(benchmark, record, tmp_path):
    payloads, fingerprints = _request_pool()
    expected = dict(zip(fingerprints, execute_batch(payloads)))

    naive_cfg = ServiceConfig(port=0, workers=WORKERS, max_pending=256,
                              batching=False, dedup=False, cold=True)
    full_cfg = ServiceConfig(port=0, workers=WORKERS, max_pending=256)
    hardened_cfg = ServiceConfig(port=0, workers=WORKERS, max_pending=256,
                                 wal_path=tmp_path / "bench.wal",
                                 request_deadline=120.0,
                                 heartbeat_interval=5.0)

    naive, naive_replies = _phase(naive_cfg, payloads)
    full, full_replies = run_once(benchmark, lambda: _phase(full_cfg,
                                                            payloads))
    hardened, hardened_replies = _phase(hardened_cfg, payloads)

    # Determinism contract under load: whether a reply was computed cold,
    # coalesced into a batch, served from the store, or journaled through
    # the WAL, it is byte-identical to a solo execute_batch run.
    for fp, want in expected.items():
        assert naive_replies[fp] == want, f"naive reply diverged for {fp}"
        assert full_replies[fp] == want, f"service reply diverged for {fp}"
        assert hardened_replies[fp] == want, \
            f"hardened reply diverged for {fp}"

    speedup = full["throughput_rps"] / naive["throughput_rps"]
    overhead = hardened["wall_seconds"] / full["wall_seconds"]
    record("service_load_test",
           _render(naive, full, hardened, speedup, overhead))

    assert full["served_store"] + full["served_inflight"] > 0, \
        "dedup never fired on a duplicate-heavy mix"
    assert speedup >= MIN_SPEEDUP, (
        f"batching+dedup service managed only {speedup:.2f}x the naive "
        f"baseline (required >= {MIN_SPEEDUP:.1f}x)")
    assert hardened["wall_seconds"] <= (
        full["wall_seconds"] * MAX_HARDENED_OVERHEAD
        + HARDENED_SLACK_SECONDS), (
        f"self-healing tier cost {overhead:.3f}x wall on the fault-free "
        f"path (bar: {MAX_HARDENED_OVERHEAD:.2f}x "
        f"+ {HARDENED_SLACK_SECONDS:.2f}s)")

    payload = {
        "benchmark": "service",
        "clients": CLIENTS,
        "rounds_per_client": ROUNDS,
        "unique_requests": UNIQUE,
        "workers": WORKERS,
        "naive": naive,
        "service": full,
        "hardened": hardened,
        "throughput_speedup": round(speedup, 3),
        "min_required_speedup": MIN_SPEEDUP,
        "hardened_overhead_wall": round(overhead, 4),
        "max_hardened_overhead": MAX_HARDENED_OVERHEAD,
        "deterministic": True,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[written to {BENCH_PATH.name}]")
