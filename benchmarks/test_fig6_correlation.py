"""Benchmark: regenerate Figure 6 (correlation of C_c with performance).

Paper shape: across the Figure 3 mappings, C_c correlates strongly with
network performance at low load (paper: ~85 % for S1-S4) and in deep
saturation (~75 % for S7-S9); the mid-ladder points are less reliable
because mappings straddle their saturation knees there.
"""

from conftest import run_once

from repro.experiments.fig3_sim16 import run_fig3
from repro.experiments.fig6_correlation import (
    correlations_from_sim,
    render_fig6,
)


def test_fig6_correlation(benchmark, setup16, bench_config, record):
    def run():
        sim = run_fig3(setup16, num_random=9, config=bench_config)
        return correlations_from_sim(sim)

    res = run_once(benchmark, run)
    record("fig6_correlation", render_fig6(res))

    assert res.low_load_power_corr() > 0.7, \
        "C_c must predict performance at low load (paper: ~0.85)"
    assert res.saturation_power_corr() > 0.7, \
        "C_c must predict performance in saturation (paper: ~0.75)"
    # In saturation the raw accepted-traffic correlation is also strong.
    assert min(res.corr_accepted[-3:]) > 0.6
