"""Benchmark: regenerate Figure 1 (Tabu search trace, 16-switch network).

Paper shape: 10 restart peaks, rapid descent within the first iterations
of each seed, and the global minimum reached from only some restarts.
"""

from conftest import run_once

from repro.experiments.fig1_tabu_trace import render_fig1, run_fig1


def test_fig1_tabu_trace(benchmark, setup16, record):
    res = run_once(benchmark, lambda: run_fig1(setup16, seed=1))
    record("fig1_tabu_trace", render_fig1(res))

    assert res.num_restarts == 10
    for idx in res.restart_indices:
        assert res.trace[idx] > 2 * res.best_value, \
            "each restart must begin at a high (random-mapping) value"
    assert 1 <= res.restarts_reaching_best <= 10
