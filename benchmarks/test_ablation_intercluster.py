"""Ablation: sensitivity to the 100 %-intracluster traffic assumption.

The paper assumes every message stays inside its application and defers
mixed traffic to future work.  This bench dials in an intercluster
fraction (0 → 50 %) and measures how the OP mapping's advantage over a
random mapping erodes: cross-cluster messages cannot benefit from
clustering, so the gap must shrink monotonically-ish toward 1× — but
should remain material at realistic fractions.
"""

from conftest import run_once

from repro.simulation.sweep import find_saturation_rate
from repro.simulation.traffic import IntraClusterTraffic
from repro.util.reporting import Table

FRACTIONS = (0.0, 0.1, 0.3, 0.5)


def test_ablation_intercluster(benchmark, setup16, bench_config, record):
    op = setup16.op_mapping()
    rnd = setup16.random_mappings(1)[0]

    def run():
        rows = []
        for frac in FRACTIONS:
            tps = {}
            for rec in (op, rnd):
                traffic = IntraClusterTraffic(
                    rec.mapping, intercluster_fraction=frac
                )
                tps[rec.name] = find_saturation_rate(
                    setup16.routing_table, traffic, bench_config
                )["throughput"]
            rows.append({
                "intercluster fraction": frac,
                "OP throughput": tps["OP"],
                "random throughput": tps[rnd.name],
                "OP / random": tps["OP"] / tps[rnd.name],
            })
        return rows

    rows = run_once(benchmark, run)
    t = Table(list(rows[0].keys()),
              title="ablation - intercluster traffic fraction")
    for row in rows:
        t.add_row(list(row.values()), digits=4)
    record("ablation_intercluster", t.render())

    ratios = [r["OP / random"] for r in rows]
    # Pure intracluster shows the largest gap; half-mixed the smallest.
    assert ratios[0] == max(ratios)
    assert ratios[-1] < ratios[0]
    # The advantage survives a modest 10 % cross-traffic.
    assert rows[1]["OP / random"] > 1.3
