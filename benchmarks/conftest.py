"""Benchmark-harness plumbing.

Every benchmark regenerates one paper figure (or ablation) exactly once
(`rounds=1` — these are experiment drivers, not microbenchmarks), prints
the figure's text rendering and archives it under ``benchmarks/output/``
so a full run leaves a reviewable record.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import paper_16switch_setup, paper_24switch_setup
from repro.simulation.config import SimulationConfig

OUTPUT_DIR = Path(__file__).parent / "output"

# The evaluation configuration used by all simulation benchmarks.  Smaller
# than a production run but big enough for stable curves; override with
# REPRO_BENCH_{WARMUP,MEASURE} for higher fidelity.
BENCH_CONFIG = SimulationConfig(
    message_length=16,
    buffer_flits=2,
    warmup_cycles=int(os.environ.get("REPRO_BENCH_WARMUP", 500)),
    measure_cycles=int(os.environ.get("REPRO_BENCH_MEASURE", 2000)),
    seed=7,
)


@pytest.fixture(scope="session")
def setup16():
    return paper_16switch_setup()


@pytest.fixture(scope="session")
def setup24():
    return paper_24switch_setup()


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG


@pytest.fixture
def record():
    """Print a figure rendering and archive it under benchmarks/output/."""

    def _record(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[archived to benchmarks/output/{name}.txt]")

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
