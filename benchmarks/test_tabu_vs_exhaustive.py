"""Benchmark: the Section 4.2 optimality claim.

"for small size networks (up to 16 switches) the minimum obtained by this
method was the same value F(P_0) that the one obtained with an exhaustive
search."  We verify Tabu == branch-and-bound optimum on a ladder of small
networks and record the relative node counts (why exhaustive search stops
scaling).
"""

from conftest import run_once

from repro.core.scheduler import CommunicationAwareScheduler
from repro.search.base import SimilarityObjective
from repro.search.exhaustive import ExhaustiveSearch, count_partitions
from repro.search.tabu import TabuSearch
from repro.topology.irregular import random_irregular_topology
from repro.util.reporting import Table


def test_tabu_matches_exhaustive(benchmark, record):
    cases = [
        (8, [4, 4]),
        (10, [5, 5]),
        (12, [4, 4, 4]),
        (12, [6, 6]),
        (14, [7, 7]),
        (16, [4, 4, 4, 4]),   # the paper's full claim; 2.6M partitions
    ]

    def run():
        rows = []
        for n, sizes in cases:
            topo = random_irregular_topology(n, seed=n)
            sched = CommunicationAwareScheduler(topo)
            obj = SimilarityObjective(sched.table, sizes)
            tabu = TabuSearch().run(obj, seed=0)
            # Warm-starting the branch-and-bound with the Tabu incumbent
            # only prunes; the returned optimum is unchanged.
            exact = ExhaustiveSearch().run(obj, initial=tabu.best_partition)
            rows.append({
                "switches": n,
                "clusters": "x".join(map(str, sizes)),
                "space size": count_partitions(sizes, n),
                "B&B nodes": exact.meta["nodes_visited"],
                "tabu evals": tabu.evaluations,
                "exhaustive F": exact.best_value,
                "tabu F": tabu.best_value,
                "optimal": abs(tabu.best_value - exact.best_value) < 1e-9,
            })
        return rows

    rows = run_once(benchmark, run)

    t = Table(list(rows[0].keys()),
              title="Section 4.2 - Tabu vs exhaustive search")
    for row in rows:
        t.add_row(list(row.values()), digits=5)
    record("tabu_vs_exhaustive", t.render())

    assert all(row["optimal"] for row in rows), \
        "Tabu must find the exhaustive optimum on small networks"
