"""Benchmark: the computation-aware baselines (Braun-style comparison).

Background substrate check: on the standard ETC workloads, the classical
heuristics must rank the way the literature reports — Min-min/Duplex
among the best, OLB the worst, MET terrible on consistent matrices.
"""

from conftest import run_once

import numpy as np

from repro.hetsched.heuristics import HEURISTICS
from repro.hetsched.workload import generate_etc
from repro.util.reporting import Table

CASES = [
    ("consistent", dict(consistency="consistent")),
    ("semiconsistent", dict(consistency="semiconsistent")),
    ("inconsistent", dict(consistency="inconsistent")),
]


def test_hetsched_baselines(benchmark, record):
    def run():
        rows = []
        for label, kwargs in CASES:
            makespans = {name: [] for name in HEURISTICS}
            for seed in range(8):
                etc = generate_etc(128, 16, seed=seed, **kwargs)
                for name, h in HEURISTICS.items():
                    makespans[name].append(h.schedule(etc).makespan)
            rows.append({
                "etc class": label,
                **{name: float(np.mean(vals))
                   for name, vals in makespans.items()},
            })
        return rows

    rows = run_once(benchmark, run)
    t = Table(list(rows[0].keys()),
              title="computation-aware baselines - mean makespan "
                    "(128 tasks x 16 machines, 8 seeds)")
    for row in rows:
        t.add_row(list(row.values()), digits=5)
    record("hetsched_baselines", t.render())

    for row in rows:
        # Min-min (via duplex) beats OLB and MET everywhere.
        assert row["duplex"] <= row["olb"]
        assert row["minmin"] <= row["olb"]
    consistent = rows[0]
    # MET collapses on consistent matrices (everything piles on machine 0).
    assert consistent["met"] > 2 * consistent["minmin"]
