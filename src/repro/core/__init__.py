"""The paper's primary contribution.

- :mod:`repro.core.mapping` — logical clusters of processes, process→host
  mappings, and the induced partition of network switches;
- :mod:`repro.core.quality` — the similarity (``F_G``) and dissimilarity
  (``D_G``) global quality functions and the clustering coefficient
  ``C_c = D_G / F_G`` (Section 4.1);
- :mod:`repro.core.scheduler` — the communication-aware scheduling
  technique: multi-start Tabu search minimizing ``F_G`` (Section 4.2).
"""

from repro.core.mapping import (
    LogicalCluster,
    Workload,
    Partition,
    ProcessMapping,
    random_partition,
    partition_to_mapping,
)
from repro.core.quality import (
    QualityEvaluator,
    cluster_similarity,
    similarity_global,
    cluster_dissimilarity,
    dissimilarity_global,
    clustering_coefficient,
    weighted_mapping_cost,
)
from repro.core.scheduler import CommunicationAwareScheduler, ScheduleResult
from repro.core.dynamic import DynamicScheduler, Placement

__all__ = [
    "LogicalCluster",
    "Workload",
    "Partition",
    "ProcessMapping",
    "random_partition",
    "partition_to_mapping",
    "QualityEvaluator",
    "cluster_similarity",
    "similarity_global",
    "cluster_dissimilarity",
    "dissimilarity_global",
    "clustering_coefficient",
    "weighted_mapping_cost",
    "CommunicationAwareScheduler",
    "ScheduleResult",
    "DynamicScheduler",
    "Placement",
]
