"""Online scheduling: applications arriving at and leaving a shared NOW.

The paper's future work ("the integration of the proposed scheduling
technique with process scheduling") implies an *online* setting: jobs
submit and terminate over time, and each arrival must be placed on the
switches that are currently free.  :class:`DynamicScheduler` implements
that with the same machinery as the static technique:

- an arriving application of ``q`` switches is placed by minimizing its
  cluster similarity ``F_{A}`` (eq. 1) **restricted to the free switches**
  — the same Tabu search run on the free-switch submatrix of the table of
  equivalent distances;
- a departing application frees its switches;
- :meth:`rebalance` re-runs the full static optimization over all resident
  applications and reports how much placement quality decayed due to
  online fragmentation (callers decide whether migration is worth it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mapping import LogicalCluster, Partition, Workload
from repro.core.quality import QualityEvaluator
from repro.core.scheduler import CommunicationAwareScheduler
from repro.topology.graph import Topology
from repro.util.rng import SeedLike


@dataclass
class Placement:
    """Where one application currently runs."""

    app: LogicalCluster
    switches: Tuple[int, ...]
    local_cost: float     # F_A over the chosen switches (raw quadratic sum)

    @property
    def num_switches(self) -> int:
        return len(self.switches)


class DynamicScheduler:
    """Incremental placement of applications on a shared machine.

    Parameters
    ----------
    topology:
        The machine; routing/table defaults match
        :class:`~repro.core.scheduler.CommunicationAwareScheduler`.
    scheduler:
        Optional pre-built static scheduler to share its distance table
        (and whose search :meth:`rebalance` reuses).
    """

    def __init__(self, topology: Topology, *,
                 scheduler: Optional[CommunicationAwareScheduler] = None):
        self.scheduler = scheduler or CommunicationAwareScheduler(topology)
        if self.scheduler.topology is not topology:
            raise ValueError("scheduler was built for a different topology")
        self.topology = topology
        self._evaluator = QualityEvaluator(self.scheduler.table)
        self._owner: List[Optional[str]] = [None] * topology.num_switches
        self._placements: Dict[str, Placement] = {}

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def free_switches(self) -> List[int]:
        return [s for s, o in enumerate(self._owner) if o is None]

    @property
    def placements(self) -> Dict[str, Placement]:
        return dict(self._placements)

    @property
    def utilization(self) -> float:
        """Fraction of switches currently owned by some application."""
        busy = sum(1 for o in self._owner if o is not None)
        return busy / self.topology.num_switches

    def current_partition(self) -> Partition:
        """The partition induced by the resident applications.

        Cluster indices follow submission order of the *currently resident*
        applications (sorted by name for determinism).
        """
        names = sorted(self._placements)
        labels = np.full(self.topology.num_switches, -1, dtype=np.int64)
        for idx, name in enumerate(names):
            for s in self._placements[name].switches:
                labels[s] = idx
        return Partition(labels)

    def scores(self) -> Dict[str, float]:
        """F_G / D_G / C_c of the current resident partition."""
        return self.scheduler.evaluate(self.current_partition())

    # ------------------------------------------------------------------ #
    # arrival / departure
    # ------------------------------------------------------------------ #

    def switches_needed(self, app: LogicalCluster) -> int:
        """Whole switches an application occupies (paper assumption)."""
        hps = self.topology.hosts_per_switch
        if app.num_processes % hps != 0:
            raise ValueError(
                f"application {app.name!r} has {app.num_processes} processes, "
                f"not a multiple of {hps} hosts/switch"
            )
        return app.num_processes // hps

    def submit(self, app: LogicalCluster, seed: SeedLike = None) -> Placement:
        """Place an arriving application on free switches.

        Raises ``ValueError`` when the name is taken or capacity is
        insufficient (no preemption — callers queue and retry after a
        departure).
        """
        if app.name in self._placements:
            raise ValueError(f"application {app.name!r} is already resident")
        q = self.switches_needed(app)
        free = self.free_switches
        if q > len(free):
            raise ValueError(
                f"application {app.name!r} needs {q} switches, only "
                f"{len(free)} free"
            )
        chosen = self._choose(free, q, seed)
        for s in chosen:
            self._owner[s] = app.name
        placement = Placement(
            app=app,
            switches=tuple(sorted(chosen)),
            local_cost=self._local_cost(chosen),
        )
        self._placements[app.name] = placement
        return placement

    def remove(self, name: str) -> Placement:
        """Release a departing application's switches."""
        placement = self._placements.pop(name, None)
        if placement is None:
            raise KeyError(f"no resident application named {name!r}")
        for s in placement.switches:
            self._owner[s] = None
        return placement

    # ------------------------------------------------------------------ #
    # global re-optimization
    # ------------------------------------------------------------------ #

    def rebalance(self, seed: SeedLike = None) -> Dict[str, object]:
        """Re-run the static technique over all resident applications.

        Returns the incumbent and re-optimized ``F_G`` plus the migrated
        partition; does **not** apply it (migration costs are outside this
        model — the caller decides).
        """
        if len(self._placements) < 1:
            raise ValueError("nothing to rebalance: no resident applications")
        names = sorted(self._placements)
        workload = Workload([self._placements[n].app for n in names])
        current = self.current_partition()
        incumbent = self.scheduler.evaluate(current)["F_G"]
        result = self.scheduler.schedule(workload, seed=seed, initial=current)
        return {
            "incumbent_f_g": incumbent,
            "optimized_f_g": result.f_g,
            "improvement": incumbent - result.f_g,
            "partition": result.partition,
        }

    def apply_rebalance(self, partition: Partition) -> None:
        """Adopt a rebalanced partition (cluster order = sorted names)."""
        names = sorted(self._placements)
        clusters = partition.clusters()
        if len(clusters) != len(names):
            raise ValueError(
                f"partition has {len(clusters)} clusters, {len(names)} "
                "applications are resident"
            )
        for name, members in zip(names, clusters):
            if len(members) != self._placements[name].num_switches:
                raise ValueError(
                    f"cluster size mismatch for {name!r}: "
                    f"{len(members)} vs {self._placements[name].num_switches}"
                )
        self._owner = [None] * self.topology.num_switches
        for name, members in zip(names, clusters):
            for s in members:
                self._owner[s] = name
            old = self._placements[name]
            self._placements[name] = Placement(
                app=old.app,
                switches=tuple(sorted(members)),
                local_cost=self._local_cost(members),
            )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _local_cost(self, switches: Sequence[int]) -> float:
        idx = np.asarray(sorted(switches), dtype=int)
        if idx.size < 2:
            return 0.0
        sq = self._evaluator.sq
        return float(sq[np.ix_(idx, idx)].sum() / 2.0)

    def _choose(self, free: List[int], q: int, seed: SeedLike) -> List[int]:
        """Pick ``q`` of the free switches minimizing the local F_A."""
        if q == len(free):
            return list(free)
        if q == 1:
            # No intracluster pairs to optimize; prefer the free switch
            # farthest (in total squared distance) from the busy ones so
            # compact regions stay available for larger arrivals.
            sq = self._evaluator.sq
            busy = [s for s, o in enumerate(self._owner) if o is not None]
            if not busy:
                return [free[0]]
            scores = [(float(sq[np.ix_([s], busy)].sum()), s) for s in free]
            return [max(scores)[1]]
        # Subset selection: choose q of the free switches minimizing the
        # quadratic pairwise cost.  Greedy growth from every seed switch
        # plus steepest-descent in/out swaps — the single-cluster analogue
        # of the paper's swap neighbourhood (there is no second cluster to
        # trade with, so the swap partner is the free pool itself).
        from repro.util.rng import as_rng

        rng = as_rng(seed)
        sq = self._evaluator.sq[np.ix_(free, free)]
        f = len(free)

        def grow(seed_idx: int) -> List[int]:
            chosen = [seed_idx]
            load = sq[:, seed_idx].copy()  # cost of adding each candidate
            for _ in range(q - 1):
                best, best_cost = -1, float("inf")
                for c in range(f):
                    if c in chosen:
                        continue
                    if load[c] < best_cost:
                        best, best_cost = c, load[c]
                chosen.append(best)
                load += sq[:, best]
            return chosen

        def improve(chosen: List[int]) -> Tuple[List[int], float]:
            chosen = list(chosen)
            inside = set(chosen)
            load = sq[:, chosen].sum(axis=1)
            cost = float(sum(load[c] for c in chosen)) / 2.0
            improved = True
            while improved:
                improved = False
                for out in list(chosen):
                    for cand in range(f):
                        if cand in inside:
                            continue
                        delta = (load[cand] - sq[cand, out]) - load[out]
                        if delta < -1e-12:
                            inside.remove(out)
                            inside.add(cand)
                            chosen[chosen.index(out)] = cand
                            load += sq[:, cand] - sq[:, out]
                            cost += delta
                            improved = True
                            break
                    if improved:
                        break
            return chosen, cost

        best_set, best_cost = None, float("inf")
        seeds = list(range(f))
        rng.shuffle(seeds)
        for s in seeds[:max(4, min(f, 8))]:
            chosen, cost = improve(grow(s))
            if cost < best_cost:
                best_set, best_cost = chosen, cost
        assert best_set is not None
        return [free[i] for i in best_set]


__all__ = ["DynamicScheduler", "Placement"]
