"""The communication-aware scheduling technique (the paper's contribution).

:class:`CommunicationAwareScheduler` wires the pipeline together:

    topology → routing (up*/down*) → table of equivalent distances →
    similarity objective → multi-start Tabu search → process mapping

``schedule()`` returns the near-optimal mapping; ``random_schedule()``
produces the paper's baseline mappings; ``evaluate()`` scores any partition
with ``F_G``, ``D_G`` and ``C_c`` so callers can rank mappings a priori,
exactly as the paper uses the clustering coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.mapping import (
    Partition,
    ProcessMapping,
    Workload,
    partition_to_mapping,
    random_partition,
)
from repro.core.quality import QualityEvaluator
from repro.distance.cache import cached_distance_table
from repro.distance.table import DistanceTable
from repro.routing.base import RoutingAlgorithm
from repro.routing.updown import UpDownRouting
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective
from repro.search.tabu import TabuSearch
from repro.topology.graph import Topology
from repro.util.rng import SeedLike


@dataclass
class ScheduleResult:
    """A scheduled workload with its quality scores.

    ``f_g``/``d_g``/``c_c`` are the paper's similarity, dissimilarity and
    clustering coefficient for the produced partition; ``search`` carries
    the full heuristic trace (Figure 1 material).
    """

    workload: Workload
    partition: Partition
    mapping: ProcessMapping
    f_g: float
    d_g: float
    c_c: float
    search: Optional[SearchResult] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable rendering of scores and partition."""
        clusters = " ".join(
            "(" + ",".join(map(str, c)) + ")" for c in self.partition.clusters()
        )
        return (
            f"F_G={self.f_g:.4f} D_G={self.d_g:.4f} C_c={self.c_c:.4f} "
            f"partition={clusters}"
        )


class CommunicationAwareScheduler:
    """Maps workloads to processors to maximize intracluster bandwidth.

    Parameters
    ----------
    topology:
        The switch network.
    routing:
        Defaults to up*/down* with an elected root (the paper's setting).
    table:
        Distance table; defaults to the table of equivalent distances built
        from ``routing``.  Pass a hop-count table for the ablation.
    search:
        Heuristic search; defaults to the paper's multi-start Tabu search.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        routing: Optional[RoutingAlgorithm] = None,
        table: Optional[DistanceTable] = None,
        search: Optional[SearchMethod] = None,
    ):
        self.topology = topology
        self.routing = routing if routing is not None else UpDownRouting(topology)
        if self.routing.topology is not topology:
            raise ValueError("routing was built for a different topology")
        self.table = table if table is not None else cached_distance_table(self.routing)
        if self.table.num_nodes != topology.num_switches:
            raise ValueError(
                f"table covers {self.table.num_nodes} switches, topology has "
                f"{topology.num_switches}"
            )
        self.search = search if search is not None else TabuSearch()
        self._evaluator = QualityEvaluator(self.table)

    # ------------------------------------------------------------------ #

    def objective_for(self, workload: Workload) -> SimilarityObjective:
        """The ``F_G``-minimization objective induced by a workload."""
        quotas = workload.switch_quota(self.topology)
        return SimilarityObjective(self.table, quotas,
                                   num_switches=self.topology.num_switches)

    def schedule(self, workload: Workload, seed: SeedLike = None,
                 initial: Optional[Partition] = None) -> ScheduleResult:
        """Run the heuristic search and expand the best partition to a mapping."""
        objective = self.objective_for(workload)
        result = self.search.run(objective, seed=seed, initial=initial)
        return self._package(workload, result.best_partition, result)

    def random_schedule(self, workload: Workload,
                        seed: SeedLike = None) -> ScheduleResult:
        """One uniformly random mapping (the paper's baseline)."""
        quotas = workload.switch_quota(self.topology)
        partition = random_partition(quotas, self.topology.num_switches, seed)
        return self._package(workload, partition, None)

    def evaluate(self, partition: Partition) -> Dict[str, float]:
        """Score an arbitrary partition: ``F_G``, ``D_G`` and ``C_c``."""
        f = self._evaluator.similarity(partition)
        d = self._evaluator.dissimilarity(partition)
        return {"F_G": f, "D_G": d, "C_c": d / f}

    # ------------------------------------------------------------------ #

    def _package(self, workload: Workload, partition: Partition,
                 search: Optional[SearchResult]) -> ScheduleResult:
        scores = self.evaluate(partition)
        mapping = partition_to_mapping(partition, workload, self.topology)
        return ScheduleResult(
            workload=workload,
            partition=partition,
            mapping=mapping,
            f_g=scores["F_G"],
            d_g=scores["D_G"],
            c_c=scores["C_c"],
            search=search,
            meta={
                "topology": self.topology.name,
                "routing": self.routing.name,
                "table_kind": self.table.kind,
            },
        )


__all__ = ["CommunicationAwareScheduler", "ScheduleResult"]
