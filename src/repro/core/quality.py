"""The paper's quality functions (Section 4.1).

Given the table of equivalent distances ``T`` and a partition of the
switches into clusters:

- ``F_{A_i}`` — quadratic sum of intracluster distances of cluster ``A_i``
  (eq. 1);
- ``F_G``    — similarity global function: mean intracluster ``T²``
  normalized by the network-wide mean ``T²`` (eq. 2).  ``F_G ≈ 1`` for a
  random mapping, ``→ 0`` for a tight mapping;
- ``D_{A_i}`` — quadratic sum of distances from ``A_i`` to the rest of the
  network (eq. 4);
- ``D_G``    — dissimilarity global function, normalized the same way
  (eq. 5).  ``D_G ≈ 1`` when clusters are no better separated than
  singletons, larger when they are well separated;
- ``C_c = D_G / F_G`` — the clustering coefficient, the paper's a-priori
  predictor of relative network performance.  The scheduling technique
  minimizes ``F_G``, thereby (for fixed sizes) maximizing ``C_c``.

:class:`QualityEvaluator` vectorizes all of this over a fixed table and
additionally provides the O(1) swap delta used by the heuristic searches.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.mapping import Partition, ProcessMapping
from repro.distance.table import DistanceTable
from repro.util.validation import check_square_matrix

TableLike = Union[DistanceTable, np.ndarray]


def _as_squared(table: TableLike) -> np.ndarray:
    if isinstance(table, DistanceTable):
        return table.squared()
    a = check_square_matrix(table, "distance table")
    return a ** 2


def _membership(partition: Partition, n: int) -> np.ndarray:
    """0/1 indicator matrix Z of shape (N, M); unassigned switches are all-zero rows."""
    if partition.num_switches != n:
        raise ValueError(
            f"partition covers {partition.num_switches} switches, table has {n}"
        )
    m = partition.num_clusters
    z = np.zeros((n, m), dtype=float)
    for s, c in enumerate(partition.labels):
        if c >= 0:
            z[s, c] = 1.0
    return z


def cluster_similarity(table: TableLike, members: Sequence[int]) -> float:
    """``F_{A_i}`` (eq. 1): quadratic sum of intracluster distances."""
    sq = _as_squared(table)
    idx = np.asarray(sorted(set(int(m) for m in members)), dtype=int)
    if idx.size < 2:
        return 0.0
    sub = sq[np.ix_(idx, idx)]
    return float(sub.sum() / 2.0)


def cluster_dissimilarity(table: TableLike, partition: Partition, i: int) -> float:
    """``D_{A_i}`` (eq. 4): quadratic sum of distances from ``A_i`` outward."""
    sq = _as_squared(table)
    n = sq.shape[0]
    members = partition.clusters()[i]
    inside = np.zeros(n, dtype=bool)
    inside[list(members)] = True
    return float(sq[np.ix_(inside, ~inside)].sum())


def similarity_global(table: TableLike, partition: Partition) -> float:
    """``F_G`` (eq. 2). Raises when the partition has no intracluster pairs."""
    return QualityEvaluator(table).similarity(partition)


def dissimilarity_global(table: TableLike, partition: Partition) -> float:
    """``D_G`` (eq. 5). Raises when the partition has no intercluster pairs."""
    return QualityEvaluator(table).dissimilarity(partition)


def clustering_coefficient(table: TableLike, partition: Partition) -> float:
    """``C_c = D_G / F_G``: the intracluster/intercluster bandwidth ratio."""
    return QualityEvaluator(table).clustering_coefficient(partition)


class QualityEvaluator:
    """Vectorized quality functions over one distance table.

    Precomputes ``T²`` and the network-wide normalization so that repeated
    evaluation (the heuristic searches call this millions of times through
    the delta path) stays cheap.
    """

    def __init__(self, table: TableLike):
        self.sq = _as_squared(table)
        self.n = self.sq.shape[0]
        if self.n < 2:
            raise ValueError("quality functions need at least two switches")
        iu = np.triu_indices(self.n, k=1)
        self.norm = float(self.sq[iu].mean())
        if self.norm <= 0:
            raise ValueError(
                "degenerate distance table: all inter-switch distances are zero"
            )
        # Row sums of T² — lets C_c derive the intercluster sum from the
        # cluster load matrix without a second ``sq @ z`` product.
        self._row_sums = self.sq.sum(axis=1)

    # -- raw sums -------------------------------------------------------- #

    def intracluster_sum(self, partition: Partition) -> float:
        """``Σ_i F_{A_i}`` — raw quadratic intracluster sum."""
        z = _membership(partition, self.n)
        return float(np.einsum("im,ij,jm->", z, self.sq, z) / 2.0)

    def intercluster_sum(self, partition: Partition) -> float:
        """``Σ_i D_{A_i}`` — raw quadratic intercluster sum (pairs counted twice)."""
        z = _membership(partition, self.n)
        ones = np.ones(self.n)
        # For each cluster c: z_c' sq (1 - z_c).
        sq_z = self.sq @ z                 # (N, M)
        total_per_node = self.sq @ ones    # (N,)
        inside = np.einsum("im,im->", z, sq_z)
        alls = float((z * total_per_node[:, None]).sum())
        return float(alls - inside)

    # -- normalized functions -------------------------------------------- #

    def similarity(self, partition: Partition) -> float:
        """``F_G`` (eq. 2)."""
        pairs = sum(x * (x - 1) // 2 for x in partition.sizes())
        if pairs == 0:
            raise ValueError(
                "F_G undefined: partition has no intracluster pairs "
                "(all clusters are singletons)"
            )
        return self.intracluster_sum(partition) / pairs / self.norm

    def dissimilarity(self, partition: Partition) -> float:
        """``D_G`` (eq. 5)."""
        count = sum(x * (self.n - x) for x in partition.sizes())
        if count == 0:
            raise ValueError(
                "D_G undefined: partition has no intercluster pairs "
                "(a single cluster covers the whole network)"
            )
        return self.intercluster_sum(partition) / count / self.norm

    def clustering_coefficient(self, partition: Partition) -> float:
        """``C_c = D_G / F_G``, from a single ``sq @ z`` product.

        The two-call path (:meth:`dissimilarity` / :meth:`similarity`)
        forms the cluster load matrix twice; here both quadratic sums are
        derived from one product plus the precomputed row sums of ``T²``:
        ``Σ_i F_{A_i} = ⟨z, sq z⟩ / 2`` and ``Σ_i D_{A_i} = Σ_i r_i -
        ⟨z, sq z⟩`` for assigned rows ``i``.  The equality with the
        two-call path is asserted by the quality test suite.
        """
        pairs = sum(x * (x - 1) // 2 for x in partition.sizes())
        if pairs == 0:
            raise ValueError(
                "F_G undefined: partition has no intracluster pairs "
                "(all clusters are singletons)"
            )
        count = sum(x * (self.n - x) for x in partition.sizes())
        if count == 0:
            raise ValueError(
                "D_G undefined: partition has no intercluster pairs "
                "(a single cluster covers the whole network)"
            )
        z = _membership(partition, self.n)
        inside = float(np.einsum("im,im->", z, self.sq @ z))
        alls = float((z.sum(axis=1) * self._row_sums).sum())
        f_g = (inside / 2.0) / pairs / self.norm
        d_g = (alls - inside) / count / self.norm
        return d_g / f_g

    # -- swap deltas for search ------------------------------------------ #

    def cluster_load_matrix(self, partition: Partition) -> np.ndarray:
        """``G[s, c] = Σ_{x ∈ cluster c} T[s, x]²`` — the search's incremental state."""
        z = _membership(partition, self.n)
        return self.sq @ z

    def swap_delta_raw(
        self, labels: np.ndarray, g: np.ndarray, a: int, b: int
    ) -> float:
        """Change of ``Σ F_{A_i}`` when switches ``a`` and ``b`` swap clusters.

        ``g`` must be the current :meth:`cluster_load_matrix`.  Both
        switches must be assigned and in different clusters.  O(1).
        """
        ca, cb = int(labels[a]), int(labels[b])
        if ca == cb:
            return 0.0
        return float(
            g[b, ca] + g[a, cb] - g[a, ca] - g[b, cb] - 2.0 * self.sq[a, b]
        )

    def apply_swap(self, labels: np.ndarray, g: np.ndarray, a: int, b: int) -> None:
        """In-place update of ``labels`` and ``g`` for the swap ``a ↔ b``. O(N)."""
        ca, cb = int(labels[a]), int(labels[b])
        if ca == cb:
            return
        diff = self.sq[:, b] - self.sq[:, a]
        g[:, ca] += diff
        g[:, cb] -= diff
        labels[a], labels[b] = cb, ca


def weighted_mapping_cost(
    table: TableLike,
    mapping: ProcessMapping,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Quadratic communication cost of a *process-level* mapping.

    Extension beyond the paper's equal-requirements assumption: with ``W``
    a symmetric process×process communication-intensity matrix,

        cost = Σ_{p<q} W[p, q] · T[switch(p), switch(q)]²

    where processes are numbered workload-order (cluster 0 first).  When
    ``weights`` is ``None``, ``W[p, q] = w_p · w_q`` for intracluster pairs
    (using each cluster's ``comm_weight``) and 0 otherwise, which reduces
    to the paper's objective when every weight is 1.
    """
    sq = _as_squared(table)
    workload = mapping.workload
    topo = mapping.topology
    # Flatten process ids and their switches.
    procs = []
    for ci, c in enumerate(workload.clusters):
        for pi in range(c.num_processes):
            procs.append((ci, pi))
    switches = np.array(
        [topo.host_switch(mapping.host_of[key]) for key in procs], dtype=int
    )
    p = len(procs)
    if weights is None:
        w = np.zeros((p, p))
        cluster_ids = np.array([ci for ci, _ in procs])
        wvec = np.array([workload.clusters[ci].comm_weight for ci, _ in procs])
        same = cluster_ids[:, None] == cluster_ids[None, :]
        w = np.where(same, wvec[:, None] * wvec[None, :], 0.0)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (p, p):
            raise ValueError(f"weights must be {p}x{p}, got {w.shape}")
        if not np.allclose(w, w.T):
            raise ValueError("weights must be symmetric")
    np.fill_diagonal(w, 0.0)
    cost = 0.5 * float(np.einsum("pq,pq->", w, sq[np.ix_(switches, switches)]))
    return cost


__all__ = [
    "QualityEvaluator",
    "cluster_similarity",
    "cluster_dissimilarity",
    "similarity_global",
    "dissimilarity_global",
    "clustering_coefficient",
    "weighted_mapping_cost",
]
