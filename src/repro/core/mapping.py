"""Workloads, process mappings and switch partitions.

The paper's object of optimization looks process-level ("mapping of
processes to processors") but, under its simplifying assumptions — one
process per processor, every logical cluster sized to an integer multiple
of a switch's host count — it collapses to a *partition of the network
switches* into clusters, one per application.  This module models both
levels and the collapse between them:

- :class:`LogicalCluster` / :class:`Workload` — the applications;
- :class:`Partition` — an assignment of switches to clusters;
- :class:`ProcessMapping` — an explicit process→host table, convertible to
  a partition when switch-purity holds and expandable from one otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.topology.graph import Topology
from repro.util.rng import SeedLike, as_rng


@dataclass(frozen=True)
class LogicalCluster:
    """One application: a named group of communicating processes.

    ``comm_weight`` expresses relative per-process communication intensity
    (the paper fixes it to 1.0 for every application; the weighted quality
    functions and the traffic generator honour other values).
    """

    name: str
    num_processes: int
    comm_weight: float = 1.0

    def __post_init__(self):
        if self.num_processes <= 0:
            raise ValueError(f"cluster {self.name!r} needs >= 1 process")
        if self.comm_weight < 0:
            raise ValueError(f"cluster {self.name!r} has negative comm_weight")


class Workload:
    """An ordered set of logical clusters to be mapped onto a topology."""

    def __init__(self, clusters: Sequence[LogicalCluster]):
        if not clusters:
            raise ValueError("a workload needs at least one logical cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names in workload: {names}")
        self.clusters: Tuple[LogicalCluster, ...] = tuple(clusters)

    @classmethod
    def uniform(cls, num_clusters: int, processes_per_cluster: int) -> "Workload":
        """The paper's workload shape: equal clusters, equal requirements."""
        if num_clusters <= 0:
            raise ValueError(f"num_clusters must be > 0, got {num_clusters}")
        return cls(
            [
                LogicalCluster(f"app{i}", processes_per_cluster)
                for i in range(num_clusters)
            ]
        )

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_processes(self) -> int:
        return sum(c.num_processes for c in self.clusters)

    def switch_quota(self, topology: Topology) -> List[int]:
        """Switches each cluster occupies under the paper's assumptions.

        Requires every cluster's process count to be an integer multiple of
        ``hosts_per_switch`` and the total to fit the machine exactly when
        summed (a partial machine is allowed: quotas may sum to < N).
        """
        hps = topology.hosts_per_switch
        if hps <= 0:
            raise ValueError("topology has no hosts to map processes onto")
        quotas = []
        for c in self.clusters:
            if c.num_processes % hps != 0:
                raise ValueError(
                    f"cluster {c.name!r} has {c.num_processes} processes, not a "
                    f"multiple of {hps} hosts/switch (paper assumption)"
                )
            quotas.append(c.num_processes // hps)
        if sum(quotas) > topology.num_switches:
            raise ValueError(
                f"workload needs {sum(quotas)} switches, topology has "
                f"{topology.num_switches}"
            )
        return quotas

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.num_processes}" for c in self.clusters)
        return f"Workload({inner})"


class Partition:
    """A partition of switches ``0..N-1`` into ``M`` clusters.

    ``labels[s]`` is the cluster index of switch ``s``; ``-1`` marks an
    unassigned switch (allowed so partial-machine workloads can be
    expressed; the quality functions only look at assigned switches).
    """

    def __init__(self, labels: Sequence[int]):
        arr = np.asarray(labels, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("labels must be a non-empty 1-D sequence")
        used = sorted(set(int(x) for x in arr if x >= 0))
        if used and used != list(range(len(used))):
            raise ValueError(
                f"cluster labels must be consecutive starting at 0, got {used}"
            )
        self.labels = arr.copy()
        self.labels.setflags(write=False)

    @classmethod
    def from_clusters(
        cls, clusters: Sequence[Sequence[int]], num_switches: int
    ) -> "Partition":
        """Build from explicit member lists, e.g. ``[(5,6,8,15), (0,1,11,12), ...]``."""
        labels = np.full(num_switches, -1, dtype=np.int64)
        for idx, members in enumerate(clusters):
            for s in members:
                if not (0 <= s < num_switches):
                    raise ValueError(f"switch {s} outside 0..{num_switches - 1}")
                if labels[s] != -1:
                    raise ValueError(f"switch {s} assigned to two clusters")
                labels[s] = idx
        return cls(labels)

    @property
    def num_switches(self) -> int:
        return int(self.labels.size)

    @property
    def num_clusters(self) -> int:
        assigned = self.labels[self.labels >= 0]
        return int(assigned.max()) + 1 if assigned.size else 0

    def clusters(self) -> List[Tuple[int, ...]]:
        """Member switches per cluster, each ascending."""
        out: List[List[int]] = [[] for _ in range(self.num_clusters)]
        for s, c in enumerate(self.labels):
            if c >= 0:
                out[c].append(s)
        return [tuple(members) for members in out]

    def sizes(self) -> List[int]:
        """Member count per cluster, in cluster-index order."""
        return [len(c) for c in self.clusters()]

    def assigned_switches(self) -> np.ndarray:
        """Ids of switches that belong to some cluster, ascending."""
        return np.nonzero(self.labels >= 0)[0]

    def canonical_key(self) -> Tuple[Tuple[int, ...], ...]:
        """Label-order-independent identity (clusters as sorted tuple-of-tuples).

        Two partitions describe the same network division iff their keys
        match; used to detect repeated local minima in the Tabu search and
        to compare search results against exhaustive optima.
        """
        return tuple(sorted(self.clusters()))

    def with_swap(self, a: int, b: int) -> "Partition":
        """New partition with switches ``a`` and ``b`` exchanging clusters."""
        labels = self.labels.copy()
        labels[a], labels[b] = labels[b], labels[a]
        return Partition(labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:
        body = " ".join(
            "(" + ",".join(map(str, c)) + ")" for c in self.clusters()
        )
        return f"Partition[{body}]"


def random_partition(
    sizes: Sequence[int],
    num_switches: int,
    seed: SeedLike = None,
) -> Partition:
    """Uniformly random partition with the given cluster sizes.

    This is the paper's "randomly generated mapping" baseline: the switch
    granularity is preserved (each application still owns whole switches),
    only the placement is random.
    """
    total = sum(sizes)
    if total > num_switches:
        raise ValueError(f"cluster sizes sum to {total} > {num_switches} switches")
    if any(s <= 0 for s in sizes):
        raise ValueError(f"cluster sizes must be positive, got {list(sizes)}")
    rng = as_rng(seed)
    order = rng.permutation(num_switches)
    labels = np.full(num_switches, -1, dtype=np.int64)
    pos = 0
    for idx, size in enumerate(sizes):
        for s in order[pos : pos + size]:
            labels[s] = idx
        pos += size
    return Partition(labels)


@dataclass
class ProcessMapping:
    """An explicit process→host assignment for a workload on a topology.

    ``host_of[(cluster_index, process_index)] = host id``.  The inverse
    view and the induced switch partition are derived on demand.
    """

    workload: Workload
    topology: Topology
    host_of: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def validate(self) -> None:
        """One process per processor, all processes placed, hosts in range."""
        expected = {
            (ci, pi)
            for ci, c in enumerate(self.workload.clusters)
            for pi in range(c.num_processes)
        }
        if set(self.host_of) != expected:
            missing = expected - set(self.host_of)
            extra = set(self.host_of) - expected
            raise ValueError(
                f"mapping incomplete: missing={sorted(missing)[:5]} "
                f"extra={sorted(extra)[:5]}"
            )
        hosts = list(self.host_of.values())
        for h in hosts:
            if not (0 <= h < self.topology.num_hosts):
                raise ValueError(f"host {h} outside 0..{self.topology.num_hosts - 1}")
        if len(set(hosts)) != len(hosts):
            raise ValueError("two processes share a host (paper: one per processor)")

    def cluster_of_host(self) -> Dict[int, int]:
        """host → logical-cluster index for every occupied host."""
        return {h: ci for (ci, _pi), h in self.host_of.items()}

    def induced_partition(self) -> Partition:
        """Collapse to a switch partition; requires switch purity.

        Raises ``ValueError`` when any switch hosts processes from two
        applications (the partition — and hence ``C_c`` — is undefined
        then, exactly as in the paper).
        """
        owner = np.full(self.topology.num_switches, -1, dtype=np.int64)
        for (ci, _pi), h in self.host_of.items():
            s = self.topology.host_switch(h)
            if owner[s] == -1:
                owner[s] = ci
            elif owner[s] != ci:
                raise ValueError(
                    f"switch {s} hosts processes of clusters {owner[s]} and {ci}; "
                    "induced partition undefined"
                )
        return Partition(owner)


def partition_to_mapping(
    partition: Partition, workload: Workload, topology: Topology
) -> ProcessMapping:
    """Expand a switch partition into a full process→host mapping.

    Processes of each cluster fill the hosts of their assigned switches in
    ascending order.  Requires cluster process counts to exactly fill the
    assigned switches.
    """
    mapping = ProcessMapping(workload, topology)
    clusters = partition.clusters()
    if len(clusters) != workload.num_clusters:
        raise ValueError(
            f"partition has {len(clusters)} clusters, workload has "
            f"{workload.num_clusters}"
        )
    for ci, members in enumerate(clusters):
        capacity = len(members) * topology.hosts_per_switch
        need = workload.clusters[ci].num_processes
        if capacity != need:
            raise ValueError(
                f"cluster {ci} ({workload.clusters[ci].name!r}) has {need} "
                f"processes but its switches hold {capacity} hosts"
            )
        hosts = [h for s in members for h in topology.switch_hosts(s)]
        for pi, h in enumerate(hosts):
            mapping.host_of[(ci, pi)] = h
    mapping.validate()
    return mapping


__all__ = [
    "LogicalCluster",
    "Workload",
    "Partition",
    "ProcessMapping",
    "random_partition",
    "partition_to_mapping",
]
