"""The table of equivalent distances (the paper's communication-cost model).

For a pair of switches ``(i, j)``: keep only the links lying on shortest
legal paths between them (as supplied by the routing algorithm), replace
every link with a unit resistor, and define the *equivalent distance*
``T_ij`` as the equivalent electrical resistance between ``i`` and ``j``.
Parallel shortest paths lower the resistance, so the metric rewards path
diversity as well as proximity — unlike plain hop count.

The resulting table does not satisfy the triangle inequality (it is not a
metric), which is why the paper pairs it with combinatorial search instead
of Euclidean clustering; :mod:`repro.distance.metrics` quantifies this.
"""

from repro.distance.resistance import (
    equivalent_resistance,
    resistance_matrix,
)
from repro.distance.table import DistanceTable, build_distance_table, hop_distance_table
from repro.distance.cache import (
    CacheStats,
    TableCache,
    cached_distance_table,
    cached_routing_table,
    configure_cache,
    default_cache,
    topology_fingerprint,
)
from repro.distance.metrics import (
    triangle_violations,
    quadratic_mean,
    distance_hop_correlation,
)

__all__ = [
    "equivalent_resistance",
    "resistance_matrix",
    "DistanceTable",
    "build_distance_table",
    "hop_distance_table",
    "CacheStats",
    "TableCache",
    "cached_distance_table",
    "cached_routing_table",
    "configure_cache",
    "default_cache",
    "topology_fingerprint",
    "triangle_violations",
    "quadratic_mean",
    "distance_hop_correlation",
]
