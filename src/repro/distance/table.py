"""The table of equivalent distances ``T_N``.

:func:`build_distance_table` is the reference implementation of the model
in Section 3 of the paper: per switch pair, extract the shortest-legal-path
link support from the routing algorithm and measure the equivalent
resistance across it.  :class:`DistanceTable` wraps the resulting ``N×N``
matrix with the derived quantities the quality functions need.
"""

from __future__ import annotations


import numpy as np

from repro.distance.resistance import equivalent_resistance
from repro.routing.base import RoutingAlgorithm
from repro.util.validation import check_square_matrix


class DistanceTable:
    """An ``N×N`` table of inter-switch communication-cost distances.

    Invariants enforced at construction: square, zero diagonal,
    non-negative entries.  Symmetry is *not* required by the interface
    (some routing functions are asymmetric) but holds for the tables this
    library builds, and the quality functions only read the upper triangle.
    """

    def __init__(self, values: np.ndarray, *, kind: str = "equivalent",
                 name: str = ""):
        a = check_square_matrix(values, "distance table")
        if not np.allclose(np.diag(a), 0.0, atol=1e-12):
            raise ValueError("distance table diagonal must be zero")
        if (a < -1e-12).any():
            raise ValueError("distance table entries must be non-negative")
        self.values = np.clip(a, 0.0, None)
        self.values.setflags(write=False)
        self.kind = kind
        self.name = name or f"T-{a.shape[0]}"

    @property
    def num_nodes(self) -> int:
        return self.values.shape[0]

    def __getitem__(self, key) -> float:
        return self.values[key]

    def squared(self) -> np.ndarray:
        """Element-wise square ``T_ij²`` — the quantity the quality functions sum."""
        return self.values ** 2

    def quadratic_mean_squared(self) -> float:
        """Mean of ``T_ij²`` over unordered pairs ``i < j``.

        This is the normalization denominator shared by the paper's
        similarity and dissimilarity global functions (the "quadratic
        average value of all of the distances between the network nodes").
        """
        n = self.num_nodes
        if n < 2:
            return 0.0
        sq = self.squared()
        iu = np.triu_indices(n, k=1)
        return float(sq[iu].mean())

    def is_symmetric(self, atol: float = 1e-9) -> bool:
        """True when the table equals its transpose within ``atol``."""
        return bool(np.allclose(self.values, self.values.T, atol=atol))

    def to_dict(self) -> dict:
        """Serializable representation (used by example scripts to cache tables)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DistanceTable":
        return cls(np.asarray(d["values"], dtype=float), kind=d.get("kind", "equivalent"),
                   name=d.get("name", ""))

    def __repr__(self) -> str:
        return f"DistanceTable(name={self.name!r}, kind={self.kind!r}, n={self.num_nodes})"


def build_distance_table(routing: RoutingAlgorithm) -> DistanceTable:
    """Build the paper's table of equivalent distances for a routed topology.

    For each unordered pair ``(i, j)``: take the links on shortest legal
    ``i → j`` paths, treat each as a 1 Ω resistor, and record the equivalent
    resistance.  With a single shortest path of ``h`` hops this degenerates
    to ``h``; with parallel shortest paths it drops below ``h``.
    """
    topo = routing.topology
    n = topo.num_switches
    t = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            links = routing.links_on_shortest_paths(i, j)
            r = equivalent_resistance(links, i, j)
            t[i, j] = r
            t[j, i] = r
    return DistanceTable(t, kind="equivalent", name=f"T-{routing.name}-{topo.name}")


def hop_distance_table(routing: RoutingAlgorithm) -> DistanceTable:
    """Plain legal hop distances as a :class:`DistanceTable`.

    The ablation baseline: what the quality functions and the Tabu search
    see when the resistance model is replaced by hop count.
    """
    d = routing.distances().astype(float)
    d = 0.5 * (d + d.T)  # symmetrize; equal for the algorithms shipped here
    return DistanceTable(d, kind="hops", name=f"H-{routing.name}-{routing.topology.name}")


__all__ = ["DistanceTable", "build_distance_table", "hop_distance_table"]
