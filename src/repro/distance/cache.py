"""Keyed LRU caching of distance and routing tables.

Every figure driver, benchmark and experiment rebuilds the same 16/24-switch
tables of equivalent distances and simulator routing tables dozens of times;
both are pure functions of (topology content, routing algorithm identity),
so this module memoizes them behind a content-hash key:

- :func:`topology_fingerprint` — SHA-256 over the switch count, the sorted
  link list and the port configuration.  Mutating a topology (adding or
  removing a link, changing host counts) necessarily changes the key.
- :func:`routing_cache_key` — the fingerprint plus the routing algorithm's
  class, report name and root (for rooted algorithms like up*/down*).

:class:`TableCache` is a small thread-safe LRU with hit/miss/eviction
accounting; a module-level default instance backs
:func:`cached_distance_table` / :func:`cached_routing_table`, which the
scheduler and experiment setups use.  Caching is semantically invisible —
``DistanceTable`` values are immutable and ``RoutingTable`` is read-only
after construction — and can be disabled globally (``--no-cache`` on the
CLI, ``REPRO_NO_CACHE=1`` in the environment, or
:func:`configure_cache`).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.distance.table import (
    DistanceTable,
    build_distance_table,
    hop_distance_table,
)
from repro.obs import metrics as _metrics
from repro.routing.base import RoutingAlgorithm
from repro.routing.tables import RoutingTable
from repro.topology.graph import Topology

NO_CACHE_ENV = "REPRO_NO_CACHE"


def topology_fingerprint(topology: Topology) -> str:
    """Stable content hash of a topology (links, sizes, port layout)."""
    h = hashlib.sha256()
    h.update(
        repr((
            topology.num_switches,
            topology.links,
            topology.hosts_per_switch,
            topology.switch_ports,
        )).encode()
    )
    return h.hexdigest()


def routing_cache_key(routing: RoutingAlgorithm, kind: str) -> Tuple:
    """Cache key identifying ``kind`` of table built from ``routing``.

    Includes the routing algorithm's class and name, its spanning-tree root
    when it has one (up*/down* tables differ per root) and the topology
    content hash — but *not* object identities, so equal topologies routed
    the same way share cache entries.
    """
    return (
        kind,
        type(routing).__name__,
        routing.name,
        getattr(routing, "root", None),
        topology_fingerprint(routing.topology),
    )


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one :class:`TableCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TableCache:
    """A thread-safe LRU cache with hit/miss/eviction accounting.

    Values are built at most once per key (under the lock — builders here
    are pure and fast relative to contention) and returned by reference;
    callers must treat them as immutable, which every cached table type is.
    """

    def __init__(self, maxsize: int = 32, *, name: str = "tables"):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.name = str(name)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss.

        Each lookup also ticks the ``cache.<name>.{hits,misses,evictions}``
        counters on the active :class:`~repro.obs.metrics.MetricsRegistry`
        (a no-op when telemetry is off), so traced runs report their
        table-cache hit rates without polling :meth:`stats`.
        """
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                value = self._entries[key]
                evicted = False
                hit = True
            else:
                self._misses += 1
                value = builder()
                self._entries[key] = value
                evicted = len(self._entries) > self.maxsize
                if evicted:
                    self._entries.popitem(last=False)
                    self._evictions += 1
                hit = False
        _metrics.inc(f"cache.{self.name}.{'hits' if hit else 'misses'}")
        if evicted:
            _metrics.inc(f"cache.{self.name}.evictions")
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters and current size."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0


_default_cache = TableCache(maxsize=int(os.environ.get("REPRO_CACHE_SIZE", "32")))
_enabled = os.environ.get(NO_CACHE_ENV, "").strip() not in ("1", "true", "yes")


def default_cache() -> TableCache:
    """The process-wide cache behind the ``cached_*`` helpers."""
    return _default_cache


def cache_enabled() -> bool:
    """Whether the module-level cache is consulted by the helpers."""
    return _enabled


def configure_cache(*, enabled: Optional[bool] = None,
                    clear: bool = False) -> None:
    """Toggle (and optionally flush) the module-level cache."""
    global _enabled
    if enabled is not None:
        _enabled = bool(enabled)
    if clear:
        _default_cache.clear()


def cached_distance_table(routing: RoutingAlgorithm, *,
                          kind: str = "equivalent",
                          cache: Optional[TableCache] = None) -> DistanceTable:
    """:func:`build_distance_table` (or hop table) through the LRU cache.

    ``kind`` selects the distance model: ``"equivalent"`` (the paper's
    resistance table) or ``"hops"`` (the ablation baseline).  Pass an
    explicit ``cache`` to bypass the module-level one (tests do); with the
    module cache disabled the table is built directly.
    """
    if kind == "equivalent":
        builder = build_distance_table
    elif kind == "hops":
        builder = hop_distance_table
    else:
        raise ValueError(f"unknown distance-table kind {kind!r}")
    if cache is None:
        if not _enabled:
            return builder(routing)
        cache = _default_cache
    key = routing_cache_key(routing, f"distance:{kind}")
    return cache.get_or_build(key, lambda: builder(routing))


def cached_routing_table(routing: RoutingAlgorithm, *,
                         cache: Optional[TableCache] = None) -> RoutingTable:
    """A simulator :class:`RoutingTable` through the LRU cache."""
    if cache is None:
        if not _enabled:
            return RoutingTable(routing)
        cache = _default_cache
    key = routing_cache_key(routing, "routing-table")
    return cache.get_or_build(key, lambda: RoutingTable(routing))


__all__ = [
    "NO_CACHE_ENV",
    "CacheStats",
    "TableCache",
    "topology_fingerprint",
    "routing_cache_key",
    "default_cache",
    "cache_enabled",
    "configure_cache",
    "cached_distance_table",
    "cached_routing_table",
]
