"""Diagnostics on distance tables.

The paper stresses two structural facts about the table of equivalent
distances: (1) it violates the triangle inequality, so it is not a metric
and Euclidean clustering does not apply; (2) it is strongly correlated with
network performance.  These helpers quantify both and support the ablation
that compares the equivalent-distance model against plain hop counts.
"""

from __future__ import annotations


import numpy as np

from repro.distance.table import DistanceTable
from repro.util.stats import pearson


def triangle_violations(table: DistanceTable, atol: float = 1e-9) -> int:
    """Count ordered triples ``(i, j, k)`` with ``T_ik > T_ij + T_jk + atol``.

    Nonzero counts confirm the table is not a metric; hop-count tables
    always return 0.
    """
    t = table.values
    n = table.num_nodes
    count = 0
    for j in range(n):
        # T_ij + T_jk for all i,k via broadcasting.
        via_j = t[:, j][:, None] + t[j, :][None, :]
        viol = t > via_j + atol
        # Exclude degenerate triples with repeated nodes.
        viol[np.arange(n), np.arange(n)] = False
        viol[j, :] = False
        viol[:, j] = False
        count += int(viol.sum())
    return count


def quadratic_mean(table: DistanceTable) -> float:
    """Root of the mean squared distance over unordered pairs."""
    return float(np.sqrt(table.quadratic_mean_squared()))


def distance_hop_correlation(table: DistanceTable, hops: DistanceTable) -> float:
    """Pearson correlation between two tables over unordered pairs.

    Near 1 means the resistance model adds little over hop count for this
    topology (few parallel shortest paths); materially below 1 means the
    model is distinguishing path-diversity that hop count cannot see.
    """
    if table.num_nodes != hops.num_nodes:
        raise ValueError(
            f"table size mismatch: {table.num_nodes} vs {hops.num_nodes}"
        )
    iu = np.triu_indices(table.num_nodes, k=1)
    return pearson(table.values[iu], hops.values[iu])


__all__ = ["triangle_violations", "quadratic_mean", "distance_hop_correlation"]
