"""Equivalent electrical resistance of unit-resistor networks.

The classical identity used throughout: with ``L`` the graph Laplacian of
the resistor network and ``L⁺`` its Moore-Penrose pseudoinverse,

    R(a, b) = L⁺[a,a] + L⁺[b,b] - 2 L⁺[a,b].

The networks here are tiny (at most the N ≤ ~64 switches of a topology),
so a dense pseudoinverse is both simplest and fast; no sparse machinery is
warranted (profile before optimizing).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.topology.graph import Link


def _component_nodes(links: Iterable[Link], anchor: int) -> List[int]:
    """Nodes of the connected component of ``anchor`` in the link set."""
    adj: Dict[int, List[int]] = {}
    for u, v in links:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    if anchor not in adj:
        return [anchor]
    seen = {anchor}
    stack = [anchor]
    while stack:
        x = stack.pop()
        for y in adj[x]:
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return sorted(seen)


def equivalent_resistance(links: Iterable[Link], a: int, b: int) -> float:
    """Equivalent resistance between ``a`` and ``b``, each link = 1 Ω.

    Node labels may be arbitrary ints; only the component containing ``a``
    is considered.  Raises ``ValueError`` when ``b`` is not connected to
    ``a`` (infinite resistance would otherwise propagate NaNs into the
    distance table silently).
    """
    if a == b:
        return 0.0
    links = list(links)
    nodes = _component_nodes(links, a)
    index = {node: i for i, node in enumerate(nodes)}
    if b not in index:
        raise ValueError(f"nodes {a} and {b} are not connected by the given links")
    n = len(nodes)
    lap = np.zeros((n, n), dtype=float)
    for u, v in links:
        iu, iv = index.get(u), index.get(v)
        if iu is None or iv is None:
            continue  # link in another component
        lap[iu, iu] += 1.0
        lap[iv, iv] += 1.0
        lap[iu, iv] -= 1.0
        lap[iv, iu] -= 1.0
    pinv = np.linalg.pinv(lap, hermitian=True)
    ia, ib = index[a], index[b]
    r = pinv[ia, ia] + pinv[ib, ib] - 2.0 * pinv[ia, ib]
    return float(r)


def resistance_matrix(num_nodes: int, links: Iterable[Link]) -> np.ndarray:
    """All-pairs equivalent resistance of one connected unit-resistor network.

    Utility for tests and for the "raw resistance" ablation (resistance over
    the *whole* topology rather than per-pair shortest-path subnetworks).
    ``inf`` marks disconnected pairs.
    """
    links = list(links)
    lap = np.zeros((num_nodes, num_nodes), dtype=float)
    for u, v in links:
        lap[u, u] += 1.0
        lap[v, v] += 1.0
        lap[u, v] -= 1.0
        lap[v, u] -= 1.0
    pinv = np.linalg.pinv(lap, hermitian=True)
    d = np.diag(pinv)
    r = d[:, None] + d[None, :] - 2.0 * pinv

    # Mark cross-component pairs as inf (pinv silently returns finite
    # garbage for them because the Laplacian is block diagonal).
    comp = np.full(num_nodes, -1, dtype=int)
    cid = 0
    adj: Dict[int, List[int]] = {i: [] for i in range(num_nodes)}
    for u, v in links:
        adj[u].append(v)
        adj[v].append(u)
    for s in range(num_nodes):
        if comp[s] >= 0:
            continue
        stack = [s]
        comp[s] = cid
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if comp[y] < 0:
                    comp[y] = cid
                    stack.append(y)
        cid += 1
    cross = comp[:, None] != comp[None, :]
    r = np.where(cross, np.inf, r)
    np.fill_diagonal(r, 0.0)
    return r


__all__ = ["equivalent_resistance", "resistance_matrix"]
