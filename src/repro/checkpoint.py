"""Checkpoint/resume for long sweeps and multi-start searches.

A :class:`SweepCheckpoint` is an append-only JSONL file recording, per
completed job of a :func:`repro.parallel.parallel_map` run, the job index
and its pickled result.  A run that dies — killed process, broken pool,
exhausted retries — leaves every completed job on disk; re-running with
the same checkpoint executes only the missing jobs and merges in job
order, so the resumed run's results are bit-identical to an uninterrupted
one (the jobs themselves are deterministic by the library's parallel
contract).

Robustness properties:

- the file starts with a header line carrying a caller-supplied ``key``
  (e.g. a topology fingerprint plus study parameters); resuming against a
  checkpoint whose key does not match raises :class:`CheckpointMismatch`
  instead of silently mixing incompatible runs;
- every record is flushed and fsynced before the job counts as completed,
  so a kill can lose at most the in-flight job;
- a truncated trailing line (the classic kill-mid-write artifact) is
  detected and ignored on load — a resume sees every fully-written record
  no matter at which byte the writer died;
- compaction (and initial creation) is crash-safe: the new file is
  written to a temporary sibling, flushed, fsynced and atomically swapped
  in with ``os.replace``, and the directory entry is fsynced, so a crash
  leaves either the old file or the new one, never a torn hybrid (a
  leftover ``*.tmp`` from a crashed rewrite is ignored and overwritten);
- the append handle is kept open across records and fsynced again on
  :meth:`SweepCheckpoint.close` (checkpoints are context managers;
  ``with SweepCheckpoint(...) as ck:`` closes durably).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import trace as _trace

PathLike = Union[str, Path]

_MAGIC = "repro-sweep-checkpoint"
_VERSION = 1


class CheckpointMismatch(RuntimeError):
    """The checkpoint on disk belongs to a different run configuration."""


def fsync_dir(directory: PathLike) -> None:
    """fsync a directory so a just-completed rename survives a power cut."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories not fsyncable here
        pass
    finally:
        os.close(fd)


# Backward-compatible private alias (kept for in-tree callers).
_fsync_dir = fsync_dir


def atomic_write_text(path: PathLike, text: str) -> None:
    """Replace ``path`` with ``text`` crash-safely: temp + ``os.replace``.

    The new content is written to a temporary sibling, flushed and fsynced,
    then atomically swapped in; the directory entry is fsynced so the
    rename itself is durable.  A crash at any byte leaves either the old
    file or the complete new one — never a torn hybrid.  This is the write
    discipline shared by :class:`SweepCheckpoint` compaction and the
    service's write-ahead log (:mod:`repro.service.wal`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


class SweepCheckpoint:
    """Append-only JSONL record of completed jobs of one sweep.

    Parameters
    ----------
    path:
        Checkpoint file; created (with parents) on first record.
    key:
        Identity of the run configuration.  Loading an existing file with
        a different key raises :class:`CheckpointMismatch`.
    total:
        Expected number of jobs; checked against the header when both are
        known.
    """

    def __init__(self, path: PathLike, *, key: str = "",
                 total: Optional[int] = None):
        self.path = Path(path)
        self.key = str(key)
        self.total = total
        self._results: Dict[int, Any] = {}
        self._rewrite_needed = False
        self._fh = None
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        lines = self.path.read_text().split("\n")
        header = self._parse_line(lines[0])
        if header is None or header.get("magic") != _MAGIC:
            raise CheckpointMismatch(
                f"{self.path} is not a repro sweep checkpoint"
            )
        if header.get("version", 0) > _VERSION:
            raise CheckpointMismatch(
                f"{self.path}: checkpoint version {header.get('version')} "
                f"is newer than supported ({_VERSION})"
            )
        if header.get("key", "") != self.key:
            raise CheckpointMismatch(
                f"{self.path} was written for a different run "
                f"(key {header.get('key', '')!r}, expected {self.key!r}); "
                "delete it or pass a matching configuration"
            )
        header_total = header.get("total")
        if (self.total is not None and header_total is not None
                and int(header_total) != int(self.total)):
            raise CheckpointMismatch(
                f"{self.path} records a sweep of {header_total} jobs, "
                f"this run has {self.total}"
            )
        if self.total is None and header_total is not None:
            self.total = int(header_total)
        for raw in lines[1:]:
            if not raw:
                continue
            entry = self._parse_line(raw)
            if entry is None:
                # Truncated trailing line from a mid-write kill: drop it
                # (and anything after it) and compact on the next record.
                self._rewrite_needed = True
                break
            self._results[int(entry["i"])] = pickle.loads(
                base64.b64decode(entry["r"])
            )
        _trace.event("checkpoint.load", path=str(self.path),
                     completed=len(self._results), total=self.total,
                     truncated_tail=self._rewrite_needed)

    @staticmethod
    def _parse_line(raw: str) -> Optional[Dict[str, Any]]:
        try:
            obj = json.loads(raw)
        except (json.JSONDecodeError, ValueError):
            return None
        return obj if isinstance(obj, dict) else None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record(self, index: int, result: Any) -> None:
        """Persist one completed job durably (flush + fsync)."""
        index = int(index)
        self._results[index] = result
        if self._rewrite_needed or not self.path.exists():
            self._rewrite()
            return
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "a")
        self._fh.write(self._entry_line(index, result))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush, fsync and close the append handle (idempotent)."""
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _entry_line(self, index: int, result: Any) -> str:
        payload = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        return json.dumps({"i": index, "r": payload}) + "\n"

    def _header_line(self) -> str:
        header: Dict[str, Any] = {
            "magic": _MAGIC,
            "version": _VERSION,
            "key": self.key,
        }
        if self.total is not None:
            header["total"] = int(self.total)
        return json.dumps(header) + "\n"

    def _rewrite(self) -> None:
        """Write the full checkpoint crash-safely: temp + atomic replace.

        A crash at any point leaves either the previous file or the
        complete new one — never a torn hybrid.  The directory entry is
        fsynced after the swap so the rename itself is durable.
        """
        self.close()
        lines = [self._header_line()]
        lines.extend(self._entry_line(index, self._results[index])
                     for index in sorted(self._results))
        atomic_write_text(self.path, "".join(lines))
        self._rewrite_needed = False

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def completed(self, total: Optional[int] = None) -> Dict[int, Any]:
        """Completed results as ``{job index: result}``.

        ``total`` (when given) is validated against the recorded sweep
        size; indices at or beyond it raise :class:`CheckpointMismatch`
        rather than being silently dropped.
        """
        if total is not None:
            if self.total is not None and int(total) != int(self.total):
                raise CheckpointMismatch(
                    f"{self.path} records a sweep of {self.total} jobs, "
                    f"this run has {total}"
                )
            out_of_range = [i for i in self._results if i >= int(total)]
            if out_of_range:
                raise CheckpointMismatch(
                    f"{self.path} contains job index "
                    f"{max(out_of_range)} beyond sweep size {total}"
                )
        return dict(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, index: int) -> bool:
        return int(index) in self._results

    def __repr__(self) -> str:
        return (
            f"SweepCheckpoint(path={str(self.path)!r}, key={self.key!r}, "
            f"completed={len(self._results)}, total={self.total})"
        )


__all__ = ["CheckpointMismatch", "SweepCheckpoint", "atomic_write_text",
           "fsync_dir"]
