"""The chaos scenarios: inject each fault class, check the invariant.

Every scenario stands up a real daemon (:func:`running_service`), injects
one fault class through :mod:`repro.chaos.inject`, and classifies what
each request got back:

- ``reply`` — an ``ok`` envelope whose canonical payload is
  **byte-identical** to the fault-free result (computed independently in
  this process via :func:`repro.service.batch.execute_request`);
- ``typed-error`` — an error envelope whose ``code`` is in
  :data:`repro.service.protocol.ERROR_CODES`;
- anything else — a hang past the scenario's bound, an untyped error, a
  reply with the wrong bytes — is an **invariant violation** and fails
  the scenario.

The invariant, stated once: *every accepted request terminates with a
byte-identical correct reply or an explicit typed error — never a hang,
never silent loss.*  Scenarios are deterministic given their seed (fault
plans are seeded, injection points are keyed on batch sequence numbers
and frame indices), so a CI failure replays locally with the same seed.
"""

from __future__ import annotations

import json
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.inject import (
    ChaosProxy,
    ChaoticExecutor,
    corrupt_store_entry,
    kill_workers,
)
from repro.chaos.plan import crash_at, hang_at, mutate_frame, slow_at
from repro.obs import trace as _trace
from repro.service.batch import execute_request
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    ERROR_CODES,
    ScheduleRequest,
    decode_line,
    encode_line,
)
from repro.service.server import ServiceConfig, running_service
from repro.service.supervisor import BreakerConfig
from repro.topology.irregular import random_irregular_topology

#: Wall-clock bound on one scenario request: anything still unanswered
#: after this long counts as a hang (invariant violation).
REQUEST_BOUND_SECONDS = 60.0


@dataclass
class RequestOutcome:
    """How one request under chaos terminated."""

    fingerprint: str
    outcome: str                     # "reply" | "typed-error" | "violation"
    code: Optional[str] = None       # error code when outcome != "reply"
    byte_identical: Optional[bool] = None   # for "reply" outcomes
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether this outcome satisfies the invariant."""
        if self.outcome == "reply":
            return bool(self.byte_identical)
        return self.outcome == "typed-error"


@dataclass
class ScenarioResult:
    """One scenario's verdict plus its per-request evidence."""

    name: str
    seed: int
    invariant_ok: bool
    detail: str = ""
    outcomes: List[RequestOutcome] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready summary (for ``repro chaos --json``)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "invariant_ok": self.invariant_ok,
            "detail": self.detail,
            "outcomes": [
                {"fingerprint": o.fingerprint[:12], "outcome": o.outcome,
                 "code": o.code, "byte_identical": o.byte_identical,
                 "ok": o.ok, "detail": o.detail}
                for o in self.outcomes
            ],
            "stats": self.stats,
        }


# --------------------------------------------------------------------- #
# request material
# --------------------------------------------------------------------- #

def _requests(n: int, *, seed: int, priority: int = 0) -> List[ScheduleRequest]:
    """``n`` distinct small requests (same 8-switch topology, new seeds)."""
    topo = random_irregular_topology(8, seed=11, name="chaos8")
    return [
        ScheduleRequest.build(topo, clusters=4, method="tabu",
                              seed=1000 * (seed + 1) + i, priority=priority)
        for i in range(n)
    ]


def _canon(payload: Dict[str, Any]) -> str:
    """Canonical JSON of a response payload (the byte-identity yardstick)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _expected(request: ScheduleRequest) -> str:
    """The fault-free canonical payload, computed independently here."""
    return _canon(execute_request(request.to_dict()))


def _classify_reply(request: ScheduleRequest,
                    call: Callable[[], Dict[str, Any]]) -> RequestOutcome:
    """Run one client call and classify its outcome against the invariant."""
    fingerprint = request.fingerprint()
    start = time.monotonic()
    try:
        reply = call()
    except ServiceError as exc:
        if exc.code in ERROR_CODES:
            return RequestOutcome(fingerprint, "typed-error", code=exc.code)
        return RequestOutcome(fingerprint, "violation", code=exc.code,
                              detail=f"untyped error code {exc.code!r}")
    except Exception as exc:
        return RequestOutcome(fingerprint, "violation",
                              detail=f"{type(exc).__name__}: {exc}")
    elapsed = time.monotonic() - start
    if elapsed > REQUEST_BOUND_SECONDS:
        return RequestOutcome(fingerprint, "violation",
                              detail=f"reply took {elapsed:.1f}s (hang)")
    identical = _canon(reply["result"]) == _expected(request)
    return RequestOutcome(fingerprint, "reply", byte_identical=identical,
                          detail="" if identical else "payload bytes differ")


def _config(workdir: Path, **overrides: Any) -> ServiceConfig:
    """A chaos-friendly service config (ephemeral port, small windows)."""
    defaults: Dict[str, Any] = dict(
        port=0, workers=2, max_batch=8, batch_window=0.01,
        request_deadline=20.0, max_redispatch=2,
        breaker=BreakerConfig(failure_threshold=8, reset_timeout=2.0),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# --------------------------------------------------------------------- #
# scenarios
# --------------------------------------------------------------------- #

def scenario_worker_crash(seed: int, workdir: Path) -> ScenarioResult:
    """A worker dies mid-batch; the batch must be re-dispatched and served."""
    executor = ChaoticExecutor(crash_at(1), str(workdir / "latch"))
    config = _config(workdir, executor=executor)
    outcomes: List[RequestOutcome] = []
    with running_service(config) as service:
        host, port = service.address
        with ServiceClient(host, port, retries=0) as client:
            for request in _requests(2, seed=seed):
                outcomes.append(_classify_reply(
                    request, lambda r=request: client.submit(r)))
        stats = service.supervisor.status()
    ok = (all(o.ok for o in outcomes)
          and all(o.outcome == "reply" for o in outcomes)
          and stats["restarts"] >= 1 and stats["redispatches"] >= 1)
    return ScenarioResult("worker_crash", seed, ok,
                          detail=f"restarts={stats['restarts']} "
                                 f"redispatches={stats['redispatches']}",
                          outcomes=outcomes, stats=stats)


def scenario_worker_hang(seed: int, workdir: Path) -> ScenarioResult:
    """A worker wedges; the deadline must trip typed, then service recovers."""
    executor = ChaoticExecutor(hang_at(1, delay=30.0), str(workdir / "latch"))
    config = _config(workdir, executor=executor, request_deadline=1.0)
    outcomes: List[RequestOutcome] = []
    requests = _requests(2, seed=seed)
    start = time.monotonic()
    with running_service(config) as service:
        host, port = service.address
        with ServiceClient(host, port, retries=0) as client:
            outcomes.append(_classify_reply(
                requests[0], lambda: client.submit(requests[0])))
            outcomes.append(_classify_reply(
                requests[1], lambda: client.submit(requests[1])))
        stats = service.supervisor.status()
    elapsed = time.monotonic() - start
    ok = (outcomes[0].outcome == "typed-error"
          and outcomes[0].code == "deadline"
          and outcomes[1].outcome == "reply" and outcomes[1].ok
          and stats["deadline_trips"] >= 1
          and elapsed < REQUEST_BOUND_SECONDS)
    return ScenarioResult("worker_hang", seed, ok,
                          detail=f"deadline_trips={stats['deadline_trips']} "
                                 f"elapsed={elapsed:.1f}s",
                          outcomes=outcomes, stats=stats)


def scenario_crash_loop(seed: int, workdir: Path) -> ScenarioResult:
    """Workers crash on every attempt; the breaker must open (degraded)."""
    executor = ChaoticExecutor(crash_at(*range(1, 50)),
                               str(workdir / "latch"), once=False)
    config = _config(
        workdir, executor=executor, max_redispatch=1,
        breaker=BreakerConfig(failure_threshold=2, reset_timeout=30.0))
    outcomes: List[RequestOutcome] = []
    with running_service(config) as service:
        host, port = service.address
        with ServiceClient(host, port, retries=0) as client:
            requests = _requests(3, seed=seed)
            # First submit burns the re-dispatch budget -> typed "crashed"
            # and >= 2 breaker failures -> open.
            outcomes.append(_classify_reply(
                requests[0], lambda: client.submit(requests[0])))
            # Breaker now open: new work is rejected typed with a hint.
            for request in requests[1:]:
                outcomes.append(_classify_reply(
                    request, lambda r=request: client.submit(r)))
            alive = bool(client.ping().get("ok"))
            status = client.status()
        stats = service.supervisor.status()
    degraded = [o for o in outcomes[1:] if o.code == "degraded"]
    ok = (outcomes[0].outcome == "typed-error"
          and outcomes[0].code in ("crashed", "degraded")
          and len(degraded) == len(outcomes) - 1
          and all(o.ok for o in outcomes)
          and alive and stats["breaker"]["state"] in ("open", "half_open"))
    return ScenarioResult(
        "crash_loop", seed, ok,
        detail=f"breaker={stats['breaker']['state']} "
               f"degraded_rejects={status.rejected.get('degraded', 0)}",
        outcomes=outcomes, stats=stats)


def scenario_torn_frames(seed: int, workdir: Path) -> ScenarioResult:
    """Flood the daemon with mutated frames; it must answer typed, then serve."""
    config = _config(workdir)
    outcomes: List[RequestOutcome] = []
    flood_stats = {"frames": 0, "typed": 0, "closed": 0, "served": 0}
    with running_service(config) as service:
        host, port = service.address
        request = _requests(1, seed=seed)[0]
        valid = encode_line({"op": "submit", "request": request.to_dict()})
        for i in range(40):
            frame = mutate_frame(valid, seed, i)
            flood_stats["frames"] += 1
            try:
                with socket.create_connection((host, port),
                                              timeout=10.0) as sock:
                    sock.sendall(frame)
                    sock.shutdown(socket.SHUT_WR)
                    raw = sock.makefile("rb").readline()
            except OSError:
                flood_stats["closed"] += 1
                continue
            if not raw:
                flood_stats["closed"] += 1
                continue
            try:
                reply = decode_line(raw)
            except Exception:
                outcomes.append(RequestOutcome(
                    f"flood-{i}", "violation",
                    detail="daemon sent an unparsable reply"))
                continue
            if reply.get("ok"):
                # The mutation happened to produce a well-formed request:
                # serving it is correct behaviour.
                flood_stats["served"] += 1
            else:
                code = (reply.get("error") or {}).get("code")
                if code in ERROR_CODES:
                    flood_stats["typed"] += 1
                else:
                    outcomes.append(RequestOutcome(
                        f"flood-{i}", "violation", code=code,
                        detail=f"untyped error code {code!r}"))
        # After the flood the daemon must still serve real work.
        with ServiceClient(host, port, retries=0) as client:
            outcomes.append(_classify_reply(
                request, lambda: client.submit(request)))
    ok = all(o.ok for o in outcomes) and outcomes[-1].outcome == "reply"
    return ScenarioResult("torn_frames", seed, ok,
                          detail=(f"frames={flood_stats['frames']} "
                                  f"typed={flood_stats['typed']} "
                                  f"closed={flood_stats['closed']} "
                                  f"served={flood_stats['served']}"),
                          outcomes=outcomes, stats=flood_stats)


def scenario_dropped_connection(seed: int, workdir: Path) -> ScenarioResult:
    """The connection dies between submit and reply; the client must heal."""
    config = _config(workdir)
    outcomes: List[RequestOutcome] = []
    with running_service(config) as service:
        host, port = service.address

        def reply_plan(conn: int, frame: int) -> str:
            # Drop the very first submit's reply (conn 0 frame 1 — frame 0
            # is the ping); forward everything else.
            return "drop" if (conn == 0 and frame == 1) else "forward"

        with ChaosProxy(host, port, reply_plan=reply_plan) as proxy:
            phost, pport = proxy.address
            with ServiceClient(phost, pport, retries=3) as client:
                client.ping()
                request = _requests(1, seed=seed)[0]
                outcomes.append(_classify_reply(
                    request, lambda: client.submit(request)))
            injected = proxy.faults_injected
        stats = {"proxy_faults": injected,
                 "served": dict(service.status().served)}
    ok = (all(o.ok for o in outcomes)
          and outcomes[0].outcome == "reply" and injected >= 1)
    return ScenarioResult("dropped_connection", seed, ok,
                          detail=f"proxy_faults={injected}",
                          outcomes=outcomes, stats=stats)


def scenario_store_corruption(seed: int, workdir: Path) -> ScenarioResult:
    """A stored result is corrupted in place; it must never be served."""
    config = _config(workdir)
    outcomes: List[RequestOutcome] = []
    with running_service(config) as service:
        host, port = service.address
        request = _requests(1, seed=seed)[0]
        with ServiceClient(host, port, retries=0) as client:
            outcomes.append(_classify_reply(
                request, lambda: client.submit(request)))
            corrupted = corrupt_store_entry(service.store,
                                            request.fingerprint())
            outcomes.append(_classify_reply(
                request, lambda: client.submit(request)))
        stats = {"corrupted": corrupted,
                 "corruptions_detected": service.store.stats().corruptions}
    ok = (corrupted and all(o.ok for o in outcomes)
          and all(o.outcome == "reply" for o in outcomes)
          and stats["corruptions_detected"] >= 1)
    return ScenarioResult(
        "store_corruption", seed, ok,
        detail=f"corruptions_detected={stats['corruptions_detected']}",
        outcomes=outcomes, stats=stats)


def scenario_pool_death(seed: int, workdir: Path) -> ScenarioResult:
    """Every worker is SIGKILLed mid-batch; the batch must still be served."""
    executor = ChaoticExecutor(slow_at(1, delay=2.0), str(workdir / "latch"))
    config = _config(workdir, executor=executor)
    outcomes: List[RequestOutcome] = []
    killed = 0
    with running_service(config) as service:
        host, port = service.address
        request = _requests(1, seed=seed)[0]
        holder: List[RequestOutcome] = []

        def _submit() -> None:
            with ServiceClient(host, port, retries=0) as client:
                holder.append(_classify_reply(
                    request, lambda: client.submit(request)))

        thread = threading.Thread(target=_submit, daemon=True)
        thread.start()
        # Give the slow batch time to reach the worker, then murder it.
        deadline = time.monotonic() + 10.0
        while killed == 0 and time.monotonic() < deadline:
            time.sleep(0.25)
            killed = kill_workers(service.pool)
        thread.join(timeout=REQUEST_BOUND_SECONDS)
        hung = thread.is_alive()
        outcomes.extend(holder)
        stats = {**service.supervisor.status(), "killed": killed}
    if hung:
        outcomes.append(RequestOutcome(request.fingerprint(), "violation",
                                       detail="submit never returned"))
    ok = (not hung and killed >= 1 and len(outcomes) == 1
          and outcomes[0].outcome == "reply" and outcomes[0].ok
          and stats["restarts"] >= 1)
    return ScenarioResult("pool_death", seed, ok,
                          detail=f"killed={killed} "
                                 f"restarts={stats.get('restarts')}",
                          outcomes=outcomes, stats=stats)


def scenario_wal_replay(seed: int, workdir: Path) -> ScenarioResult:
    """Accepted-but-unreplied work survives a daemon death via the journal."""
    wal_path = workdir / "service.wal"
    requests = _requests(3, seed=seed)
    # Incarnation 1: a huge batch window parks accepted jobs unexecuted;
    # exiting the context kills the daemon with them pending — exactly a
    # crash after acceptance, since no done records were written.
    config1 = _config(workdir, wal_path=wal_path, batch_window=60.0,
                      max_batch=16)
    accepted: List[str] = []
    with running_service(config1) as service:
        host, port = service.address
        with ServiceClient(host, port, retries=0) as client:
            for request in requests:
                reply = client.submit(request, wait=False)
                accepted.append(reply["ticket"])
    # Incarnation 2: same journal; pending work must replay through the
    # normal queue path and land in the store byte-identically.
    outcomes: List[RequestOutcome] = []
    config2 = _config(workdir, wal_path=wal_path)
    with running_service(config2) as service:
        host, port = service.address
        with ServiceClient(host, port, retries=0) as client:
            for request, ticket in zip(requests, accepted):
                deadline = time.monotonic() + REQUEST_BOUND_SECONDS
                reply: Optional[Dict[str, Any]] = None
                lost = ""
                while time.monotonic() < deadline:
                    try:
                        reply = client.result(ticket)
                    except ServiceError as exc:
                        lost = f"journaled request lost ({exc.code})"
                        break
                    if "result" in reply:
                        break
                    time.sleep(0.1)
                if lost or reply is None or "result" not in reply:
                    outcomes.append(RequestOutcome(
                        ticket, "violation",
                        detail=lost or "replayed result never appeared"))
                    continue
                identical = _canon(reply["result"]) == _expected(request)
                outcomes.append(RequestOutcome(
                    ticket, "reply", byte_identical=identical,
                    detail="" if identical else "payload bytes differ"))
        stats = {"replayed": service._counters.get("replayed", 0),
                 "wal": dict(service.wal.status())}
    ok = (len(accepted) == len(requests)
          and stats["replayed"] == len(requests)
          and all(o.ok and o.outcome == "reply" for o in outcomes))
    return ScenarioResult("wal_replay", seed, ok,
                          detail=f"accepted={len(accepted)} "
                                 f"replayed={stats['replayed']}",
                          outcomes=outcomes, stats=stats)


#: Registry: scenario name → callable(seed, workdir) → ScenarioResult.
SCENARIOS: Dict[str, Callable[[int, Path], ScenarioResult]] = {
    "worker_crash": scenario_worker_crash,
    "worker_hang": scenario_worker_hang,
    "crash_loop": scenario_crash_loop,
    "torn_frames": scenario_torn_frames,
    "dropped_connection": scenario_dropped_connection,
    "store_corruption": scenario_store_corruption,
    "pool_death": scenario_pool_death,
    "wal_replay": scenario_wal_replay,
}


def run_scenarios(names: Optional[List[str]] = None, *, seed: int = 0,
                  workdir: Optional[Path] = None) -> List[ScenarioResult]:
    """Run the named scenarios (default: all), each in its own subdir.

    Deterministic given ``seed``; unknown names raise ``ValueError``
    before anything runs.
    """
    chosen = list(names) if names else list(SCENARIOS)
    unknown = [n for n in chosen if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; available: "
            + ", ".join(sorted(SCENARIOS)))
    base = Path(workdir) if workdir is not None \
        else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    results = []
    for name in chosen:
        subdir = base / name
        subdir.mkdir(parents=True, exist_ok=True)
        with _trace.span("chaos.scenario", name=name, seed=seed) as sp:
            result = SCENARIOS[name](seed, subdir)
            sp.set(invariant_ok=result.invariant_ok)
        _trace.event("chaos.scenario.done", name=name,
                     invariant_ok=result.invariant_ok, detail=result.detail)
        results.append(result)
    return results


def render_report(results: List[ScenarioResult]) -> str:
    """A human-readable pass/fail table over scenario results."""
    lines = ["chaos report", "============"]
    width = max((len(r.name) for r in results), default=8)
    for r in results:
        verdict = "OK " if r.invariant_ok else "FAIL"
        lines.append(f"{r.name:<{width}}  {verdict}  {r.detail}")
        for o in r.outcomes:
            if not o.ok:
                lines.append(f"{'':<{width}}    !! {o.fingerprint[:12]} "
                             f"{o.outcome} code={o.code} {o.detail}")
    passed = sum(r.invariant_ok for r in results)
    lines.append(f"{passed}/{len(results)} scenarios hold the invariant")
    return "\n".join(lines)


__all__ = [
    "REQUEST_BOUND_SECONDS",
    "RequestOutcome",
    "SCENARIOS",
    "ScenarioResult",
    "render_report",
    "run_scenarios",
    "scenario_crash_loop",
    "scenario_dropped_connection",
    "scenario_pool_death",
    "scenario_store_corruption",
    "scenario_torn_frames",
    "scenario_wal_replay",
    "scenario_worker_crash",
    "scenario_worker_hang",
]
