"""Seeded, deterministic fault plans for the chaos harness.

A chaos run must be *reproducible*: the same seed injects the same faults
at the same points, so a failure found in CI replays exactly on a
laptop.  Two kinds of plan live here:

- **executor plans** — ``{batch sequence number: FaultAction}`` maps
  consumed by :class:`repro.chaos.inject.ChaoticExecutor` inside worker
  processes.  Keying on the daemon's batch sequence number (not wall
  time, not PID) is what makes injection deterministic: batch #2 crashes
  no matter which worker runs it or when.
- **wire plans** — a pure function from (connection index, frame index)
  to an action for :class:`repro.chaos.inject.ChaosProxy`, derived by
  hashing the seed with both indices, so every frame's fate is fixed the
  moment the seed is chosen.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

#: Executor-side fault kinds.
EXECUTOR_FAULTS = ("crash", "hang", "error", "slow")

#: Wire-side actions the proxy can take on one reply frame.
WIRE_ACTIONS = ("forward", "tear", "drop", "garbage")


@dataclass(frozen=True)
class FaultAction:
    """One injected fault: what to do and (for hang/slow) for how long."""

    kind: str
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in EXECUTOR_FAULTS:
            raise ValueError(
                f"kind must be one of {EXECUTOR_FAULTS}, got {self.kind!r}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


def crash_at(*seqs: int) -> Dict[int, FaultAction]:
    """A plan that kills the worker process on the given batch numbers."""
    return {int(s): FaultAction("crash") for s in seqs}


def hang_at(seq: int, *, delay: float = 30.0) -> Dict[int, FaultAction]:
    """A plan that wedges the given batch for ``delay`` seconds."""
    return {int(seq): FaultAction("hang", delay=delay)}


def error_at(*seqs: int) -> Dict[int, FaultAction]:
    """A plan that raises a runtime error from the given batches."""
    return {int(s): FaultAction("error") for s in seqs}


def slow_at(seq: int, *, delay: float = 0.2) -> Dict[int, FaultAction]:
    """A plan that delays (but completes) the given batch."""
    return {int(seq): FaultAction("slow", delay=delay)}


def random_plan(seed: int, *, batches: int, rate: float = 0.3,
                kinds: Iterable[str] = ("crash", "error"),
                delay: float = 0.2) -> Dict[int, FaultAction]:
    """A seeded random plan over ``batches`` batch numbers (1-based).

    Each batch independently draws whether to fault (probability
    ``rate``) and which kind; the draw order is fixed, so the plan is a
    pure function of its arguments.
    """
    rng = random.Random(seed)
    kinds = tuple(kinds)
    plan: Dict[int, FaultAction] = {}
    for seq in range(1, batches + 1):
        if rng.random() < rate:
            plan[seq] = FaultAction(rng.choice(kinds), delay=delay)
    return plan


def wire_action(seed: int, conn_index: int, frame_index: int, *,
                tear: float = 0.0, drop: float = 0.0,
                garbage: float = 0.0) -> str:
    """The proxy's action for one reply frame — a pure hash of the seed.

    The (seed, connection, frame) triple is hashed to a uniform draw in
    ``[0, 1)`` which the cumulative ``tear``/``drop``/``garbage``
    probabilities partition; everything else forwards untouched.  No RNG
    state is carried between frames, so concurrent connections cannot
    perturb each other's draws.
    """
    for p in (tear, drop, garbage):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probabilities must be in [0, 1], got {p}")
    if tear + drop + garbage > 1.0:
        raise ValueError("tear + drop + garbage must be <= 1")
    blob = f"{seed}:{conn_index}:{frame_index}".encode()
    u = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2 ** 64
    if u < tear:
        return "tear"
    if u < tear + drop:
        return "drop"
    if u < tear + drop + garbage:
        return "garbage"
    return "forward"


def mutate_frame(raw: bytes, seed: int, index: int) -> bytes:
    """Deterministically damage one wire frame (fuzz-flood scenario).

    Picks a mutation — truncate, flip a byte, splice two halves, inject
    binary garbage, or blank the line — from a seeded draw.  Never
    returns the input unchanged (a mutation that lands on identity is
    nudged), so every flooded frame really is malformed *or* at least
    altered.
    """
    rng = random.Random(f"{seed}:{index}")
    if not raw:
        return b"\x00\n"
    body = raw.rstrip(b"\n")
    choice = rng.randrange(5)
    if choice == 0 and len(body) > 1:          # truncate
        out = body[:rng.randrange(1, len(body))]
    elif choice == 1:                          # flip one byte
        i = rng.randrange(len(body))
        flipped = bytes([body[i] ^ (1 + rng.randrange(255))])
        out = body[:i] + flipped + body[i + 1:]
    elif choice == 2 and len(body) > 3:        # splice halves
        cut = rng.randrange(1, len(body) - 1)
        out = body[cut:] + body[:cut]
    elif choice == 3:                          # binary garbage
        out = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
    else:                                      # blank / whitespace
        out = b" " * rng.randrange(1, 4)
    if out == body:
        out = out + b"\xff"
    return out + b"\n"


__all__ = [
    "EXECUTOR_FAULTS",
    "WIRE_ACTIONS",
    "FaultAction",
    "crash_at",
    "hang_at",
    "error_at",
    "slow_at",
    "random_plan",
    "wire_action",
    "mutate_frame",
]
