"""Fault injectors: the chaotic executor, worker killer, and wire proxy.

Three injection points, one per layer of the service stack:

- :class:`ChaoticExecutor` replaces the daemon's batch executor
  (``ServiceConfig.executor``) and misbehaves *inside the worker
  process* according to a :mod:`repro.chaos.plan` — crash (``os._exit``),
  hang, raise, or run slow — before delegating to the real
  :func:`repro.service.batch.execute_batch`.  It is picklable (it
  crosses the pool boundary) and uses **file-based once-latches** so a
  fault keyed to batch *N* fires exactly once even though the re-dispatch
  of batch *N* runs in a *different, fresh* worker process that shares no
  memory with the crashed one.
- :func:`kill_workers` SIGKILLs a pool's live worker processes from the
  outside — the "node loss mid-batch" fault no in-process injector can
  fake.
- :class:`ChaosProxy` sits between a client and the daemon as a real TCP
  proxy and mangles *reply* frames per a seeded wire plan: tear (partial
  bytes then close), drop (close before the reply), or garbage (replace
  the frame).  Client→server bytes pass through untouched — the flood of
  *malformed requests* is driven directly by the harness, where each
  mutated frame is deterministic.

Nothing here is imported by production code; the service stack stays
chaos-free unless a test, the ``repro chaos`` CLI, or a bench wires an
injector in explicitly.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.plan import FaultAction
from repro.obs import trace as _trace
from repro.parallel import WorkerPool
from repro.service.batch import execute_batch
from repro.service.store import ResultStore

#: Exit code a chaos-crashed worker dies with (distinguishable from
#: signals and from Python tracebacks in post-mortems).
CRASH_EXIT_CODE = 13


class ChaoticExecutor:
    """A picklable batch executor that injects planned faults.

    Drop-in for ``ServiceConfig.executor``: called as ``(seq, payloads,
    cold)`` with the daemon's batch sequence number.  When ``plan``
    holds an action for ``seq`` — and its once-latch (a file created
    ``O_CREAT | O_EXCL`` under ``latch_dir``) is won — the action fires
    *in the worker process*:

    - ``crash`` — ``os._exit(13)``: the process dies mid-batch, the pool
      breaks, the supervisor must restart and re-dispatch;
    - ``hang`` — sleep ``delay`` seconds (set it beyond the service
      deadline to simulate a wedged worker);
    - ``error`` — raise ``RuntimeError`` (the job's own failure path);
    - ``slow`` — sleep ``delay`` then execute normally.

    The latch is what makes ``crash`` testable at all: the re-dispatched
    batch carries the *same* sequence number, runs in a fresh process,
    finds the latch file already claimed, and executes cleanly.  With
    ``once=False`` the latch is skipped and the fault fires on every
    attempt — the crash-loop fuel for circuit-breaker scenarios.
    """

    def __init__(self, plan: Dict[int, FaultAction], latch_dir: str, *,
                 once: bool = True):
        self.plan = {int(k): v for k, v in plan.items()}
        self.latch_dir = str(latch_dir)
        self.once = once

    def _claim(self, seq: int) -> bool:
        """Win the once-latch for ``seq`` (True exactly once per seq)."""
        if not self.once:
            return True
        os.makedirs(self.latch_dir, exist_ok=True)
        path = os.path.join(self.latch_dir, f"fault-{seq}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def __call__(self, seq: int, payloads: List[Dict[str, Any]],
                 cold: bool) -> List[Dict[str, Any]]:
        """Run one batch, injecting the planned fault for ``seq`` first."""
        action = self.plan.get(int(seq))
        if action is not None and self._claim(seq):
            if action.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if action.kind == "hang":
                time.sleep(action.delay)
            elif action.kind == "error":
                raise RuntimeError(
                    f"chaos: injected worker error on batch {seq}")
            elif action.kind == "slow":
                time.sleep(action.delay)
        return execute_batch(payloads, cold)


def kill_workers(pool: WorkerPool, *, sig: int = signal.SIGKILL) -> int:
    """SIGKILL a pool's live worker processes; returns how many died.

    The external node-loss fault: unlike :class:`ChaoticExecutor`'s
    ``crash`` (which a worker does to itself at a planned batch), this
    murders every worker from outside at an arbitrary moment — in-flight
    batches break, and the supervisor must restart and re-dispatch.
    """
    executor = getattr(pool, "_executor", None)
    if executor is None:
        return 0
    killed = 0
    for proc in list(getattr(executor, "_processes", {}).values()):
        if proc.is_alive() and proc.pid is not None:
            try:
                os.kill(proc.pid, sig)
                killed += 1
            except (ProcessLookupError, OSError):  # pragma: no cover - raced
                pass
    _trace.event("chaos.workers_killed", count=killed)
    return killed


def corrupt_store_entry(store: ResultStore, key: str) -> bool:
    """Flip a stored response behind the store's back; True if it existed.

    Mutates the entry's value dict *in place*, leaving its integrity
    digest stale — exactly the damage a buggy sharer or a bit-flip would
    do.  The store's digest check must then detect the mismatch on the
    next :meth:`~repro.service.store.ResultStore.get`, drop the entry
    and force a recompute instead of serving the corrupted payload.
    """
    with store._lock:
        entry = store._entries.get(key)
        if entry is None:
            return False
        value = entry[1]
        value["f_g"] = -1e18            # a score no scheduler produces
        value["_chaos"] = "corrupted"
    _trace.event("chaos.store_corrupted", key=key[:12])
    return True


class ChaosProxy:
    """A real TCP proxy that mangles server→client reply frames.

    Sits on an ephemeral loopback port (``.address``), forwards every
    client byte upstream untouched, and runs each *reply* frame through
    ``reply_plan(conn_index, frame_index) -> action``:

    - ``"forward"`` — pass the frame through;
    - ``"tear"``   — send roughly half the frame's bytes, then kill the
      connection (the client sees a torn reply);
    - ``"drop"``   — kill the connection without sending anything (the
      classic died-between-submit-and-reply fault);
    - ``"garbage"``— replace the frame with a non-JSON line.

    Connection indices are assigned in accept order and frame indices
    per connection, so with a pure ``reply_plan`` (see
    :func:`repro.chaos.plan.wire_action`) the proxy's behaviour is a
    deterministic function of the seed for a sequential client.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 reply_plan: Callable[[int, int], str]):
        self._upstream = (upstream_host, int(upstream_port))
        self._reply_plan = reply_plan
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._open_sockets: List[socket.socket] = []
        self._conn_index = 0
        self.faults_injected = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True)
        self._accept_thread.start()

    # -------------------------------------------------------------- #

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._lock:
                conn_index = self._conn_index
                self._conn_index += 1
            try:
                upstream = socket.create_connection(self._upstream,
                                                    timeout=30.0)
            except OSError:
                client.close()
                continue
            self._track(client)
            self._track(upstream)
            threading.Thread(target=self._pump_raw,
                             args=(client, upstream),
                             name=f"chaos-proxy-up-{conn_index}",
                             daemon=True).start()
            threading.Thread(target=self._pump_frames,
                             args=(upstream, client, conn_index),
                             name=f"chaos-proxy-down-{conn_index}",
                             daemon=True).start()

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._open_sockets.append(sock)

    def _pump_raw(self, src: socket.socket, dst: socket.socket) -> None:
        """client → upstream: verbatim passthrough."""
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            self._shutdown_pair(src, dst)

    def _pump_frames(self, src: socket.socket, dst: socket.socket,
                     conn_index: int) -> None:
        """upstream → client: frame-aware, applies the reply plan."""
        frame_index = 0
        rfile = src.makefile("rb")
        try:
            while True:
                frame = rfile.readline()
                if not frame:
                    break
                action = self._reply_plan(conn_index, frame_index)
                frame_index += 1
                if action == "forward":
                    dst.sendall(frame)
                    continue
                self.faults_injected += 1
                _trace.event("chaos.proxy_fault", action=action,
                             conn=conn_index, frame=frame_index - 1)
                if action == "tear":
                    dst.sendall(frame[:max(1, len(frame) // 2)])
                elif action == "garbage":
                    dst.sendall(b"!!chaos-garbage!!\n")
                # tear/drop/garbage all end the connection: the client
                # must reconnect, which is the point.
                break
        except OSError:
            pass
        finally:
            rfile.close()
            self._shutdown_pair(src, dst)

    @staticmethod
    def _shutdown_pair(a: socket.socket, b: socket.socket) -> None:
        # shutdown() before close(): a sibling pump thread blocked in
        # recv() on the same socket holds the kernel file open, so a bare
        # close() would defer the FIN until that recv returns — the peer
        # would wait out its full socket timeout instead of seeing EOF.
        for sock in (a, b):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Stop accepting and tear down every proxied connection."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets, self._open_sockets = self._open_sockets, []
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "CRASH_EXIT_CODE",
    "ChaoticExecutor",
    "ChaosProxy",
    "corrupt_store_entry",
    "kill_workers",
]
