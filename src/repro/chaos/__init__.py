"""repro.chaos — a seeded, deterministic fault-injection harness.

The adversary the service tier is hardened against.  Three modules:

- :mod:`~repro.chaos.plan` — seeded fault plans: executor plans keyed on
  batch sequence numbers, pure hash-derived wire plans, and the frame
  mutator for the malformed-input flood;
- :mod:`~repro.chaos.inject` — the injectors: a picklable
  :class:`ChaoticExecutor` that crashes/hangs/errors inside worker
  processes, :func:`kill_workers` for external node loss,
  :func:`corrupt_store_entry` for result-store damage, and the
  :class:`ChaosProxy` TCP man-in-the-middle that tears, drops or
  garbles reply frames;
- :mod:`~repro.chaos.harness` — the scenarios.  Each stands up a real
  daemon, injects one fault class and checks the invariant: *every
  accepted request terminates with a byte-identical correct reply or an
  explicit typed error — never a hang, never silent loss.*

Everything is a pure function of its seed: a scenario that fails in CI
replays identically from ``repro chaos --scenario NAME --seed N``.
Production code never imports this package.
"""

from repro.chaos.harness import (
    REQUEST_BOUND_SECONDS,
    RequestOutcome,
    SCENARIOS,
    ScenarioResult,
    render_report,
    run_scenarios,
)
from repro.chaos.inject import (
    CRASH_EXIT_CODE,
    ChaosProxy,
    ChaoticExecutor,
    corrupt_store_entry,
    kill_workers,
)
from repro.chaos.plan import (
    EXECUTOR_FAULTS,
    WIRE_ACTIONS,
    FaultAction,
    crash_at,
    error_at,
    hang_at,
    mutate_frame,
    random_plan,
    slow_at,
    wire_action,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ChaosProxy",
    "ChaoticExecutor",
    "EXECUTOR_FAULTS",
    "FaultAction",
    "REQUEST_BOUND_SECONDS",
    "RequestOutcome",
    "SCENARIOS",
    "ScenarioResult",
    "WIRE_ACTIONS",
    "corrupt_store_entry",
    "crash_at",
    "error_at",
    "hang_at",
    "kill_workers",
    "mutate_frame",
    "random_plan",
    "render_report",
    "run_scenarios",
    "slow_at",
    "wire_action",
]
