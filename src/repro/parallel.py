"""Process-pool execution with a deterministic serial fallback.

Every parallel code path in this library follows one contract: the work is
split into independent jobs *before* execution, each job carries its own
pre-derived RNG stream (see :func:`repro.util.rng.spawn_rngs` /
:func:`repro.util.rng.derive_seed`), and results are merged in job order.
Whether the jobs run in this process (serial fallback) or in a process pool
is therefore unobservable in the results: parallel runs are bit-identical
to serial ones.  ``tests/search/test_parallel_determinism.py`` locks this
down per search method.

Worker-count resolution, in precedence order:

1. an explicit ``workers`` argument (``int``, ``0``/``"auto"`` for
   auto-detection);
2. the ``REPRO_WORKERS`` environment variable (same forms);
3. the default: ``1`` — serial, so importing the library never spawns
   processes unless asked to.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, TypeVar, Union

T = TypeVar("T")
R = TypeVar("R")

#: Accepted forms of a worker count: ``None`` (env/default), a positive
#: ``int``, ``0`` (auto-detect) or the string ``"auto"``.
WorkersLike = Union[None, int, str]

WORKERS_ENV = "REPRO_WORKERS"


def detect_workers() -> int:
    """CPUs available to *this* process (affinity-aware), at least 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: WorkersLike = None) -> int:
    """Turn a ``workers`` spec into a concrete positive worker count.

    ``None`` defers to ``$REPRO_WORKERS`` (default ``1`` = serial);
    ``0`` or ``"auto"`` auto-detect the available CPUs.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        workers = env
    if isinstance(workers, str):
        spec = workers.strip().lower()
        if spec == "auto":
            return detect_workers()
        try:
            workers = int(spec)
        except ValueError:
            raise ValueError(
                f"workers must be an int or 'auto', got {workers!r}"
            ) from None
    workers = int(workers)
    if workers == 0:
        return detect_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers


def parallel_map(
    fn: Callable[[T], R],
    jobs: Iterable[T],
    *,
    workers: WorkersLike = None,
) -> List[R]:
    """Map ``fn`` over ``jobs``, preserving job order in the results.

    With a resolved worker count of 1 (the default) this is a plain serial
    loop.  With more workers the jobs run in a process pool; ``fn`` and
    every job must be picklable (top-level functions with value-like
    arguments).  Results come back in submission order either way, so
    callers can merge deterministically.

    If the pool itself cannot be created or dies (sandboxes that forbid
    ``fork``, resource exhaustion), the whole map transparently re-runs on
    the serial path — the results are identical by contract, only slower.
    Exceptions raised by ``fn`` propagate unchanged in both modes.
    """
    job_list = list(jobs)
    n = resolve_workers(workers)
    if n <= 1 or len(job_list) <= 1:
        return [fn(job) for job in job_list]
    try:
        with ProcessPoolExecutor(max_workers=min(n, len(job_list))) as pool:
            return list(pool.map(fn, job_list))
    except (BrokenProcessPool, OSError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); falling back to serial "
            "execution — results are identical by construction",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(job) for job in job_list]


def parallel_starmap(
    fn: Callable[..., R],
    jobs: Iterable[tuple],
    *,
    workers: WorkersLike = None,
) -> List[R]:
    """:func:`parallel_map` for functions taking positional arguments."""
    return parallel_map(_StarCall(fn), jobs, workers=workers)


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas cannot cross process pools)."""

    def __init__(self, fn: Callable[..., R]):
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)


__all__ = [
    "WorkersLike",
    "WORKERS_ENV",
    "detect_workers",
    "resolve_workers",
    "parallel_map",
    "parallel_starmap",
]
