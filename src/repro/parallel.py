"""Resilient process-pool execution with a deterministic serial fallback.

Every parallel code path in this library follows one contract: the work is
split into independent jobs *before* execution, each job carries its own
pre-derived RNG stream (see :func:`repro.util.rng.spawn_rngs` /
:func:`repro.util.rng.derive_seed`), and results are merged in job order.
Whether the jobs run in this process (serial fallback) or in a process pool
is therefore unobservable in the results: parallel runs are bit-identical
to serial ones.  ``tests/search/test_parallel_determinism.py`` locks this
down per search method.

On top of the deterministic core, :func:`parallel_map` is an execution
layer hardened for long sweeps:

- **partial-result recovery** — when the pool dies mid-run
  (``BrokenProcessPool``, sandboxes that forbid ``fork``), results that
  already completed are kept and only the missing jobs re-run serially;
- **per-job retries** — ``retries=N`` re-submits a failed job up to ``N``
  times with capped exponential backoff before letting its exception
  propagate (default ``0``: exceptions propagate unchanged, as before);
- **per-job timeout** — ``timeout=T`` bounds the wall-clock wait for each
  pooled job; a job that exhausts its retries raises
  :class:`JobTimeoutError` (the serial path cannot preempt a running
  function, so there the timeout is not enforced);
- **checkpoint/resume** — ``checkpoint=SweepCheckpoint(...)`` records each
  completed job durably and, on a later run, skips every job already on
  disk, so an interrupted sweep resumes bit-identically
  (:mod:`repro.checkpoint`).

Pool lifetime is owned by :class:`WorkerPool`, a context-managed wrapper
around :class:`~concurrent.futures.ProcessPoolExecutor`:

- one-shot callers let :func:`parallel_map` create and dispose a pool per
  call (the historical behaviour);
- resident callers — the scheduling service in :mod:`repro.service` —
  create one :class:`WorkerPool` and pass it to every ``parallel_map``
  call (``pool=``) or submit to it directly, so workers (and their
  process-local distance-table caches) persist across requests;
- on abnormal exits (``KeyboardInterrupt``, ``SystemExit``, a hung job's
  :class:`JobTimeoutError`) the pool's workers are actively terminated
  and reaped instead of being orphaned mid-job.

Worker-count resolution, in precedence order:

1. an explicit ``workers`` argument (``int``, ``0``/``"auto"`` for
   auto-detection);
2. the ``REPRO_WORKERS`` environment variable (same forms);
3. the default: ``1`` — serial, so importing the library never spawns
   processes unless asked to.
"""

from __future__ import annotations

import os
import random
import threading
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar, Union

from repro.checkpoint import SweepCheckpoint
from repro.obs import trace as _trace

T = TypeVar("T")
R = TypeVar("R")

#: Accepted forms of a worker count: ``None`` (env/default), a positive
#: ``int``, ``0`` (auto-detect) or the string ``"auto"``.
WorkersLike = Union[None, int, str]

WORKERS_ENV = "REPRO_WORKERS"

#: Backoff schedule for ``retries``: attempt ``k`` sleeps a *full-jitter*
#: delay drawn uniformly from ``[0, min(BACKOFF_CAP, BACKOFF_BASE * 2**k)]``
#: seconds before re-running.  The jitter decorrelates concurrent clients
#: and jobs retrying against the same recovering pool or service, so a
#: synchronized failure does not turn into a synchronized retry stampede;
#: the hard cap bounds the worst-case wait no matter how large ``attempt``
#: grows.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

# Process-wide jitter source.  Backoff delays never influence results
# (only when work re-runs, not what it computes), so this RNG is
# deliberately unseeded; tests pass an explicit ``rng`` for determinism.
_backoff_rng = random.Random()

# Test seam: monkeypatched to observe/skip the backoff sleeps.
_sleep = time.sleep

_PENDING = object()


class JobTimeoutError(TimeoutError):
    """A pooled job exceeded its per-job ``timeout`` (after all retries)."""


def detect_workers() -> int:
    """CPUs available to *this* process (affinity-aware), at least 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: WorkersLike = None) -> int:
    """Turn a ``workers`` spec into a concrete positive worker count.

    ``None`` defers to ``$REPRO_WORKERS`` (default ``1`` = serial);
    ``0`` or ``"auto"`` auto-detect the available CPUs.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        workers = env
    if isinstance(workers, str):
        spec = workers.strip().lower()
        if spec == "auto":
            return detect_workers()
        try:
            workers = int(spec)
        except ValueError:
            raise ValueError(
                f"workers must be an int or 'auto', got {workers!r}"
            ) from None
    workers = int(workers)
    if workers == 0:
        return detect_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers


def backoff_delay(attempt: int, *, base: float = BACKOFF_BASE,
                  cap: float = BACKOFF_CAP,
                  rng: Optional[random.Random] = None) -> float:
    """Full-jitter capped exponential backoff delay for retry ``attempt``.

    Returns a delay drawn uniformly from ``[0, min(cap, base * 2**attempt)]``
    seconds (the AWS "full jitter" scheme).  The uniform draw decorrelates
    retry storms — two clients that failed at the same instant retry at
    different instants — and the hard ``cap`` bounds the ceiling for any
    attempt count (``2.0 ** attempt`` saturating to ``inf`` is fine: the
    ``min`` keeps the ceiling at ``cap``).

    ``rng`` defaults to a process-wide unseeded generator; pass an explicit
    :class:`random.Random` to make delays reproducible (the scheduling
    *results* never depend on them either way).
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if base < 0 or cap < 0:
        raise ValueError(f"base and cap must be >= 0, got {base}/{cap}")
    ceiling = min(cap, base * (2.0 ** attempt))
    return (rng or _backoff_rng).uniform(0.0, ceiling)


def _backoff_delay(attempt: int) -> float:
    """Backward-compatible alias of :func:`backoff_delay` (0-based)."""
    return backoff_delay(attempt)


def _reap(executor: Optional[ProcessPoolExecutor], *, kill: bool) -> None:
    """Shut an executor down and wait for its worker processes to exit.

    With ``kill=True`` live workers receive ``SIGTERM`` first, so a hung
    or interrupted job cannot keep the process tree alive; either way the
    workers are joined (reaped) before returning.
    """
    if executor is None:
        return
    procs = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    if kill:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
    for proc in procs:
        proc.join(timeout=5.0)


class WorkerPool:
    """A persistent, context-managed process pool.

    The executor is created lazily on first :meth:`submit` (so merely
    constructing a pool never spawns processes) and reused until
    :meth:`close` or :meth:`terminate`.  Exiting the ``with`` block on an
    exception that is *not* an ordinary ``Exception`` — notably
    ``KeyboardInterrupt`` — terminates the workers so they are reaped
    instead of leaking; a clean exit waits for in-flight jobs.

    Both :func:`parallel_map` (via ``pool=``) and the resident scheduling
    service (:mod:`repro.service`) run on this class; a reused pool keeps
    each worker process — and its process-local distance/routing-table
    caches — warm across calls.
    """

    def __init__(self, workers: WorkersLike = None):
        self.workers = resolve_workers(workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False

    # -------------------------------------------------------------- #

    @property
    def active(self) -> bool:
        """Whether an executor currently exists (workers may be live)."""
        return self._executor is not None

    @property
    def closed(self) -> bool:
        """Whether the pool was closed/terminated for good."""
        return self._closed

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on demand.

        Raises ``RuntimeError`` on a closed pool and propagates ``OSError``
        when the platform cannot create a process pool at all (callers
        fall back to serial or thread execution).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=_worker_init
                )
            return self._executor

    def submit(self, fn: Callable[..., R], /, *args, **kwargs) -> "Future[R]":
        """Submit one job to the pool (creating it if needed)."""
        return self.executor().submit(fn, *args, **kwargs)

    def map(self, fn: Callable[[T], R], jobs: Iterable[T], *,
            retries: int = 0, timeout: Optional[float] = None,
            checkpoint: Optional[SweepCheckpoint] = None) -> List[R]:
        """:func:`parallel_map` on this pool (the pool stays open after)."""
        return parallel_map(fn, jobs, pool=self, retries=retries,
                            timeout=timeout, checkpoint=checkpoint)

    # -------------------------------------------------------------- #

    def restart(self) -> None:
        """Terminate the current workers; the next use gets a fresh pool.

        The resilience path for a resident pool: after a hung job or a
        broken executor, discard the damaged workers (killing them so
        they are reaped) without closing the pool for good.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        _reap(executor, kill=True)

    def close(self) -> None:
        """Wait for in-flight jobs, then shut the workers down."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True)

    def terminate(self) -> None:
        """Cancel pending jobs, kill live workers and reap them."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        _reap(executor, kill=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # KeyboardInterrupt / SystemExit / GeneratorExit: the caller is
        # being torn down — kill and reap rather than wait on stragglers.
        if exc_type is not None and not issubclass(exc_type, Exception):
            self.terminate()
        else:
            self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "active" if self.active else "idle"
        )
        return f"WorkerPool(workers={self.workers}, {state})"


def _record(checkpoint: Optional[SweepCheckpoint], index: int,
            value: object) -> None:
    if checkpoint is not None:
        checkpoint.record(index, value)


def _run_serial(fn: Callable[[T], R], job_list: List[T], results: List,
                missing: List[int], retries: int,
                checkpoint: Optional[SweepCheckpoint]) -> None:
    """Run ``missing`` jobs in order in this process, with retries.

    Each job's lifecycle is reported as structured telemetry events
    (``parallel.job.started`` / ``.retry`` / ``.completed``); the retry
    event carries the attempt number, the backoff delay and the error —
    no-ops when no tracer is active.
    """
    for i in missing:
        attempt = 0
        _trace.event("parallel.job.started", job=i, mode="serial")
        while True:
            try:
                results[i] = fn(job_list[i])
                break
            except Exception as exc:
                if attempt >= retries:
                    raise
                delay = _backoff_delay(attempt)
                _trace.event("parallel.job.retry", job=i, mode="serial",
                             attempt=attempt + 1, retries=retries,
                             delay_seconds=delay, error=repr(exc))
                _sleep(delay)
                attempt += 1
        _trace.event("parallel.job.completed", job=i, mode="serial",
                     attempts=attempt + 1)
        _record(checkpoint, i, results[i])


def _run_pool(pool: ProcessPoolExecutor, fn: Callable[[T], R],
              job_list: List[T], results: List, missing: List[int],
              retries: int, timeout: Optional[float],
              checkpoint: Optional[SweepCheckpoint]) -> None:
    """Run ``missing`` jobs on ``pool``, with per-job retries and timeout.

    Raises ``BrokenProcessPool`` upward (the caller falls back serially),
    :class:`JobTimeoutError` on an exhausted timeout, or the job's own
    exception once its retries are spent.
    """
    futures = {i: pool.submit(fn, job_list[i]) for i in missing}
    for i in missing:
        _trace.event("parallel.job.scheduled", job=i, mode="pool")
    attempts = {i: 0 for i in missing}
    for i in missing:
        while True:
            try:
                results[i] = futures[i].result(timeout=timeout)
                break
            except BrokenProcessPool:
                raise
            except _FuturesTimeout:
                if attempts[i] >= retries:
                    futures[i].cancel()
                    _trace.event("parallel.job.timed_out", job=i, mode="pool",
                                 timeout_seconds=timeout,
                                 attempts=attempts[i] + 1)
                    raise JobTimeoutError(
                        f"job {i} exceeded the per-job timeout of {timeout}s"
                        + (f" after {retries} retries" if retries else "")
                    ) from None
                attempts[i] += 1
                _trace.event("parallel.job.retry", job=i, mode="pool",
                             attempt=attempts[i], retries=retries,
                             delay_seconds=0.0,
                             error=f"timeout after {timeout}s")
                futures[i].cancel()
                futures[i] = pool.submit(fn, job_list[i])
            except Exception as exc:
                if attempts[i] >= retries:
                    raise
                delay = _backoff_delay(attempts[i])
                _trace.event("parallel.job.retry", job=i, mode="pool",
                             attempt=attempts[i] + 1, retries=retries,
                             delay_seconds=delay, error=repr(exc))
                _sleep(delay)
                attempts[i] += 1
                futures[i] = pool.submit(fn, job_list[i])
        _trace.event("parallel.job.completed", job=i, mode="pool",
                     attempts=attempts[i] + 1)
        _record(checkpoint, i, results[i])


def parallel_map(
    fn: Callable[[T], R],
    jobs: Iterable[T],
    *,
    workers: WorkersLike = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    pool: Optional[WorkerPool] = None,
) -> List[R]:
    """Map ``fn`` over ``jobs``, preserving job order in the results.

    With a resolved worker count of 1 (the default) this is a plain serial
    loop.  With more workers the jobs run in a process pool; ``fn`` and
    every job must be picklable (top-level functions with value-like
    arguments).  Results come back in submission order either way, so
    callers can merge deterministically.

    Resilience knobs (all off by default):

    - ``retries`` — re-run a failing job up to this many extra times with
      capped exponential backoff; with ``0`` exceptions raised by ``fn``
      propagate unchanged in both modes.
    - ``timeout`` — per-job wall-clock bound, enforced in pool mode only
      (a serial loop cannot preempt ``fn``); exhausting it raises
      :class:`JobTimeoutError`.
    - ``checkpoint`` — a :class:`~repro.checkpoint.SweepCheckpoint`;
      completed jobs are recorded durably and skipped on re-runs, so an
      interrupted map resumes where it left off with identical results.
    - ``pool`` — a caller-owned :class:`WorkerPool` to run on.  The pool
      is left open afterwards (the caller's context manager closes it),
      its ``workers`` count takes precedence over ``workers``, and a job
      failure does not tear it down — only a hang or breakage triggers a
      :meth:`WorkerPool.restart`.

    If the pool itself cannot be created or dies (sandboxes that forbid
    ``fork``, resource exhaustion, a crashing worker), results that
    already completed are kept and only the unfinished jobs re-run on the
    serial path — the results are identical by contract, only slower.
    Abnormal exits (``KeyboardInterrupt``, a job that exhausted its
    ``timeout``) actively terminate and reap the workers instead of
    orphaning them mid-job.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
    job_list = list(jobs)
    n_jobs = len(job_list)
    results: List = [_PENDING] * n_jobs
    if checkpoint is not None:
        for i, value in checkpoint.completed(n_jobs).items():
            results[i] = value
        if checkpoint.total is None:
            checkpoint.total = n_jobs
    missing = [i for i in range(n_jobs) if results[i] is _PENDING]
    if checkpoint is not None and n_jobs > len(missing):
        _trace.event("checkpoint.resume", path=str(checkpoint.path),
                     completed=n_jobs - len(missing), total=n_jobs)
    if not missing:
        return results
    owned = pool is None
    n = resolve_workers(workers) if owned else pool.workers
    with _trace.span("parallel.map", jobs=n_jobs, pending=len(missing),
                     workers=n) as sp:
        if n <= 1 or len(missing) <= 1:
            sp.set(mode="serial")
            _run_serial(fn, job_list, results, missing, retries, checkpoint)
            return results
        wp = WorkerPool(min(n, len(missing))) if owned else pool
        try:
            executor = wp.executor()
        except OSError as exc:
            sp.set(mode="serial-fallback")
            _warn_fallback(exc, len(missing), n_jobs)
            _run_serial(fn, job_list, results, missing, retries, checkpoint)
            return results
        sp.set(mode="pool")
        try:
            _run_pool(executor, fn, job_list, results, missing, retries,
                      timeout, checkpoint)
        except JobTimeoutError:
            # JobTimeoutError subclasses TimeoutError (an OSError): keep it
            # out of the pool-died fallback below — re-running a hung job
            # serially would hang the caller instead.  The hung worker is
            # killed and reaped either way (a shared pool gets fresh
            # workers on its next use).
            if owned:
                wp.terminate()
            else:
                wp.restart()
            raise
        except (BrokenProcessPool, OSError) as exc:
            if owned:
                wp.terminate()
            else:
                wp.restart()
            still_missing = [i for i in range(n_jobs) if results[i] is _PENDING]
            sp.set(mode="pool-then-serial")
            _warn_fallback(exc, len(still_missing), n_jobs)
            _run_serial(fn, job_list, results, still_missing, retries,
                        checkpoint)
        except Exception:
            # A job failed for good: an owned pool dies with the call
            # (workers killed and reaped — completed results are already
            # checkpointed for a later resume); a shared pool stays up for
            # its other users.
            if owned:
                wp.terminate()
            raise
        except BaseException:
            # KeyboardInterrupt / SystemExit: the process is going down —
            # kill and reap the workers regardless of who owns the pool so
            # none leak past the interrupt.
            wp.terminate()
            raise
        else:
            if owned:
                wp.close()
    return results


def _worker_init() -> None:
    """Detach telemetry in pool workers.

    Under the ``fork`` start method a worker inherits the parent's
    active tracer/registry contextvars — and through them the parent's
    open trace sink.  Telemetry for pooled work is emitted parent-side
    from the returned results, so workers drop the inherited context;
    this keeps the serial and pooled event streams identical and the
    trace file single-writer.
    """
    from repro.obs import metrics as _obs_metrics
    from repro.obs import trace as _obs_trace

    _obs_trace.deactivate()
    _obs_metrics.deactivate()


def _warn_fallback(exc: BaseException, missing: int, total: int) -> None:
    warnings.warn(
        f"process pool unavailable ({exc!r}); re-running {missing} of "
        f"{total} jobs serially (completed results are kept) — results "
        "are identical by construction",
        RuntimeWarning,
        stacklevel=3,
    )


def parallel_starmap(
    fn: Callable[..., R],
    jobs: Iterable[tuple],
    *,
    workers: WorkersLike = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> List[R]:
    """:func:`parallel_map` for functions taking positional arguments."""
    return parallel_map(_StarCall(fn), jobs, workers=workers,
                        retries=retries, timeout=timeout,
                        checkpoint=checkpoint)


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas cannot cross process pools)."""

    def __init__(self, fn: Callable[..., R]):
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)


__all__ = [
    "WorkersLike",
    "WorkerPool",
    "WORKERS_ENV",
    "BACKOFF_BASE",
    "BACKOFF_CAP",
    "backoff_delay",
    "JobTimeoutError",
    "detect_workers",
    "resolve_workers",
    "parallel_map",
    "parallel_starmap",
]
