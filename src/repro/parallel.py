"""Resilient process-pool execution with a deterministic serial fallback.

Every parallel code path in this library follows one contract: the work is
split into independent jobs *before* execution, each job carries its own
pre-derived RNG stream (see :func:`repro.util.rng.spawn_rngs` /
:func:`repro.util.rng.derive_seed`), and results are merged in job order.
Whether the jobs run in this process (serial fallback) or in a process pool
is therefore unobservable in the results: parallel runs are bit-identical
to serial ones.  ``tests/search/test_parallel_determinism.py`` locks this
down per search method.

On top of the deterministic core, :func:`parallel_map` is an execution
layer hardened for long sweeps:

- **partial-result recovery** — when the pool dies mid-run
  (``BrokenProcessPool``, sandboxes that forbid ``fork``), results that
  already completed are kept and only the missing jobs re-run serially;
- **per-job retries** — ``retries=N`` re-submits a failed job up to ``N``
  times with capped exponential backoff before letting its exception
  propagate (default ``0``: exceptions propagate unchanged, as before);
- **per-job timeout** — ``timeout=T`` bounds the wall-clock wait for each
  pooled job; a job that exhausts its retries raises
  :class:`JobTimeoutError` (the serial path cannot preempt a running
  function, so there the timeout is not enforced);
- **checkpoint/resume** — ``checkpoint=SweepCheckpoint(...)`` records each
  completed job durably and, on a later run, skips every job already on
  disk, so an interrupted sweep resumes bit-identically
  (:mod:`repro.checkpoint`).

Worker-count resolution, in precedence order:

1. an explicit ``workers`` argument (``int``, ``0``/``"auto"`` for
   auto-detection);
2. the ``REPRO_WORKERS`` environment variable (same forms);
3. the default: ``1`` — serial, so importing the library never spawns
   processes unless asked to.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar, Union

from repro.checkpoint import SweepCheckpoint
from repro.obs import trace as _trace

T = TypeVar("T")
R = TypeVar("R")

#: Accepted forms of a worker count: ``None`` (env/default), a positive
#: ``int``, ``0`` (auto-detect) or the string ``"auto"``.
WorkersLike = Union[None, int, str]

WORKERS_ENV = "REPRO_WORKERS"

#: Backoff schedule for ``retries``: attempt ``k`` sleeps
#: ``min(BACKOFF_CAP, BACKOFF_BASE * 2**k)`` seconds before re-running.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

# Test seam: monkeypatched to observe/skip the backoff sleeps.
_sleep = time.sleep

_PENDING = object()


class JobTimeoutError(TimeoutError):
    """A pooled job exceeded its per-job ``timeout`` (after all retries)."""


def detect_workers() -> int:
    """CPUs available to *this* process (affinity-aware), at least 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: WorkersLike = None) -> int:
    """Turn a ``workers`` spec into a concrete positive worker count.

    ``None`` defers to ``$REPRO_WORKERS`` (default ``1`` = serial);
    ``0`` or ``"auto"`` auto-detect the available CPUs.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        workers = env
    if isinstance(workers, str):
        spec = workers.strip().lower()
        if spec == "auto":
            return detect_workers()
        try:
            workers = int(spec)
        except ValueError:
            raise ValueError(
                f"workers must be an int or 'auto', got {workers!r}"
            ) from None
    workers = int(workers)
    if workers == 0:
        return detect_workers()
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers


def _backoff_delay(attempt: int) -> float:
    """Capped exponential backoff delay before retry ``attempt`` (0-based)."""
    return min(BACKOFF_CAP, BACKOFF_BASE * (2.0 ** attempt))


def _record(checkpoint: Optional[SweepCheckpoint], index: int,
            value: object) -> None:
    if checkpoint is not None:
        checkpoint.record(index, value)


def _run_serial(fn: Callable[[T], R], job_list: List[T], results: List,
                missing: List[int], retries: int,
                checkpoint: Optional[SweepCheckpoint]) -> None:
    """Run ``missing`` jobs in order in this process, with retries.

    Each job's lifecycle is reported as structured telemetry events
    (``parallel.job.started`` / ``.retry`` / ``.completed``); the retry
    event carries the attempt number, the backoff delay and the error —
    no-ops when no tracer is active.
    """
    for i in missing:
        attempt = 0
        _trace.event("parallel.job.started", job=i, mode="serial")
        while True:
            try:
                results[i] = fn(job_list[i])
                break
            except Exception as exc:
                if attempt >= retries:
                    raise
                delay = _backoff_delay(attempt)
                _trace.event("parallel.job.retry", job=i, mode="serial",
                             attempt=attempt + 1, retries=retries,
                             delay_seconds=delay, error=repr(exc))
                _sleep(delay)
                attempt += 1
        _trace.event("parallel.job.completed", job=i, mode="serial",
                     attempts=attempt + 1)
        _record(checkpoint, i, results[i])


def _run_pool(pool: ProcessPoolExecutor, fn: Callable[[T], R],
              job_list: List[T], results: List, missing: List[int],
              retries: int, timeout: Optional[float],
              checkpoint: Optional[SweepCheckpoint]) -> None:
    """Run ``missing`` jobs on ``pool``, with per-job retries and timeout.

    Raises ``BrokenProcessPool`` upward (the caller falls back serially),
    :class:`JobTimeoutError` on an exhausted timeout, or the job's own
    exception once its retries are spent.
    """
    futures = {i: pool.submit(fn, job_list[i]) for i in missing}
    for i in missing:
        _trace.event("parallel.job.scheduled", job=i, mode="pool")
    attempts = {i: 0 for i in missing}
    for i in missing:
        while True:
            try:
                results[i] = futures[i].result(timeout=timeout)
                break
            except BrokenProcessPool:
                raise
            except _FuturesTimeout:
                if attempts[i] >= retries:
                    futures[i].cancel()
                    _trace.event("parallel.job.timed_out", job=i, mode="pool",
                                 timeout_seconds=timeout,
                                 attempts=attempts[i] + 1)
                    raise JobTimeoutError(
                        f"job {i} exceeded the per-job timeout of {timeout}s"
                        + (f" after {retries} retries" if retries else "")
                    ) from None
                attempts[i] += 1
                _trace.event("parallel.job.retry", job=i, mode="pool",
                             attempt=attempts[i], retries=retries,
                             delay_seconds=0.0,
                             error=f"timeout after {timeout}s")
                futures[i].cancel()
                futures[i] = pool.submit(fn, job_list[i])
            except Exception as exc:
                if attempts[i] >= retries:
                    raise
                delay = _backoff_delay(attempts[i])
                _trace.event("parallel.job.retry", job=i, mode="pool",
                             attempt=attempts[i] + 1, retries=retries,
                             delay_seconds=delay, error=repr(exc))
                _sleep(delay)
                attempts[i] += 1
                futures[i] = pool.submit(fn, job_list[i])
        _trace.event("parallel.job.completed", job=i, mode="pool",
                     attempts=attempts[i] + 1)
        _record(checkpoint, i, results[i])


def parallel_map(
    fn: Callable[[T], R],
    jobs: Iterable[T],
    *,
    workers: WorkersLike = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> List[R]:
    """Map ``fn`` over ``jobs``, preserving job order in the results.

    With a resolved worker count of 1 (the default) this is a plain serial
    loop.  With more workers the jobs run in a process pool; ``fn`` and
    every job must be picklable (top-level functions with value-like
    arguments).  Results come back in submission order either way, so
    callers can merge deterministically.

    Resilience knobs (all off by default):

    - ``retries`` — re-run a failing job up to this many extra times with
      capped exponential backoff; with ``0`` exceptions raised by ``fn``
      propagate unchanged in both modes.
    - ``timeout`` — per-job wall-clock bound, enforced in pool mode only
      (a serial loop cannot preempt ``fn``); exhausting it raises
      :class:`JobTimeoutError`.
    - ``checkpoint`` — a :class:`~repro.checkpoint.SweepCheckpoint`;
      completed jobs are recorded durably and skipped on re-runs, so an
      interrupted map resumes where it left off with identical results.

    If the pool itself cannot be created or dies (sandboxes that forbid
    ``fork``, resource exhaustion, a crashing worker), results that
    already completed are kept and only the unfinished jobs re-run on the
    serial path — the results are identical by contract, only slower.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
    job_list = list(jobs)
    n_jobs = len(job_list)
    results: List = [_PENDING] * n_jobs
    if checkpoint is not None:
        for i, value in checkpoint.completed(n_jobs).items():
            results[i] = value
        if checkpoint.total is None:
            checkpoint.total = n_jobs
    missing = [i for i in range(n_jobs) if results[i] is _PENDING]
    if checkpoint is not None and n_jobs > len(missing):
        _trace.event("checkpoint.resume", path=str(checkpoint.path),
                     completed=n_jobs - len(missing), total=n_jobs)
    if not missing:
        return results
    n = resolve_workers(workers)
    with _trace.span("parallel.map", jobs=n_jobs, pending=len(missing),
                     workers=n) as sp:
        if n <= 1 or len(missing) <= 1:
            sp.set(mode="serial")
            _run_serial(fn, job_list, results, missing, retries, checkpoint)
            return results
        try:
            pool = ProcessPoolExecutor(max_workers=min(n, len(missing)),
                                       initializer=_worker_init)
        except OSError as exc:
            sp.set(mode="serial-fallback")
            _warn_fallback(exc, len(missing), n_jobs)
            _run_serial(fn, job_list, results, missing, retries, checkpoint)
            return results
        sp.set(mode="pool")
        graceful = True
        try:
            _run_pool(pool, fn, job_list, results, missing, retries, timeout,
                      checkpoint)
        except JobTimeoutError:
            # JobTimeoutError subclasses TimeoutError (an OSError): keep it
            # out of the pool-died fallback below — re-running a hung job
            # serially would hang the caller instead.
            graceful = False
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        except (BrokenProcessPool, OSError) as exc:
            graceful = False
            pool.shutdown(wait=False, cancel_futures=True)
            still_missing = [i for i in range(n_jobs) if results[i] is _PENDING]
            sp.set(mode="pool-then-serial")
            _warn_fallback(exc, len(still_missing), n_jobs)
            _run_serial(fn, job_list, results, still_missing, retries,
                        checkpoint)
        except BaseException:
            graceful = False
            # A job failed for good (or timed out): abandon the pool without
            # waiting on stragglers; completed results are already
            # checkpointed for a later resume.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            if graceful:
                pool.shutdown(wait=True)
    return results


def _worker_init() -> None:
    """Detach telemetry in pool workers.

    Under the ``fork`` start method a worker inherits the parent's
    active tracer/registry contextvars — and through them the parent's
    open trace sink.  Telemetry for pooled work is emitted parent-side
    from the returned results, so workers drop the inherited context;
    this keeps the serial and pooled event streams identical and the
    trace file single-writer.
    """
    from repro.obs import metrics as _obs_metrics
    from repro.obs import trace as _obs_trace

    _obs_trace.deactivate()
    _obs_metrics.deactivate()


def _warn_fallback(exc: BaseException, missing: int, total: int) -> None:
    warnings.warn(
        f"process pool unavailable ({exc!r}); re-running {missing} of "
        f"{total} jobs serially (completed results are kept) — results "
        "are identical by construction",
        RuntimeWarning,
        stacklevel=3,
    )


def parallel_starmap(
    fn: Callable[..., R],
    jobs: Iterable[tuple],
    *,
    workers: WorkersLike = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> List[R]:
    """:func:`parallel_map` for functions taking positional arguments."""
    return parallel_map(_StarCall(fn), jobs, workers=workers,
                        retries=retries, timeout=timeout,
                        checkpoint=checkpoint)


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas cannot cross process pools)."""

    def __init__(self, fn: Callable[..., R]):
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)


__all__ = [
    "WorkersLike",
    "WORKERS_ENV",
    "BACKOFF_BASE",
    "BACKOFF_CAP",
    "JobTimeoutError",
    "detect_workers",
    "resolve_workers",
    "parallel_map",
    "parallel_starmap",
]
