"""JSON serialization for the library's value objects.

Distance tables are expensive to build only relative to everything else,
but topologies and schedules are the artifacts users exchange ("run the
mapping I computed yesterday", "reproduce on my exact network"), so the
core value types round-trip through plain JSON:

- :class:`~repro.topology.graph.Topology`
- :class:`~repro.distance.table.DistanceTable`
- :class:`~repro.core.mapping.Partition`
- :class:`~repro.core.mapping.Workload`
- :class:`~repro.faults.model.FaultScenario`
- :class:`~repro.obs.trace.TraceEvent` / :class:`~repro.obs.manifest.RunManifest`
  (telemetry records, wrapped so the trace-file ``type`` field stays
  untouched inside the payload)
- :class:`~repro.service.protocol.ScheduleRequest` /
  :class:`~repro.service.protocol.ScheduleResponse` /
  :class:`~repro.service.protocol.ServiceStatus` (the service's wire
  types, so request files and stored results are first-class artifacts —
  ``repro submit --request file.json`` reads exactly this format)

Each payload carries a ``"type"`` tag and a ``"version"`` so formats can
evolve; :func:`load` dispatches on the tag.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.mapping import LogicalCluster, Partition, Workload
from repro.distance.table import DistanceTable
from repro.faults.model import FaultScenario
from repro.obs.manifest import RunManifest
from repro.obs.trace import TraceEvent
from repro.reporting.study import StudySpec, VariationRecord
from repro.service.protocol import (
    ScheduleRequest,
    ScheduleResponse,
    ServiceStatus,
)
from repro.topology.graph import Topology

_VERSION = 1

PathLike = Union[str, Path]


# --------------------------------------------------------------------- #
# per-type encoders / decoders
# --------------------------------------------------------------------- #

def topology_to_dict(topo: Topology) -> Dict[str, Any]:
    """Encode a topology as a tagged JSON-ready dict."""
    return {
        "type": "topology",
        "version": _VERSION,
        "name": topo.name,
        "num_switches": topo.num_switches,
        "hosts_per_switch": topo.hosts_per_switch,
        "switch_ports": topo.switch_ports,
        "links": [list(l) for l in topo.links],
    }


def topology_from_dict(d: Dict[str, Any]) -> Topology:
    """Decode a topology payload produced by :func:`topology_to_dict`."""
    _check(d, "topology")
    return Topology(
        d["num_switches"],
        [tuple(l) for l in d["links"]],
        hosts_per_switch=d["hosts_per_switch"],
        switch_ports=d["switch_ports"],
        name=d.get("name", ""),
    )


def table_to_dict(table: DistanceTable) -> Dict[str, Any]:
    """Encode a distance table as a tagged JSON-ready dict."""
    payload = table.to_dict()
    payload["type"] = "distance_table"
    payload["version"] = _VERSION
    return payload


def table_from_dict(d: Dict[str, Any]) -> DistanceTable:
    """Decode a distance-table payload."""
    _check(d, "distance_table")
    return DistanceTable.from_dict(d)


def partition_to_dict(partition: Partition) -> Dict[str, Any]:
    """Encode a partition as a tagged JSON-ready dict."""
    return {
        "type": "partition",
        "version": _VERSION,
        "labels": [int(x) for x in partition.labels],
    }


def partition_from_dict(d: Dict[str, Any]) -> Partition:
    """Decode a partition payload."""
    _check(d, "partition")
    return Partition(d["labels"])


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """Encode a workload (cluster names, sizes, weights)."""
    return {
        "type": "workload",
        "version": _VERSION,
        "clusters": [
            {
                "name": c.name,
                "num_processes": c.num_processes,
                "comm_weight": c.comm_weight,
            }
            for c in workload.clusters
        ],
    }


def workload_from_dict(d: Dict[str, Any]) -> Workload:
    """Decode a workload payload."""
    _check(d, "workload")
    return Workload([
        LogicalCluster(c["name"], c["num_processes"],
                       comm_weight=c.get("comm_weight", 1.0))
        for c in d["clusters"]
    ])


def fault_scenario_to_dict(scenario: FaultScenario) -> Dict[str, Any]:
    """Encode a fault scenario (failed links/switches) as a tagged dict."""
    payload = scenario.to_dict()
    payload["type"] = "fault_scenario"
    payload["version"] = _VERSION
    return payload


def fault_scenario_from_dict(d: Dict[str, Any]) -> FaultScenario:
    """Decode a fault-scenario payload."""
    _check(d, "fault_scenario")
    return FaultScenario.from_dict(d)


def trace_event_to_dict(ev: TraceEvent) -> Dict[str, Any]:
    """Encode a span/event telemetry record as a tagged dict.

    The native trace-file record (which has its own ``type`` of ``span``
    or ``event``) is nested under ``"record"`` so both tagging schemes
    stay intact.
    """
    return {
        "type": "trace_event",
        "version": _VERSION,
        "record": ev.to_record(),
    }


def trace_event_from_dict(d: Dict[str, Any]) -> TraceEvent:
    """Decode a trace-event payload produced by :func:`trace_event_to_dict`."""
    _check(d, "trace_event")
    return TraceEvent.from_record(d["record"])


def run_manifest_to_dict(manifest: RunManifest) -> Dict[str, Any]:
    """Encode a run manifest as a tagged dict (nested native record)."""
    return {
        "type": "run_manifest",
        "version": _VERSION,
        "record": manifest.to_record(),
    }


def run_manifest_from_dict(d: Dict[str, Any]) -> RunManifest:
    """Decode a run-manifest payload."""
    _check(d, "run_manifest")
    return RunManifest.from_record(d["record"])


def schedule_request_to_dict(req: ScheduleRequest) -> Dict[str, Any]:
    """Encode a service scheduling request (the wire form)."""
    return req.to_dict()


def schedule_request_from_dict(d: Dict[str, Any]) -> ScheduleRequest:
    """Decode (and strictly validate) a schedule-request payload."""
    return ScheduleRequest.from_dict(d)


def schedule_response_to_dict(resp: ScheduleResponse) -> Dict[str, Any]:
    """Encode a service response (the canonical deterministic payload)."""
    return resp.to_dict()


def schedule_response_from_dict(d: Dict[str, Any]) -> ScheduleResponse:
    """Decode (and strictly validate) a schedule-response payload."""
    return ScheduleResponse.from_dict(d)


def service_status_to_dict(status: ServiceStatus) -> Dict[str, Any]:
    """Encode a service status snapshot."""
    return status.to_dict()


def service_status_from_dict(d: Dict[str, Any]) -> ServiceStatus:
    """Decode (and strictly validate) a service-status payload."""
    return ServiceStatus.from_dict(d)


def variation_record_to_dict(record: VariationRecord) -> Dict[str, Any]:
    """Encode one variation-study cell (already a tagged dict shape)."""
    return record.to_dict()


def variation_record_from_dict(d: Dict[str, Any]) -> VariationRecord:
    """Decode (and strictly validate) a variation-record payload."""
    return VariationRecord.from_dict(d)


def study_spec_to_dict(spec: StudySpec) -> Dict[str, Any]:
    """Encode a variation-study spec."""
    return spec.to_dict()


def study_spec_from_dict(d: Dict[str, Any]) -> StudySpec:
    """Decode (and strictly validate) a study-spec payload."""
    return StudySpec.from_dict(d)


# --------------------------------------------------------------------- #
# generic entry points
# --------------------------------------------------------------------- #

_ENCODERS = {
    Topology: topology_to_dict,
    DistanceTable: table_to_dict,
    Partition: partition_to_dict,
    Workload: workload_to_dict,
    FaultScenario: fault_scenario_to_dict,
    TraceEvent: trace_event_to_dict,
    RunManifest: run_manifest_to_dict,
    ScheduleRequest: schedule_request_to_dict,
    ScheduleResponse: schedule_response_to_dict,
    ServiceStatus: service_status_to_dict,
    VariationRecord: variation_record_to_dict,
    StudySpec: study_spec_to_dict,
}

_DECODERS = {
    "topology": topology_from_dict,
    "distance_table": table_from_dict,
    "partition": partition_from_dict,
    "workload": workload_from_dict,
    "fault_scenario": fault_scenario_from_dict,
    "trace_event": trace_event_from_dict,
    "run_manifest": run_manifest_from_dict,
    "schedule_request": schedule_request_from_dict,
    "schedule_response": schedule_response_from_dict,
    "service_status": service_status_from_dict,
    "variation_record": variation_record_from_dict,
    "variation_study_spec": study_spec_from_dict,
}


def to_dict(obj: Any) -> Dict[str, Any]:
    """Encode a supported object to a JSON-ready dict."""
    enc = _ENCODERS.get(type(obj))
    if enc is None:
        raise TypeError(
            f"cannot serialize {type(obj).__name__}; supported: "
            + ", ".join(t.__name__ for t in _ENCODERS)
        )
    return enc(obj)


def from_dict(d: Dict[str, Any]) -> Any:
    """Decode a tagged dict back to its object."""
    tag = d.get("type")
    dec = _DECODERS.get(tag)
    if dec is None:
        raise ValueError(
            f"unknown payload type {tag!r}; supported: "
            + ", ".join(sorted(_DECODERS))
        )
    return dec(d)


def save(obj: Any, path: PathLike) -> None:
    """Serialize a supported object to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(obj), indent=2) + "\n")


def load(path: PathLike) -> Any:
    """Load any supported object from a JSON file."""
    return from_dict(json.loads(Path(path).read_text()))


def _check(d: Dict[str, Any], expected: str) -> None:
    if d.get("type") != expected:
        raise ValueError(f"expected a {expected!r} payload, got {d.get('type')!r}")
    version = d.get("version", 1)
    if version > _VERSION:
        raise ValueError(
            f"payload version {version} is newer than supported ({_VERSION})"
        )


__all__ = [
    "to_dict",
    "from_dict",
    "save",
    "load",
    "topology_to_dict",
    "topology_from_dict",
    "table_to_dict",
    "table_from_dict",
    "partition_to_dict",
    "partition_from_dict",
    "workload_to_dict",
    "workload_from_dict",
    "fault_scenario_to_dict",
    "fault_scenario_from_dict",
    "trace_event_to_dict",
    "trace_event_from_dict",
    "run_manifest_to_dict",
    "run_manifest_from_dict",
    "schedule_request_to_dict",
    "schedule_request_from_dict",
    "schedule_response_to_dict",
    "schedule_response_from_dict",
    "service_status_to_dict",
    "service_status_from_dict",
    "variation_record_to_dict",
    "variation_record_from_dict",
    "study_spec_to_dict",
    "study_spec_from_dict",
]
