"""The operator console: a minimal HTTP/1.0 endpoint over asyncio.

The scheduling daemon speaks a newline-framed JSON wire protocol on its
job socket; operators and scrapers speak HTTP.  This module is the
smallest bridge between the two worlds that is still a real server: a
plain HTTP/1.0 responder (request line + headers in, fixed
``Content-Length`` + ``Connection: close`` out, one request per
connection) with four routes:

- ``/healthz``  — liveness probe, ``ok`` in plain text;
- ``/metrics``  — Prometheus text exposition (see
  :mod:`repro.obs.export`);
- ``/status``   — the daemon's status snapshot as JSON;
- ``/report``   — a self-contained HTML report page (also served at
  ``/``).

Content is pulled from injected zero-argument providers at request
time, so the console never holds stale copies and never needs to know
what it fronts — a live :class:`repro.service.server.SchedulerService`
or a rendered variation study (``repro report --serve``).  Providers
run on the event-loop thread; they must be cheap and non-blocking.

No dependency beyond asyncio: HTTP/1.0 with ``Connection: close`` needs
no keep-alive, no chunking and no pipelining, which keeps the whole
parser under a screen of code and the attack surface near zero.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Optional, Tuple

MAX_REQUEST_BYTES = 8192        # request line + headers; we accept no body
REQUEST_TIMEOUT = 5.0           # seconds to receive the full request

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
             405: "Method Not Allowed", 500: "Internal Server Error"}

TextProvider = Callable[[], str]
DictProvider = Callable[[], Dict[str, object]]


def _response(status: int, content_type: str, body: str) -> bytes:
    """One complete HTTP/1.0 response with explicit length and close."""
    payload = body.encode()
    head = (
        f"HTTP/1.0 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode() + payload


class ConsoleServer:
    """The HTTP/1.0 console; start/stop from a running event loop.

    Providers are optional: a route whose provider is missing answers
    404, so a console fronting only metrics need not fake a report.
    """

    def __init__(
        self,
        *,
        metrics: Optional[TextProvider] = None,
        status: Optional[DictProvider] = None,
        report: Optional[TextProvider] = None,
        health: Optional[TextProvider] = None,
    ):
        self._metrics = metrics
        self._status = status
        self._report = report
        self._health = health or (lambda: "ok")
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self.requests_served = 0

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and serve; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=MAX_REQUEST_BYTES)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        """Close the listening socket (in-flight responses finish)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- #
    # request handling
    # ------------------------------------------------------------- #

    def _route(self, path: str) -> Tuple[int, str, str]:
        """Dispatch one GET path to ``(status, content type, body)``."""
        path = path.split("?", 1)[0]
        if path == "/healthz":
            return 200, "text/plain", self._health()
        if path == "/metrics":
            if self._metrics is None:
                return 404, "text/plain", "no metrics provider\n"
            return 200, "text/plain", self._metrics()
        if path == "/status":
            if self._status is None:
                return 404, "text/plain", "no status provider\n"
            return (200, "application/json",
                    json.dumps(self._status(), sort_keys=True) + "\n")
        if path in ("/", "/report"):
            if self._report is None:
                return 404, "text/plain", "no report provider\n"
            return 200, "text/html", self._report()
        return 404, "text/plain", f"unknown path {path}\n"

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """Serve exactly one request, then close (HTTP/1.0 semantics)."""
        try:
            try:
                request_line = await asyncio.wait_for(
                    reader.readline(), REQUEST_TIMEOUT)
                # Drain headers up to the blank line; we never read a body.
                received = len(request_line)
                while True:
                    header = await asyncio.wait_for(
                        reader.readline(), REQUEST_TIMEOUT)
                    received += len(header)
                    if header in (b"\r\n", b"\n", b""):
                        break
                    if received > MAX_REQUEST_BYTES:
                        writer.write(_response(
                            400, "text/plain", "request too large\n"))
                        return
            except asyncio.TimeoutError:
                writer.write(_response(400, "text/plain",
                                       "request timed out\n"))
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                writer.write(_response(400, "text/plain",
                                       "malformed request line\n"))
                return
            method, path = parts[0], parts[1]
            if method != "GET":
                writer.write(_response(405, "text/plain",
                                       f"method {method} not allowed\n"))
                return
            try:
                status, ctype, body = self._route(path)
            except Exception as exc:  # a provider failed; say so, stay up
                status, ctype, body = 500, "text/plain", f"error: {exc}\n"
            self.requests_served += 1
            writer.write(_response(status, ctype, body))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass


async def _serve_forever(console: ConsoleServer, host: str,
                         port: int) -> None:
    address = await console.start(host, port)
    print(f"operator console on http://{address[0]}:{address[1]}/ "
          "(ctrl-c to stop)")
    try:
        await asyncio.Event().wait()
    finally:
        await console.stop()


def serve_console(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    metrics: Optional[TextProvider] = None,
    status: Optional[DictProvider] = None,
    report: Optional[TextProvider] = None,
) -> None:
    """Run a standalone console until interrupted (``repro report --serve``)."""
    console = ConsoleServer(metrics=metrics, status=status, report=report)
    try:
        asyncio.run(_serve_forever(console, host, port))
    except KeyboardInterrupt:
        pass


__all__ = ["ConsoleServer", "serve_console", "MAX_REQUEST_BYTES",
           "REQUEST_TIMEOUT"]
