"""What-if variation reports and the live operator console.

The paper's whole argument is comparative — estimated communication cost
``C_c`` against measured latency and throughput across mappings, loads
and topologies (Figures 1-6) — and this package is where the repo makes
that comparison an artifact instead of a scroll of text tables:

- :mod:`repro.reporting.study`   — a declarative *variation study*: a
  grid of schedule variations (mappings x fault sets x engines) executed
  through the existing sweep/batch machinery, one serialize-
  round-trippable :class:`VariationRecord` per cell with ``C_c``,
  replicated latency/throughput confidence intervals, the fault study's
  repair gap and the cell's cache/engine counters;
- :mod:`repro.reporting.render`  — the comparative markdown renderer:
  per-variation deltas against a named baseline with regression
  highlighting;
- :mod:`repro.reporting.html`    — the same comparison as one
  self-contained HTML file (inline CSS + SVG, no external JS/CDN),
  including the C_c-vs-measured scatter;
- :mod:`repro.reporting.console` — a minimal HTTP/1.0 operator console
  (``/healthz``, ``/metrics``, ``/status``, ``/report``) served either
  standalone (``repro report --serve``) or by the scheduling daemon
  alongside its wire protocol (``repro serve --console-port``).

Determinism contract: a study's records and both rendered reports are
pure functions of the spec and its seed — no wall-clock timestamps, no
environment-dependent fields — so ``repro report --study spec.json``
produces byte-identical artifacts on every rerun.
"""

from repro.reporting.console import ConsoleServer, serve_console
from repro.reporting.html import render_html, render_status_page
from repro.reporting.render import baseline_record, render_markdown
from repro.reporting.study import (
    StudySpec,
    VariationRecord,
    VariationStudyResult,
    records_from_fault_study,
    records_from_sim_figure,
    run_variation_study,
    validate_variation_record,
    wrap_records,
)

__all__ = [
    "StudySpec",
    "VariationRecord",
    "VariationStudyResult",
    "run_variation_study",
    "records_from_sim_figure",
    "records_from_fault_study",
    "validate_variation_record",
    "wrap_records",
    "render_markdown",
    "baseline_record",
    "render_html",
    "render_status_page",
    "ConsoleServer",
    "serve_console",
]
