"""Self-contained single-file HTML rendering of a variation study.

One HTML document, no external assets: inline CSS, inline SVG charts,
no JavaScript at all — it renders identically from a file:// URL, an
artifact store, or the operator console's ``/report`` endpoint.

Charts are plain SVG built here: a scatter of estimated communication
cost ``C_c`` against measured peak throughput (the paper's central
correlation, Figure 6's axis pair) with the baseline highlighted, and a
per-variation delta table with regression rows tinted.  Coordinates are
rendered at fixed precision from deterministic inputs, so the file is
byte-identical across reruns of the same spec.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence, Tuple

from repro.reporting.render import baseline_record, record_deltas
from repro.reporting.study import VariationRecord, VariationStudyResult

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1b1f24; }
h1, h2 { border-bottom: 1px solid #d8dee4; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border: 1px solid #d8dee4; padding: .35rem .6rem;
         text-align: right; }
th { background: #f6f8fa; }
td.name { text-align: left; font-family: ui-monospace, monospace; }
tr.regression td { background: #ffebe9; }
tr.baseline td { background: #ddf4ff; }
.meta { color: #57606a; }
.flag { color: #cf222e; font-weight: 600; }
svg { background: #fff; border: 1px solid #d8dee4; margin: 1rem 0; }
""".strip()

_PALETTE = ("#0969da", "#cf222e", "#1a7f37", "#9a6700", "#8250df",
            "#bf3989", "#57606a")


def _esc(text: object) -> str:
    return _html.escape(str(text), quote=True)


def _num(value: Optional[float], digits: int = 4) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{100.0 * value:+.1f}%"


def _scale(values: Sequence[float],
           span: Tuple[float, float]) -> Tuple[float, float]:
    """``(offset, factor)`` mapping data range -> pixel range."""
    lo, hi = min(values), max(values)
    if hi == lo:
        lo, hi = lo - 1.0, hi + 1.0
    p0, p1 = span
    factor = (p1 - p0) / (hi - lo)
    return lo, factor


def scatter_svg(records: Sequence[VariationRecord], baseline_name: str,
                *, width: int = 640, height: int = 400) -> str:
    """The C_c-vs-peak-throughput scatter as one inline SVG element."""
    points = [(r.c_c, r.peak_throughput, r) for r in records
              if r.peak_throughput is not None]
    if not points:
        return "<p class=\"meta\">(no measured cells to plot)</p>"
    margin = 55
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, xf = _scale(xs, (margin, width - 20))
    y0, yf = _scale(ys, (height - margin, 20))   # y grows downward

    colors: Dict[str, str] = {}
    for _, _, r in points:
        if r.mapping not in colors:
            colors[r.mapping] = _PALETTE[len(colors) % len(_PALETTE)]

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        'xmlns="http://www.w3.org/2000/svg">',
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - 20}" '
        f'y2="{height - margin}" stroke="#57606a"/>',
        f'<line x1="{margin}" y1="20" x2="{margin}" '
        f'y2="{height - margin}" stroke="#57606a"/>',
        f'<text x="{(margin + width - 20) // 2}" y="{height - 12}" '
        'text-anchor="middle" font-size="12">estimated C_c</text>',
        f'<text x="14" y="{(20 + height - margin) // 2}" font-size="12" '
        f'text-anchor="middle" '
        f'transform="rotate(-90 14 {(20 + height - margin) // 2})">'
        'measured peak throughput (flits/switch/cycle)</text>',
    ]
    for tick in range(5):
        frac = tick / 4.0
        xv = min(xs) + frac * (max(xs) - min(xs))
        yv = min(ys) + frac * (max(ys) - min(ys))
        px = margin + (xv - x0) * xf
        py = (height - margin) + (yv - y0) * yf
        parts.append(
            f'<text x="{px:.1f}" y="{height - margin + 16}" '
            f'text-anchor="middle" font-size="10">{xv:.3f}</text>')
        parts.append(
            f'<text x="{margin - 6}" y="{py:.1f}" text-anchor="end" '
            f'font-size="10" dominant-baseline="middle">{yv:.3f}</text>')
    for x, y, r in points:
        px = margin + (x - x0) * xf
        py = (height - margin) + (y - y0) * yf
        color = colors[r.mapping]
        is_base = r.name == baseline_name
        radius = 7 if is_base else 5
        stroke = ' stroke="#1b1f24" stroke-width="2"' if is_base else ""
        parts.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius}" '
            f'fill="{color}" fill-opacity="0.8"{stroke}>'
            f'<title>{_esc(r.name)}: C_c={r.c_c:.4f}, '
            f'peak={r.peak_throughput:.4f}</title></circle>')
        parts.append(
            f'<text x="{px + 8:.1f}" y="{py - 6:.1f}" font-size="10">'
            f'{_esc(r.name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_html(result: VariationStudyResult) -> str:
    """The full study report as one self-contained HTML document."""
    spec = result.spec
    base = baseline_record(result)
    rows: List[str] = []
    regressions = 0
    for r in result.records:
        d_thr, d_lat, regressed = record_deltas(r, base)
        regressions += regressed
        cls = ("baseline" if r.name == base.name
               else "regression" if regressed else "")
        flag = '<span class="flag">REG</span>' if regressed else ""
        rows.append(
            f'<tr class="{cls}"><td class="name">{_esc(r.name)}</td>'
            f"<td>{_num(r.c_c)}</td><td>{_num(r.f_g)}</td>"
            f"<td>{_num(r.peak_throughput)}</td>"
            f"<td>{_num(r.top_latency, 2)}</td>"
            f"<td>{_num(r.repair_gap)}</td>"
            f"<td>{_pct(d_thr)}</td><td>{_pct(d_lat)}</td>"
            f"<td>{flag}</td></tr>")
    ladder_rows: List[str] = []
    for r in result.records:
        if not r.rates:
            continue
        thr = "".join(
            f"<td>{_num(e['mean'], 3)}</td>" for e in r.throughput)
        lat = "".join(
            f"<td>{_num(e['mean'], 1)}</td>" for e in r.latency)
        ladder_rows.append(
            f'<tr><td class="name">{_esc(r.name)}</td>'
            f"<td>accepted</td>{thr}</tr>")
        ladder_rows.append(
            f'<tr><td class="name">{_esc(r.name)}</td>'
            f"<td>latency</td>{lat}</tr>")
    rate_heads = "".join(f"<th>S{i + 1}={rate:.4f}</th>"
                         for i, rate in enumerate(result.rates))
    verdict = (
        f"{regressions} variation(s) regressed vs "
        f"<code>{_esc(base.name)}</code>."
        if regressions else
        f"No variation regressed vs <code>{_esc(base.name)}</code>.")
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Variation study: {_esc(spec.name)}</title>
<style>
{_CSS}
</style>
</head>
<body>
<h1>Variation study: {_esc(spec.name)}</h1>
<p class="meta">topology <code>{_esc(spec.topology)}</code>
({spec.switches} switches, topology seed {spec.topology_seed}) &middot;
{1 + spec.num_random} mappings &times; {len(spec.fault_sets)} fault sets
&times; {len(spec.engines)} engines = {spec.cells} cells &middot;
{len(result.rates)} load rates &times; {spec.replications} replications
&middot; study seed {spec.seed}</p>
<h2>Estimated cost vs measured throughput</h2>
{scatter_svg(result.records, base.name)}
<h2>Cells</h2>
<table>
<tr><th>variation</th><th>C_c</th><th>F_G</th><th>peak thr</th>
<th>top-rate lat</th><th>repair gap</th><th>&Delta;thr</th>
<th>&Delta;lat</th><th></th></tr>
{"".join(rows)}
</table>
<h2>Measured ladder (means)</h2>
<table>
<tr><th>variation</th><th>metric</th>{rate_heads}</tr>
{"".join(ladder_rows)}
</table>
<h2>Verdict</h2>
<p>{verdict}</p>
</body>
</html>
"""


def render_status_page(status: Dict[str, object]) -> str:
    """A live daemon's ``status`` dict as a small self-contained page.

    Served by the operator console's ``/report`` endpoint when the
    console fronts a running scheduling daemon rather than a study.
    """
    def section(title: str, mapping: Dict[str, object]) -> str:
        rows = "".join(
            f'<tr><td class="name">{_esc(k)}</td><td>{_esc(v)}</td></tr>'
            for k, v in mapping.items())
        return f"<h2>{_esc(title)}</h2><table>{rows}</table>"

    scalar = {k: v for k, v in status.items()
              if not isinstance(v, (dict, list))}
    body = [section("daemon", scalar)]
    for key, value in status.items():
        if isinstance(value, dict):
            body.append(section(key, value))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro scheduler console</title>
<style>
{_CSS}
</style>
</head>
<body>
<h1>repro scheduler console</h1>
<p class="meta">endpoints: <a href="/healthz">/healthz</a> &middot;
<a href="/metrics">/metrics</a> &middot; <a href="/status">/status</a>
&middot; <a href="/report">/report</a></p>
{"".join(body)}
</body>
</html>
"""


__all__ = ["scatter_svg", "render_html", "render_status_page"]
