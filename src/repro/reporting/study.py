"""Variation studies: a declarative grid of schedule what-ifs.

A :class:`StudySpec` names a network, a set of mappings (the scheduler's
"OP" plus random baselines), a set of fault scenarios, the engines to
run and the measurement plan; :func:`run_variation_study` executes every
``mapping x fault set x engine`` cell through the existing sweep and
fault-study machinery and emits one :class:`VariationRecord` per cell:

- the mapping's scheduler scores (``C_c``, ``F_G``, ``D_G``);
- per-rate latency and accepted-throughput means with Student-t
  confidence intervals over ``replications`` independently seeded runs
  (the same :func:`repro.simulation.equivalence.mean_ci` the
  statistical-equivalence contract uses);
- for fault cells, the fault study's repair gap (``C_c`` left on the
  table by warm-start repair vs a full reschedule);
- the cache/engine counters a private metrics registry collected while
  the cell ran.

Every simulation seed is derived from the spec seed and the cell's
coordinates alone, so the records are a pure function of the spec: two
runs of the same spec produce identical records (up to the counters,
which depend on process-global cache warmth) and byte-identical rendered
reports.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.cache import cached_routing_table
from repro.experiments.common import ExperimentSetup, MappingRecord
from repro.experiments.failures import FaultStudyResult, run_fault_study
from repro.faults.degrade import degrade
from repro.faults.model import FaultScenario
from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.parallel import WorkersLike
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.equivalence import mean_ci
from repro.simulation.sweep import make_load_points, run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.designed import four_rings_topology
from repro.topology.irregular import random_irregular_topology
from repro.util.rng import derive_seed

PathLike = Union[str, Path]

HEALTHY = "healthy"

_SPEC_TYPE = "variation_study_spec"
_RECORD_TYPE = "variation_record"
_VERSION = 1


@dataclass(frozen=True)
class StudySpec:
    """The declarative grid of one variation study.

    ``fault_sets`` entries are :data:`HEALTHY` or fault labels:
    ``"link-<i>"`` (the i-th link of the topology, in link order) or
    ``"L<u>-<v>"`` (an explicit link).  ``engines`` entries are
    simulation engine names (``fast``/``reference``/``batch``/
    ``vector``).  ``max_rate`` places the top of the load ladder; when
    ``None`` the study derives it from the OP mapping's saturation
    point like the figure drivers do (slower but parameter-free).
    """

    name: str = "variation-study"
    topology: str = "random"          # "random" | "four-rings"
    switches: int = 16
    topology_seed: int = 42
    clusters: int = 4
    seed: int = 42
    num_random: int = 2
    engines: Tuple[str, ...] = ("fast",)
    fault_sets: Tuple[str, ...] = (HEALTHY,)
    num_rates: int = 3
    max_rate: Optional[float] = None
    replications: int = 3
    warmup_cycles: int = 600
    measure_cycles: int = 2500
    baseline: str = "OP"
    repair_restarts: int = 1
    full_restarts: int = 2

    def __post_init__(self):
        if self.topology not in ("random", "four-rings"):
            raise ValueError(
                f"topology must be 'random' or 'four-rings', "
                f"got {self.topology!r}")
        if self.replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {self.replications}")
        if self.num_rates < 2:
            raise ValueError(f"num_rates must be >= 2, got {self.num_rates}")
        if not self.engines:
            raise ValueError("at least one engine is required")
        if not self.fault_sets:
            raise ValueError("at least one fault set is required")

    @property
    def cells(self) -> int:
        """Grid size: mappings x fault sets x engines."""
        return ((1 + self.num_random) * len(self.fault_sets)
                * len(self.engines))

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a tagged JSON-ready dict."""
        return {
            "type": _SPEC_TYPE,
            "version": _VERSION,
            "name": self.name,
            "topology": self.topology,
            "switches": self.switches,
            "topology_seed": self.topology_seed,
            "clusters": self.clusters,
            "seed": self.seed,
            "num_random": self.num_random,
            "engines": list(self.engines),
            "fault_sets": list(self.fault_sets),
            "num_rates": self.num_rates,
            "max_rate": self.max_rate,
            "replications": self.replications,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "baseline": self.baseline,
            "repair_restarts": self.repair_restarts,
            "full_restarts": self.full_restarts,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "StudySpec":
        """Decode a spec payload (unknown keys rejected)."""
        if d.get("type") != _SPEC_TYPE:
            raise ValueError(
                f"expected a {_SPEC_TYPE!r} payload, got {d.get('type')!r}")
        known = set(cls.__dataclass_fields__) | {"type", "version"}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        kwargs = {k: d[k] for k in cls.__dataclass_fields__ if k in d}
        for key in ("engines", "fault_sets"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    @classmethod
    def load(cls, path: PathLike) -> "StudySpec":
        """Read a spec from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: PathLike) -> None:
        """Write the spec as indented JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


def _nan_to_none(x: Optional[float]) -> Optional[float]:
    if x is None:
        return None
    x = float(x)
    return None if not math.isfinite(x) else x


@dataclass
class VariationRecord:
    """One grid cell: a (mapping, fault set, engine) variation, measured.

    ``latency`` and ``throughput`` hold one ``{"mean", "lo", "hi"}``
    entry per load rate (Student-t CI over the replications; ``None``
    where the quantity is undefined, e.g. latency with nothing
    delivered).  ``repair_gap`` is ``None`` for healthy cells and for
    fault cells whose scenario left no single machine to repair.
    """

    name: str
    mapping: str
    fault_set: str
    engine: str
    c_c: float
    f_g: float
    d_g: float
    rates: List[float] = field(default_factory=list)
    latency: List[Dict[str, Optional[float]]] = field(default_factory=list)
    throughput: List[Dict[str, Optional[float]]] = field(default_factory=list)
    peak_throughput: Optional[float] = None
    repair_gap: Optional[float] = None
    counters: Dict[str, float] = field(default_factory=dict)
    replications: int = 1

    @property
    def top_latency(self) -> Optional[float]:
        """Mean latency at the highest load rate (the congestion probe)."""
        return self.latency[-1]["mean"] if self.latency else None

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a tagged, strictly-JSON-safe dict."""
        return {
            "type": _RECORD_TYPE,
            "version": _VERSION,
            "name": self.name,
            "mapping": self.mapping,
            "fault_set": self.fault_set,
            "engine": self.engine,
            "c_c": self.c_c,
            "f_g": self.f_g,
            "d_g": self.d_g,
            "rates": list(self.rates),
            "latency": [dict(e) for e in self.latency],
            "throughput": [dict(e) for e in self.throughput],
            "peak_throughput": self.peak_throughput,
            "repair_gap": self.repair_gap,
            "counters": dict(self.counters),
            "replications": self.replications,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "VariationRecord":
        """Decode (and strictly validate) a record payload."""
        validate_variation_record(d)
        return cls(
            name=str(d["name"]),
            mapping=str(d["mapping"]),
            fault_set=str(d["fault_set"]),
            engine=str(d["engine"]),
            c_c=float(d["c_c"]),
            f_g=float(d["f_g"]),
            d_g=float(d["d_g"]),
            rates=[float(r) for r in d["rates"]],
            latency=[dict(e) for e in d["latency"]],
            throughput=[dict(e) for e in d["throughput"]],
            peak_throughput=d["peak_throughput"],
            repair_gap=d["repair_gap"],
            counters=dict(d["counters"]),
            replications=int(d["replications"]),
        )


_RECORD_REQUIRED = (
    "type", "version", "name", "mapping", "fault_set", "engine",
    "c_c", "f_g", "d_g", "rates", "latency", "throughput",
    "peak_throughput", "repair_gap", "counters", "replications",
)


def validate_variation_record(d: Any) -> None:
    """Raise :class:`ValueError` unless ``d`` is a valid record payload.

    This is the JSON-schema check the CI smoke job runs over every
    record a study emits.
    """
    if not isinstance(d, dict):
        raise ValueError(f"record payload must be a dict, got {type(d).__name__}")
    if d.get("type") != _RECORD_TYPE:
        raise ValueError(
            f"expected a {_RECORD_TYPE!r} payload, got {d.get('type')!r}")
    missing = [k for k in _RECORD_REQUIRED if k not in d]
    if missing:
        raise ValueError(f"record missing keys: {missing}")
    unknown = sorted(set(d) - set(_RECORD_REQUIRED))
    if unknown:
        raise ValueError(f"record has unknown keys: {unknown}")
    for key in ("name", "mapping", "fault_set", "engine"):
        if not isinstance(d[key], str) or not d[key]:
            raise ValueError(f"record {key!r} must be a non-empty string")
    for key in ("c_c", "f_g", "d_g"):
        if not isinstance(d[key], (int, float)) or isinstance(d[key], bool):
            raise ValueError(f"record {key!r} must be a number")
    if not isinstance(d["rates"], list):
        raise ValueError("record 'rates' must be a list")
    for key in ("latency", "throughput"):
        entries = d[key]
        if not isinstance(entries, list) or len(entries) != len(d["rates"]):
            raise ValueError(
                f"record {key!r} must be a list parallel to 'rates'")
        for entry in entries:
            if (not isinstance(entry, dict)
                    or set(entry) != {"mean", "lo", "hi"}):
                raise ValueError(
                    f"record {key!r} entries must be mean/lo/hi dicts")
            for v in entry.values():
                if v is not None and (not isinstance(v, (int, float))
                                      or isinstance(v, bool)
                                      or not math.isfinite(v)):
                    raise ValueError(
                        f"record {key!r} values must be finite or null")
    for key in ("peak_throughput", "repair_gap"):
        v = d[key]
        if v is not None and (not isinstance(v, (int, float))
                              or isinstance(v, bool) or not math.isfinite(v)):
            raise ValueError(f"record {key!r} must be a finite number or null")
    if not isinstance(d["counters"], dict):
        raise ValueError("record 'counters' must be a dict")
    if not isinstance(d["replications"], int) or d["replications"] < 1:
        raise ValueError("record 'replications' must be a positive int")


@dataclass
class VariationStudyResult:
    """Every cell of one executed study, plus the spec that produced it."""

    spec: StudySpec
    records: List[VariationRecord]
    rates: List[float]

    def record(self, name: str) -> VariationRecord:
        """The cell called ``name`` (``mapping/fault_set/engine``)."""
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no variation named {name!r}")

    def deterministic_payload(self) -> str:
        """Canonical JSON of every record's seed-determined fields.

        Counters are excluded: they depend on process-global cache
        warmth, not on the spec.  Two runs of the same spec — serial,
        parallel, or in different processes — must produce exactly
        these bytes.
        """
        rows = []
        for r in self.records:
            d = r.to_dict()
            d.pop("counters")
            rows.append(d)
        return json.dumps({"spec": self.spec.to_dict(), "rows": rows},
                          sort_keys=True)


def build_setup(spec: StudySpec) -> ExperimentSetup:
    """The network + scheduler + workload a spec describes."""
    if spec.topology == "four-rings":
        topo = four_rings_topology()
    else:
        topo = random_irregular_topology(
            spec.switches, seed=spec.topology_seed,
            name=f"study-{spec.switches}sw-t{spec.topology_seed}")
    sched = CommunicationAwareScheduler(topo)
    total_hosts = topo.num_switches * topo.hosts_per_switch
    if total_hosts % spec.clusters:
        raise ValueError(
            f"{total_hosts} hosts do not divide into {spec.clusters} clusters")
    workload = Workload.uniform(spec.clusters, total_hosts // spec.clusters)
    return ExperimentSetup(
        topology=topo,
        scheduler=sched,
        workload=workload,
        routing_table=cached_routing_table(sched.routing),
        seed=spec.seed,
    )


def _parse_fault_set(label: str, setup: ExperimentSetup) -> FaultScenario:
    """A fault-set label (``link-<i>`` or ``L<u>-<v>``) as a scenario."""
    links = list(setup.topology.links)
    if label.startswith("link-"):
        index = int(label[len("link-"):])
        if not 0 <= index < len(links):
            raise ValueError(
                f"fault set {label!r}: topology has {len(links)} links")
        return FaultScenario(links=(links[index],), name=label)
    if label.startswith("L") and "-" in label:
        u, v = label[1:].split("-", 1)
        return FaultScenario(links=((int(u), int(v)),), name=label)
    raise ValueError(
        f"unknown fault set {label!r}; use {HEALTHY!r}, 'link-<i>' or "
        "'L<u>-<v>'")


def _fault_tables(
    spec: StudySpec, setup: ExperimentSetup,
) -> Tuple[Dict[str, RoutingTable], Dict[str, Optional[float]]]:
    """Per-fault-set routing tables and repair gaps.

    The repair gap comes from a one-scenario fault study (warm-start
    repair vs full reschedule of the baseline mapping) — computed once
    per fault set and attached to every cell of that set.
    """
    tables: Dict[str, RoutingTable] = {HEALTHY: setup.routing_table}
    gaps: Dict[str, Optional[float]] = {HEALTHY: None}
    for label in spec.fault_sets:
        if label == HEALTHY:
            continue
        scenario = _parse_fault_set(label, setup)
        net = degrade(setup.topology, scenario)
        if not net.full_machine:
            raise ValueError(
                f"fault set {label!r} breaks the machine "
                f"({len(net.components)} components); variation studies "
                "sweep full-machine scenarios only")
        tables[label] = RoutingTable(net.routing())
        study = run_fault_study(
            setup, [scenario], seed=spec.seed,
            repair_restarts=spec.repair_restarts,
            full_restarts=spec.full_restarts,
        )
        gaps[label] = study.rows[0].repair_gap
    return tables, gaps


def _ci_entry(values: Sequence[float]) -> Dict[str, Optional[float]]:
    """A ``{"mean", "lo", "hi"}`` CI entry, NaN-safe."""
    clean = [v for v in values if v is not None and math.isfinite(v)]
    if not clean:
        return {"mean": None, "lo": None, "hi": None}
    mean, lo, hi = mean_ci(clean)
    return {"mean": _nan_to_none(mean), "lo": _nan_to_none(lo),
            "hi": _nan_to_none(hi)}


def run_variation_study(
    spec: StudySpec, *, workers: WorkersLike = None,
) -> VariationStudyResult:
    """Execute every cell of the grid and return its records.

    Each cell runs ``spec.replications`` sweeps over the shared load
    ladder, each with a seed derived from the spec seed and the cell's
    coordinates, and reports per-rate mean/CI latency and throughput.
    ``workers`` fans the inner load sweeps onto a process pool; derived
    seeds make the result identical to a serial run.
    """
    setup = build_setup(spec)
    config = SimulationConfig(
        warmup_cycles=spec.warmup_cycles,
        measure_cycles=spec.measure_cycles,
        seed=spec.seed,
    )
    with _trace.span("study.run", name=spec.name, cells=spec.cells):
        mappings: List[MappingRecord] = [setup.op_mapping()]
        mappings += setup.random_mappings(spec.num_random)
        if spec.max_rate is not None:
            rates = make_load_points(spec.max_rate, n=spec.num_rates)
        else:
            rates = setup.load_ladder(config, n=spec.num_rates)
        tables, gaps = _fault_tables(spec, setup)

        records: List[VariationRecord] = []
        for mapping in mappings:
            for fault_set in spec.fault_sets:
                for engine in spec.engines:
                    records.append(_run_cell(
                        spec, mapping, fault_set, engine,
                        tables[fault_set], gaps[fault_set], rates,
                        config, workers,
                    ))
    return VariationStudyResult(spec=spec, records=records,
                                rates=list(rates))


def _run_cell(
    spec: StudySpec,
    mapping: MappingRecord,
    fault_set: str,
    engine: str,
    table: RoutingTable,
    repair_gap: Optional[float],
    rates: Sequence[float],
    config: SimulationConfig,
    workers: WorkersLike,
) -> VariationRecord:
    """Measure one grid cell under a private metrics registry."""
    name = f"{mapping.name}/{fault_set}/{engine}"
    traffic = IntraClusterTraffic(mapping.mapping)
    registry = MetricsRegistry()
    per_rate_latency: List[List[float]] = [[] for _ in rates]
    per_rate_accepted: List[List[float]] = [[] for _ in rates]
    with use_registry(registry), _trace.span("study.cell", cell=name):
        for rep in range(spec.replications):
            cfg = SimulationConfig(
                warmup_cycles=config.warmup_cycles,
                measure_cycles=config.measure_cycles,
                engine=engine,
                seed=derive_seed(spec.seed, "cell", mapping.name,
                                 fault_set, engine, rep),
            )
            points = run_load_sweep(table, traffic, rates, cfg,
                                    workers=workers)
            for i, point in enumerate(points):
                per_rate_latency[i].append(point.result.avg_latency)
                per_rate_accepted[i].append(
                    point.result.accepted_flits_per_switch_cycle)
    latency = [_ci_entry(vals) for vals in per_rate_latency]
    throughput = [_ci_entry(vals) for vals in per_rate_accepted]
    peaks = [e["mean"] for e in throughput if e["mean"] is not None]
    return VariationRecord(
        name=name,
        mapping=mapping.name,
        fault_set=fault_set,
        engine=engine,
        c_c=mapping.c_c,
        f_g=mapping.f_g,
        d_g=mapping.d_g,
        rates=[float(r) for r in rates],
        latency=latency,
        throughput=throughput,
        peak_throughput=max(peaks) if peaks else None,
        repair_gap=_nan_to_none(repair_gap),
        counters={k: v for k, v in registry.snapshot()["counters"].items()},
        replications=spec.replications,
    )


# --------------------------------------------------------------------- #
# adapters from the existing experiment drivers
# --------------------------------------------------------------------- #

def records_from_sim_figure(res: "Any", *,
                            engine: str = "figure") -> List[VariationRecord]:
    """A :class:`SimFigureResult` (Figs. 3/5) as single-rep variation records.

    One record per mapping, healthy network; with a single sweep per
    mapping the CIs collapse to the point estimate.  ``engine`` labels
    the records' engine coordinate (pass ``"fig3"``/``"fig5"`` when
    combining several figures so cell names stay unique).
    """
    records = []
    for m in res.mappings:
        points = res.sweeps[m.name]
        records.append(VariationRecord(
            name=f"{m.name}/{HEALTHY}/{engine}",
            mapping=m.name,
            fault_set=HEALTHY,
            engine=engine,
            c_c=m.c_c,
            f_g=m.f_g,
            d_g=m.d_g,
            rates=[p.rate for p in points],
            latency=[
                {"mean": _nan_to_none(p.result.avg_latency),
                 "lo": _nan_to_none(p.result.avg_latency),
                 "hi": _nan_to_none(p.result.avg_latency)}
                for p in points
            ],
            throughput=[
                {"mean": _nan_to_none(
                    p.result.accepted_flits_per_switch_cycle),
                 "lo": _nan_to_none(
                     p.result.accepted_flits_per_switch_cycle),
                 "hi": _nan_to_none(
                     p.result.accepted_flits_per_switch_cycle)}
                for p in points
            ],
            peak_throughput=_nan_to_none(
                res.saturation_throughput.get(m.name)),
            repair_gap=None,
            counters={},
            replications=1,
        ))
    return records


def records_from_fault_study(res: FaultStudyResult) -> List[VariationRecord]:
    """A :class:`FaultStudyResult` as sweep-less variation records.

    One record per scenario carrying the quality story only — healthy,
    degraded and repaired ``C_c`` plus the repair gap — with empty
    measurement arrays (the study never swept traffic).
    """
    records = []
    for row in res.rows:
        label = row.scenario.label
        records.append(VariationRecord(
            name=f"OP/{label}/faults",
            mapping="OP",
            fault_set=label,
            engine="faults",
            c_c=(row.c_c_degraded if row.c_c_degraded is not None
                 else row.c_c_before),
            f_g=0.0,
            d_g=0.0,
            rates=[],
            latency=[],
            throughput=[],
            peak_throughput=None,
            repair_gap=_nan_to_none(row.repair_gap),
            counters={},
            replications=1,
        ))
    return records


def wrap_records(
    records: Sequence[VariationRecord],
    *,
    name: str = "adapter",
    baseline: str = "OP",
    switches: int = 16,
) -> VariationStudyResult:
    """Package adapter records into a renderable study result.

    The figure and fault-study adapters hand back bare record lists;
    the renderers want a :class:`VariationStudyResult`.  The spec built
    here is synthetic scaffolding — its grid coordinates are recovered
    from the records so the report header and baseline lookup work, and
    it never drives any execution.
    """
    if not records:
        raise ValueError("cannot wrap an empty record list")
    mappings: List[str] = []
    fault_sets: List[str] = []
    engines: List[str] = []
    for r in records:
        if r.mapping not in mappings:
            mappings.append(r.mapping)
        if r.fault_set not in fault_sets:
            fault_sets.append(r.fault_set)
        if r.engine not in engines:
            engines.append(r.engine)
    rates = max((r.rates for r in records), key=len, default=[])
    spec = StudySpec(
        name=name,
        switches=switches,
        num_random=len(mappings) - 1,
        engines=tuple(engines),
        fault_sets=tuple(fault_sets),
        num_rates=max(2, len(rates)),
        replications=max(r.replications for r in records),
        baseline=baseline,
    )
    return VariationStudyResult(spec=spec, records=list(records),
                                rates=list(rates))


__all__ = [
    "HEALTHY",
    "StudySpec",
    "VariationRecord",
    "VariationStudyResult",
    "validate_variation_record",
    "build_setup",
    "run_variation_study",
    "records_from_sim_figure",
    "records_from_fault_study",
    "wrap_records",
]
