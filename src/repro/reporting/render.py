"""Comparative markdown rendering of a variation study.

The comparison the paper makes visually — which schedule variation
saturates higher, at what estimated cost ``C_c`` — as one markdown
document: a summary table of every cell, per-variation deltas against a
named baseline cell, and explicit regression highlighting (a variation
whose throughput fell, or latency rose, beyond a threshold relative to
the baseline is flagged ``REG``).

All formatting is fixed-precision and the input records carry no
wall-clock fields, so the document is byte-identical across reruns of
the same spec.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.reporting.study import (
    HEALTHY,
    VariationRecord,
    VariationStudyResult,
)

REGRESSION_THRESHOLD = 0.05     # 5 % vs baseline flags a regression


def _fmt(value: Optional[float], digits: int = 4) -> str:
    """A number for a table cell; ``-`` for undefined."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _fmt_ci(entry: Optional[dict], digits: int = 2) -> str:
    """``mean [lo, hi]`` for one CI entry; ``-`` for undefined."""
    if not entry or entry.get("mean") is None:
        return "-"
    return (f"{entry['mean']:.{digits}f} "
            f"[{entry['lo']:.{digits}f}, {entry['hi']:.{digits}f}]")


def _fmt_pct(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{100.0 * value:+.1f}%"


def baseline_record(result: VariationStudyResult) -> VariationRecord:
    """The cell deltas are measured against.

    The spec's baseline mapping on the healthy network (falling back to
    the first fault set) under the first engine; failing that, the
    first record.
    """
    spec = result.spec
    fault_sets = [HEALTHY] + [f for f in spec.fault_sets if f != HEALTHY]
    for fault_set in fault_sets:
        for engine in spec.engines:
            name = f"{spec.baseline}/{fault_set}/{engine}"
            for r in result.records:
                if r.name == name:
                    return r
    return result.records[0]


def _rel_delta(value: Optional[float],
               base: Optional[float]) -> Optional[float]:
    """``(value - base) / base`` when both sides are usable."""
    if value is None or base is None or base == 0:
        return None
    return (value - base) / base


def record_deltas(
    record: VariationRecord, base: VariationRecord,
) -> Tuple[Optional[float], Optional[float], bool]:
    """``(throughput delta, latency delta, regressed)`` vs the baseline.

    Throughput compares peak accepted traffic (higher is better);
    latency compares the mean at the top load rate (lower is better).
    A cell regresses when either moves against the baseline by more
    than :data:`REGRESSION_THRESHOLD`.
    """
    d_thr = _rel_delta(record.peak_throughput, base.peak_throughput)
    d_lat = _rel_delta(record.top_latency, base.top_latency)
    regressed = ((d_thr is not None and d_thr < -REGRESSION_THRESHOLD)
                 or (d_lat is not None and d_lat > REGRESSION_THRESHOLD))
    return d_thr, d_lat, regressed


def render_markdown(result: VariationStudyResult) -> str:
    """The full comparative report as GitHub-flavoured markdown."""
    spec = result.spec
    base = baseline_record(result)
    lines: List[str] = [
        f"# Variation study: {spec.name}",
        "",
        f"- topology: `{spec.topology}` ({spec.switches} switches, "
        f"seed {spec.topology_seed})",
        f"- grid: {1 + spec.num_random} mappings x "
        f"{len(spec.fault_sets)} fault sets x {len(spec.engines)} engines "
        f"= {spec.cells} cells",
        f"- measurement: {len(result.rates)} load rates x "
        f"{spec.replications} replications "
        f"({spec.warmup_cycles}+{spec.measure_cycles} cycles), seed "
        f"{spec.seed}",
        f"- baseline: `{base.name}`",
        "",
        "## Cells",
        "",
        "| variation | C_c | F_G | peak thr | top-rate latency | "
        "repair gap | Δthr | Δlat | |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    regressions = []
    for r in result.records:
        d_thr, d_lat, regressed = record_deltas(r, base)
        if regressed:
            regressions.append(r.name)
        flag = "**REG**" if regressed else ""
        mark = " (baseline)" if r.name == base.name else ""
        lines.append(
            f"| `{r.name}`{mark} | {_fmt(r.c_c)} | {_fmt(r.f_g)} | "
            f"{_fmt(r.peak_throughput)} | "
            f"{_fmt_ci(r.latency[-1] if r.latency else None)} | "
            f"{_fmt(r.repair_gap)} | {_fmt_pct(d_thr)} | "
            f"{_fmt_pct(d_lat)} | {flag} |"
        )
    lines += ["", "## Measured ladder", ""]
    rate_heads = " | ".join(f"S{i + 1}={rate:.4f}"
                            for i, rate in enumerate(result.rates))
    lines.append(f"| variation | metric | {rate_heads} |")
    lines.append("|---|---|" + "---|" * len(result.rates))
    for r in result.records:
        if not r.rates:
            continue
        thr = " | ".join(_fmt_ci(e, 3) for e in r.throughput)
        lat = " | ".join(_fmt_ci(e, 1) for e in r.latency)
        lines.append(f"| `{r.name}` | accepted | {thr} |")
        lines.append(f"| `{r.name}` | latency | {lat} |")
    lines += ["", "## Verdict", ""]
    if regressions:
        lines.append(
            f"{len(regressions)} variation(s) regressed vs `{base.name}` "
            f"(>{100 * REGRESSION_THRESHOLD:.0f}% worse): "
            + ", ".join(f"`{n}`" for n in regressions))
    else:
        lines.append(
            f"No variation regressed vs `{base.name}` by more than "
            f"{100 * REGRESSION_THRESHOLD:.0f}%.")
    ranked = sorted(
        (r for r in result.records if r.peak_throughput is not None),
        key=lambda r: -r.peak_throughput)
    if ranked:
        lines.append(
            f"Best peak throughput: `{ranked[0].name}` at "
            f"{ranked[0].peak_throughput:.4f} flits/switch/cycle.")
    return "\n".join(lines) + "\n"


__all__ = ["REGRESSION_THRESHOLD", "baseline_record", "record_deltas",
           "render_markdown"]
