"""repro — communication-aware task scheduling for switch-based NOWs.

A faithful, self-contained reproduction of

    J. M. Orduña, V. Arnau, A. Ruiz, R. Valero, J. Duato,
    "On the Design of Communication-Aware Task Scheduling Strategies for
    Heterogeneous Systems", ICPP 2000,

including every substrate the paper depends on: irregular switch-network
topologies, up*/down* routing, the table of equivalent distances (the
electrical-resistance communication-cost model), the similarity /
dissimilarity quality functions and clustering coefficient, the multi-start
Tabu scheduling technique (plus the comparator heuristics), a flit-level
wormhole network simulator, the classical computation-aware mapping
heuristics, and drivers regenerating every figure of the evaluation.

Quick start::

    from repro import (
        random_irregular_topology, CommunicationAwareScheduler, Workload,
    )

    topo = random_irregular_topology(16, seed=42)
    scheduler = CommunicationAwareScheduler(topo)
    result = scheduler.schedule(Workload.uniform(4, 16), seed=1)
    print(result.summary())
"""

from repro.topology import (
    Topology,
    random_irregular_topology,
    four_rings_topology,
)
from repro.routing import UpDownRouting, MinimalRouting, RoutingTable
from repro.distance import (
    DistanceTable,
    build_distance_table,
    hop_distance_table,
    TableCache,
    cached_distance_table,
    cached_routing_table,
    configure_cache,
)
from repro.checkpoint import CheckpointMismatch, SweepCheckpoint
from repro.faults import (
    DegradedNetwork,
    FaultScenario,
    compare_repair_strategies,
    degrade,
    repair_schedule,
    sample_fault_scenarios,
    schedule_degraded,
)
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    collect_manifest,
    trace_run,
)
from repro.parallel import (
    JobTimeoutError,
    WorkerPool,
    detect_workers,
    parallel_map,
    resolve_workers,
)
from repro.service import (
    ScheduleRequest,
    ScheduleResponse,
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    running_service,
)
from repro.core import (
    LogicalCluster,
    Workload,
    Partition,
    ProcessMapping,
    CommunicationAwareScheduler,
    ScheduleResult,
    DynamicScheduler,
    clustering_coefficient,
    similarity_global,
    dissimilarity_global,
)
from repro.search import (
    TabuSearch,
    SimulatedAnnealing,
    GeneticAlgorithm,
    GeneticSimulatedAnnealing,
    AStarSearch,
    ExhaustiveSearch,
    RandomSearch,
)
from repro.simulation import (
    SimulationConfig,
    WormholeNetworkSimulator,
    FastWormholeNetworkSimulator,
    make_simulator,
    IntraClusterTraffic,
    UniformTraffic,
)

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "random_irregular_topology",
    "four_rings_topology",
    "UpDownRouting",
    "MinimalRouting",
    "RoutingTable",
    "DistanceTable",
    "build_distance_table",
    "hop_distance_table",
    "TableCache",
    "cached_distance_table",
    "cached_routing_table",
    "configure_cache",
    "detect_workers",
    "parallel_map",
    "resolve_workers",
    "JobTimeoutError",
    "WorkerPool",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulerService",
    "ServiceClient",
    "ServiceConfig",
    "running_service",
    "CheckpointMismatch",
    "SweepCheckpoint",
    "Tracer",
    "MetricsRegistry",
    "RunManifest",
    "collect_manifest",
    "trace_run",
    "FaultScenario",
    "sample_fault_scenarios",
    "DegradedNetwork",
    "degrade",
    "repair_schedule",
    "compare_repair_strategies",
    "schedule_degraded",
    "LogicalCluster",
    "Workload",
    "Partition",
    "ProcessMapping",
    "CommunicationAwareScheduler",
    "ScheduleResult",
    "DynamicScheduler",
    "clustering_coefficient",
    "similarity_global",
    "dissimilarity_global",
    "TabuSearch",
    "SimulatedAnnealing",
    "GeneticAlgorithm",
    "GeneticSimulatedAnnealing",
    "AStarSearch",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulationConfig",
    "WormholeNetworkSimulator",
    "FastWormholeNetworkSimulator",
    "make_simulator",
    "IntraClusterTraffic",
    "UniformTraffic",
    "__version__",
]
