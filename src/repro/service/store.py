"""Content-addressed result store with TTL — the service's dedup layer.

Keys are request fingerprints (:meth:`ScheduleRequest.fingerprint`), i.e.
content hashes over everything that determines the result; values are the
canonical :class:`ScheduleResponse` dicts.  Because the scheduler is
deterministic, replaying a stored value is indistinguishable from
recomputing it — the store is a pure cache, the TTL only bounds staleness
against *code* changes (a redeployed service starts empty) and memory
growth.

Expiry uses an injectable monotonic clock so tests can step time instead
of sleeping; capacity eviction is LRU.  All counters are mirrored to the
active :class:`~repro.obs.metrics.MetricsRegistry` as
``service.store.{hits,misses,evictions,expirations,corruptions}``
(no-ops when telemetry is off).

Every entry carries an integrity digest — a SHA-256 over its canonical
JSON, computed at :meth:`ResultStore.put` and re-verified at every
:meth:`ResultStore.get`.  A value mutated behind the store's back (chaos
injection, a buggy in-process caller sharing the dict) is detected,
dropped and counted instead of served: a corrupted cache degrades to a
miss and the daemon recomputes, preserving the byte-identical-reply
invariant.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import metrics as _metrics


def _digest(value: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON of ``value`` (sorted keys)."""
    blob = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Counters of one :class:`ResultStore`."""

    size: int
    max_entries: int
    hits: int
    misses: int
    evictions: int
    expirations: int
    corruptions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultStore:
    """A thread-safe LRU + TTL map from request fingerprint to response.

    Parameters
    ----------
    ttl:
        Seconds an entry stays servable after being stored; ``None``
        disables expiry.
    max_entries:
        Capacity bound; the least-recently-used entry is evicted beyond it.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, ttl: Optional[float] = 300.0, max_entries: int = 1024,
                 *, clock: Callable[[], float] = time.monotonic):
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0 seconds or None, got {ttl}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.ttl = ttl
        self.max_entries = int(max_entries)
        self._clock = clock
        self._entries: \
            "OrderedDict[str, Tuple[float, Dict[str, Any], str]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._corruptions = 0

    # -------------------------------------------------------------- #

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored response for ``key``, or ``None``.

        ``None`` covers missing, expired *and corrupted*: the entry's
        integrity digest is re-verified on every hit, and a value that no
        longer hashes to what was stored is dropped (and counted as a
        corruption) rather than served — the caller recomputes.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            expired = corrupt = False
            if entry is not None and self._expired(entry[0], now):
                del self._entries[key]
                self._expirations += 1
                entry = None
                expired = True
            if entry is not None and _digest(entry[1]) != entry[2]:
                del self._entries[key]
                self._corruptions += 1
                entry = None
                corrupt = True
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
                self._entries.move_to_end(key)
        if expired:
            _metrics.inc("service.store.expirations")
        if corrupt:
            _metrics.inc("service.store.corruptions")
        _metrics.inc(f"service.store.{'misses' if entry is None else 'hits'}")
        return entry[1] if entry is not None else None

    def put(self, key: str, value: Dict[str, Any]) -> None:
        """Store (or refresh) ``key``; evicts LRU entries beyond capacity.

        The value's integrity digest is computed here and pinned to the
        entry; :meth:`get` re-verifies it before serving.
        """
        now = self._clock()
        evicted = 0
        digest = _digest(value)
        with self._lock:
            self._entries[key] = (now, value, digest)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            _metrics.inc("service.store.evictions", evicted)

    def purge(self) -> int:
        """Drop every expired entry; returns how many were dropped."""
        if self.ttl is None:
            return 0
        now = self._clock()
        with self._lock:
            dead = [k for k, (t, _, _) in self._entries.items()
                    if self._expired(t, now)]
            for k in dead:
                del self._entries[k]
            self._expirations += len(dead)
        if dead:
            _metrics.inc("service.store.expirations", len(dead))
        return len(dead)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # -------------------------------------------------------------- #

    def _expired(self, stored_at: float, now: float) -> bool:
        return self.ttl is not None and now - stored_at > self.ttl

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry[0], now)

    def stats(self) -> StoreStats:
        """Snapshot of size and the hit/miss/evict/expire/corrupt counters."""
        with self._lock:
            return StoreStats(
                size=len(self._entries),
                max_entries=self.max_entries,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                corruptions=self._corruptions,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (f"ResultStore(size={s.size}/{s.max_entries}, ttl={self.ttl}, "
                f"hits={s.hits}, misses={s.misses})")


__all__ = ["ResultStore", "StoreStats"]
