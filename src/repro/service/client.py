"""Blocking client for the scheduling service.

A thin synchronous wrapper over the newline-JSON protocol — one socket,
one request/reply in flight at a time — used by ``repro submit`` /
``repro status``, the test suite and the load bench (which opens one
client per simulated user).

Server-side rejections surface as :class:`ServiceError` carrying the
envelope's error ``code`` (``backpressure``, ``rejected``, ``bad-request``,
…) and any extra fields (e.g. ``retry_after``), so callers can implement
retry policy without string matching.

Transport faults are healed transparently for *idempotent* operations:
when the connection dies or the reply frame is torn mid-read, the client
reconnects and re-sends with full-jitter backoff
(:func:`repro.parallel.backoff_delay`), up to ``retries`` times.  This is
safe because every retryable op is idempotent by construction — ``ping``
and ``status`` are reads, and ``submit``/``result`` are keyed by the
request's *content fingerprint*: a replayed submit deduplicates against
the store or the in-flight table server-side and yields the byte-identical
canonical payload.  ``shutdown`` is never retried, and a structured error
reply (:class:`ServiceError`) is a *successful* exchange — it propagates
immediately, retry policy for those belongs to the caller.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, Optional

from repro.parallel import backoff_delay
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    ScheduleRequest,
    ServiceStatus,
    decode_line,
    encode_line,
)

#: Ops safe to replay on a dead connection: reads, plus the fingerprint-
#: keyed submit/result pair (deduplicated server-side).  ``shutdown`` is
#: deliberately absent.
IDEMPOTENT_OPS = frozenset({"ping", "status", "submit", "result"})


class ServiceError(Exception):
    """A structured error reply from the service."""

    def __init__(self, code: str, message: str, **extra: Any):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.extra = extra

    @classmethod
    def from_envelope(cls, envelope: Dict[str, Any]) -> "ServiceError":
        err = envelope.get("error")
        if not isinstance(err, dict):
            return cls("malformed", f"malformed error envelope: {envelope!r}")
        extra = {k: v for k, v in err.items() if k not in ("code", "message")}
        return cls(str(err.get("code", "unknown")),
                   str(err.get("message", "")), **extra)


class ServiceClient:
    """One connection to a running service; safe for sequential use.

    Usable as a context manager::

        with ServiceClient(host, port) as client:
            reply = client.submit(request)
    """

    def __init__(self, host: str, port: int, *, timeout: float = 120.0,
                 retries: int = 2, rng: Optional[random.Random] = None):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._rng = rng or random.Random()
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    # -------------------------------------------------------------- #
    # connection plumbing
    # -------------------------------------------------------------- #

    def connect(self) -> None:
        """Open the socket (idempotent)."""
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/reply exchange; raises ServiceError on error replies.

        Idempotent ops (:data:`IDEMPOTENT_OPS`) are transparently
        reconnected and re-sent when the transport dies or the reply
        frame is torn, with full-jitter backoff between attempts; the
        final failure propagates unchanged once ``retries`` is spent.
        """
        attempts = (self.retries + 1
                    if message.get("op") in IDEMPOTENT_OPS else 1)
        for attempt in range(attempts):
            try:
                return self._exchange(message)
            except (ConnectionError, ProtocolError, OSError):
                self.close()
                if attempt + 1 >= attempts:
                    raise
                time.sleep(backoff_delay(attempt, rng=self._rng))
        raise AssertionError("unreachable")  # pragma: no cover

    def _exchange(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and read one reply on the current connection."""
        self.connect()
        try:
            self._sock.sendall(encode_line(message))
            raw = self._rfile.readline(MAX_LINE_BYTES + 1)
        except OSError:
            self.close()
            raise
        if not raw:
            self.close()
            raise ConnectionError("service closed the connection")
        reply = decode_line(raw)
        if not reply.get("ok"):
            raise ServiceError.from_envelope(reply)
        return reply

    # -------------------------------------------------------------- #
    # operations
    # -------------------------------------------------------------- #

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the reply (includes the server version)."""
        return self._call({"op": "ping"})

    def status(self) -> ServiceStatus:
        """The service's current counters as a :class:`ServiceStatus`."""
        reply = self._call({"op": "status"})
        try:
            return ServiceStatus.from_dict(reply.get("status"))
        except ProtocolError as exc:
            raise ServiceError("malformed", f"bad status reply: {exc}") \
                from None

    def submit(self, request: ScheduleRequest, *,
               wait: bool = True) -> Dict[str, Any]:
        """Submit a request.

        With ``wait=True`` (default) blocks until the result is computed
        and returns the full reply: ``reply["result"]`` is the canonical
        response payload, ``reply["served"]`` says how it was served.
        With ``wait=False`` returns immediately with a ``ticket`` (the
        request fingerprint) to poll through :meth:`result`.
        """
        return self._call({"op": "submit", "request": request.to_dict(),
                           "wait": wait})

    def submit_payload(self, payload: Dict[str, Any], *,
                       wait: bool = True) -> Dict[str, Any]:
        """Submit a pre-encoded request dict (the CLI's file-input path)."""
        return self._call({"op": "submit", "request": payload, "wait": wait})

    def result(self, ticket: str) -> Dict[str, Any]:
        """Look up a previously submitted ticket.

        Returns the reply; ``reply.get("result")`` is the payload when
        done, else ``reply["status"] == "pending"``.
        """
        return self._call({"op": "result", "ticket": ticket})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the service to stop (acknowledged before it goes down)."""
        return self._call({"op": "shutdown"})

    def wait_until_ready(self, *, timeout: float = 30.0,
                         interval: float = 0.05) -> Dict[str, Any]:
        """Poll :meth:`ping` until the service answers or ``timeout``."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.ping()
            except (OSError, ConnectionError) as exc:
                last = exc
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.host}:{self.port} not ready after {timeout}s"
        ) from last


__all__ = ["IDEMPOTENT_OPS", "ServiceClient", "ServiceError"]
