"""Micro-batching: coalesce requests sharing a topology, execute batches.

Two halves:

- **planning** (event-loop side): :func:`plan_batches` splits a drained
  queue batch into :class:`BatchGroup` objects — one per topology
  fingerprint — and, within a group, folds requests with identical
  *request* fingerprints into one computation whose result every
  duplicate's future receives.
- **execution** (worker side): :func:`execute_batch` is the top-level
  picklable function the persistent pool runs.  All requests of a group
  share one topology, so the up*/down* routing, the table of equivalent
  distances and the simulator routing table are built once per batch and
  then hit the worker's process-local LRU cache (:mod:`repro.distance.cache`)
  — which stays warm *across* batches because the pool is persistent.

Determinism: :func:`execute_request` is a pure function of the request
payload.  The solo path is literally ``execute_batch([payload])``, so a
request's canonical response dict is byte-identical whether it was served
alone, coalesced into a batch, or replayed from the store.

``cold=True`` reproduces the pre-service world for the load-test bench:
the process-local caches are cleared before every request, so each one
pays full topology/routing/table construction — the "one-shot CLI run"
baseline the service exists to beat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.cache import (
    cached_routing_table,
    configure_cache,
    topology_fingerprint,
)
from repro.faults.degrade import degrade
from repro.faults.reschedule import schedule_degraded
from repro.service.protocol import (
    ScheduleRequest,
    ScheduleResponse,
    build_search,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.sweep import make_load_points, run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic

if False:  # pragma: no cover - typing only, avoids an import cycle
    from repro.service.queue import Job


# --------------------------------------------------------------------- #
# planning (event-loop side)
# --------------------------------------------------------------------- #

@dataclass
class BatchGroup:
    """Requests sharing one topology fingerprint, deduplicated.

    ``entries[i]`` is the list of jobs whose request fingerprints are
    identical; ``entries[i][0]`` is the primary whose payload is executed
    and every job in the list receives the result.
    """

    topology_fp: str
    entries: List[List["Job"]] = field(default_factory=list)

    @property
    def unique(self) -> int:
        """Distinct computations this group needs."""
        return len(self.entries)

    @property
    def total(self) -> int:
        """Jobs (including coalesced duplicates) this group serves."""
        return sum(len(e) for e in self.entries)

    def payloads(self) -> List[Dict[str, Any]]:
        """The wire payloads to execute, one per unique request."""
        return [entry[0].payload for entry in self.entries]


def plan_batches(jobs: List["Job"], *, dedup: bool = True) -> List[BatchGroup]:
    """Group a drained queue batch by topology, dedup identical requests.

    Order-preserving on first occurrence (groups appear in the order their
    first job arrived; entries likewise), so planning is deterministic for
    a given arrival order.  With ``dedup=False`` every job becomes its own
    entry — the naive baseline mode.
    """
    groups: Dict[str, BatchGroup] = {}
    index: Dict[str, List["Job"]] = {}
    for job in jobs:
        topo_fp = topology_fingerprint(job.request.topology)
        group = groups.get(topo_fp)
        if group is None:
            group = groups[topo_fp] = BatchGroup(topology_fp=topo_fp)
        if dedup:
            entry = index.get(job.fingerprint)
            if entry is not None:
                entry.append(job)
                continue
        entry = [job]
        if dedup:
            index[job.fingerprint] = entry
        group.entries.append(entry)
    return list(groups.values())


# --------------------------------------------------------------------- #
# execution (worker side)
# --------------------------------------------------------------------- #

def execute_request(payload: Dict[str, Any], *,
                    cold: bool = False) -> Dict[str, Any]:
    """Execute one request payload; returns the canonical response dict.

    Pure: output depends only on ``payload``.  ``cold`` clears the
    process-local table caches first (bench baseline; see module docs).
    """
    if cold:
        configure_cache(clear=True)
    req = payload if isinstance(payload, ScheduleRequest) \
        else ScheduleRequest.from_dict(payload)
    fingerprint = req.fingerprint()
    if req.faults is not None and req.faults.num_faults:
        return _execute_degraded(req, fingerprint)
    scheduler = CommunicationAwareScheduler(
        req.topology, search=build_search(req.method, req.params)
    )
    result = scheduler.schedule(req.workload, seed=req.seed)
    simulation = None
    if req.simulate is not None:
        simulation = _run_simulation(scheduler, result, req)
    return ScheduleResponse(
        fingerprint=fingerprint,
        topology_name=req.topology.name,
        method=req.method,
        seed=req.seed,
        partition=result.partition,
        f_g=result.f_g,
        d_g=result.d_g,
        c_c=result.c_c,
        simulation=simulation,
    ).to_dict()


def execute_batch(payloads: List[Dict[str, Any]],
                  cold: bool = False) -> List[Dict[str, Any]]:
    """Execute a planned batch (requests sharing a topology), in order.

    The first request warms the process-local distance/routing caches;
    the rest of the batch reuses them.  Top-level and picklable — this is
    the function the service submits to its persistent worker pool.
    """
    return [execute_request(p, cold=cold) for p in payloads]


def _execute_degraded(req: ScheduleRequest,
                      fingerprint: str) -> Dict[str, Any]:
    """Serve a request whose topology arrived with failed links/switches.

    Reuses the fault subsystem's graceful degraded-mode scheduling: the
    response reports per-component placements (and which clusters no
    longer fit) instead of an error.  ``seconds`` is wall time and is
    deliberately dropped from the payload (determinism contract).
    """
    net = degrade(req.topology, req.faults)
    sched = schedule_degraded(net, req.workload, seed=req.seed)
    degraded = {
        "scenario": req.faults.label,
        "connected": sched.connected,
        "components": [
            {"switches": list(comp.switches),
             "hosts": comp.host_capacity}
            for comp in net.components
        ],
        "placements": [
            {
                "cluster": p.cluster_index,
                "name": p.cluster_name,
                "component": p.component_index,
                "switches": list(p.switches),
            }
            for p in sched.placements
        ],
        "component_c_c": {str(k): v for k, v in sched.component_c_c.items()},
        "unplaced": [p.cluster_name for p in sched.unplaced],
    }
    return ScheduleResponse(
        fingerprint=fingerprint,
        topology_name=req.topology.name,
        method=req.method,
        seed=req.seed,
        degraded=degraded,
    ).to_dict()


def _run_simulation(scheduler: CommunicationAwareScheduler, result,
                    req: ScheduleRequest) -> List[Dict[str, float]]:
    """The optional simulated-latency addendum (runs in the worker).

    ``workers=1``: this already executes on the service's pool; a nested
    pool per request would multiply processes, not throughput.
    """
    spec = req.simulate
    table = cached_routing_table(scheduler.routing)
    config = SimulationConfig(
        warmup_cycles=spec.warmup,
        measure_cycles=spec.measure,
        seed=req.seed,
        engine=spec.engine,
    )
    rates = make_load_points(spec.max_rate, n=spec.points)
    points = run_load_sweep(table, IntraClusterTraffic(result.mapping),
                            rates, config, workers=1)
    return [
        {
            "rate": point.rate,
            "accepted": point.result.accepted_flits_per_switch_cycle,
            "avg_latency": point.result.avg_latency,
        }
        for point in points
    ]


__all__ = [
    "BatchGroup",
    "plan_batches",
    "execute_request",
    "execute_batch",
]
