"""Write-ahead journal of accepted-but-unreplied service requests.

The daemon's durability gap before this module: a request could be
*accepted* (admission passed, the client got no error) and then lost —
daemon killed with the job still queued or in flight — with no record
that it ever existed.  :class:`WriteAheadLog` closes the gap with the
classic WAL discipline:

- **accept record before the reply path commits** — when a submit is
  admitted, ``{"op": "accept", "fp": ..., "payload": ...}`` is appended
  and *fsynced* before the request enters the queue; the daemon replies
  only to requests the log would survive;
- **done record after the reply** — once a response (or typed error) has
  been computed and the stored result is durable in-process, ``{"op":
  "done", "fp": ...}`` marks the entry settled.  Done records are
  flushed but not fsynced: losing one is safe — replay re-executes a
  request that already completed, and the deterministic execution
  contract (:mod:`repro.service.batch`) makes the replayed reply
  byte-identical;
- **replay on restart** — :meth:`WriteAheadLog.pending` returns every
  accepted-without-done payload in acceptance order; the restarted
  daemon re-submits them through its normal queue path, so replayed work
  obeys the same batching/dedup/store rules as live work;
- **torn-tail tolerance** — a record half-written at the kill instant
  parses as garbage and is dropped (with everything after it), exactly
  like :class:`repro.checkpoint.SweepCheckpoint`;
- **crash-safe compaction** — opening the log rewrites it with settled
  entries removed via :func:`repro.checkpoint.atomic_write_text`
  (temp + ``os.replace`` + directory fsync), so the file stays bounded
  by the in-flight window rather than growing with request count.

Appends are serialised through a single-thread executor so the daemon's
event loop never blocks on ``fsync``: :meth:`append_accept` returns a
future the server awaits before replying, and because one thread does
all writes, records land in submission order regardless of awaiter
interleaving.
"""

from __future__ import annotations

import json
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.checkpoint import atomic_write_text, fsync_dir
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

PathLike = Union[str, Path]

_MAGIC = "repro-service-wal"
_VERSION = 1


class WalError(RuntimeError):
    """The file is not a repro service WAL (or is from a newer version)."""


def _parse_line(raw: str) -> Optional[Dict[str, Any]]:
    """One JSONL record, or ``None`` for garbage (torn tail)."""
    try:
        obj = json.loads(raw)
    except (json.JSONDecodeError, ValueError):
        return None
    return obj if isinstance(obj, dict) else None


class WriteAheadLog:
    """Durable journal of accepted requests, keyed by content fingerprint.

    Open it, call :meth:`pending` to recover orphans from a previous
    incarnation, then :meth:`append_accept` / :meth:`append_done` as
    requests flow.  Thread-safe: appends funnel through one writer
    thread; bookkeeping is mutex-guarded.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._writer: Optional[ThreadPoolExecutor] = None
        self._fh = None
        self._closed = False
        # fp -> (sequence, payload, priority) for accepted-without-done.
        self._pending: Dict[str, Tuple[int, Dict[str, Any], int]] = {}
        self._seq = 0
        self._recovered = self._load_and_compact()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    def _load_and_compact(self) -> int:
        """Read the log, keep unsettled entries, rewrite compacted."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            return 0
        lines = self.path.read_text().split("\n")
        header = _parse_line(lines[0])
        if header is None or header.get("magic") != _MAGIC:
            raise WalError(f"{self.path} is not a repro service WAL")
        if header.get("version", 0) > _VERSION:
            raise WalError(
                f"{self.path}: WAL version {header.get('version')} is newer "
                f"than supported ({_VERSION})"
            )
        torn = False
        settled = 0
        for raw in lines[1:]:
            if not raw:
                continue
            record = _parse_line(raw)
            if record is None:
                # Torn tail from a mid-write kill: the accept it belonged
                # to never made it to a client reply either — drop it.
                torn = True
                break
            op = record.get("op")
            fp = record.get("fp")
            if op == "accept" and isinstance(fp, str):
                self._seq += 1
                self._pending[fp] = (
                    self._seq,
                    record.get("payload") or {},
                    int(record.get("priority", 0)),
                )
            elif op == "done" and isinstance(fp, str):
                if self._pending.pop(fp, None) is not None:
                    settled += 1
        self._compact()
        _trace.event("service.wal.recovered", path=str(self.path),
                     pending=len(self._pending), settled=settled,
                     truncated_tail=torn)
        return len(self._pending)

    def _compact(self) -> None:
        """Rewrite the log with only unsettled accepts (crash-safe)."""
        lines = [json.dumps({"magic": _MAGIC, "version": _VERSION}) + "\n"]
        for fp, (_, payload, priority) in sorted(
                self._pending.items(), key=lambda kv: kv[1][0]):
            lines.append(json.dumps(
                {"op": "accept", "fp": fp, "payload": payload,
                 "priority": priority},
                sort_keys=True) + "\n")
        atomic_write_text(self.path, "".join(lines))

    def pending(self) -> List[Dict[str, Any]]:
        """Unsettled requests in acceptance order, for replay.

        Each item is ``{"fp": ..., "payload": ..., "priority": ...}``;
        the payload is the original submit request dict, replayable
        through the normal queue path.
        """
        with self._lock:
            items = sorted(self._pending.items(), key=lambda kv: kv[1][0])
        return [
            {"fp": fp, "payload": dict(payload), "priority": priority}
            for fp, (_, payload, priority) in items
        ]

    @property
    def recovered(self) -> int:
        """How many unsettled requests the opening recovery found."""
        return self._recovered

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #

    def append_accept(self, fp: str, payload: Dict[str, Any],
                      priority: int = 0) -> "Future[None]":
        """Journal an accepted request; resolve once it is fsync-durable.

        The server awaits the returned future *before* queueing the job
        and replying, so every request a client believes accepted is on
        disk.  Duplicate fingerprints overwrite bookkeeping (dedup makes
        them the same request) but still append — replay folds them.
        """
        with self._lock:
            if self._closed:
                raise WalError(f"{self.path}: WAL is closed")
            self._seq += 1
            self._pending[fp] = (self._seq, dict(payload), int(priority))
        line = json.dumps(
            {"op": "accept", "fp": fp, "payload": payload,
             "priority": int(priority)},
            sort_keys=True) + "\n"
        _metrics.inc("service.wal.accepts")
        return self._submit(line, fsync=True)

    def append_done(self, fp: str) -> "Future[None]":
        """Mark a request settled (replied).  Flushed, not fsynced.

        Losing a done record costs only a redundant (and deterministic)
        replay, so this skips the fsync to keep the reply path cheap.
        """
        with self._lock:
            if self._closed:
                return _done_future()
            self._pending.pop(fp, None)
        line = json.dumps({"op": "done", "fp": fp}, sort_keys=True) + "\n"
        _metrics.inc("service.wal.dones")
        return self._submit(line, fsync=False)

    def _submit(self, line: str, *, fsync: bool) -> "Future[None]":
        with self._lock:
            if self._closed:
                return _done_future()
            if self._writer is None:
                self._writer = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-wal")
            return self._writer.submit(self._write, line, fsync)

    def _write(self, line: str, fsync: bool) -> None:
        """Runs on the single writer thread — appends stay ordered."""
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a")
            if fresh:
                self._fh.write(json.dumps(
                    {"magic": _MAGIC, "version": _VERSION}) + "\n")
        self._fh.write(line)
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drain queued appends, fsync and close (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            writer, self._writer = self._writer, None
        if writer is not None:
            writer.shutdown(wait=True)
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            fsync_dir(self.path.parent)
        self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot (path, unsettled count, recovered)."""
        with self._lock:
            return {
                "path": str(self.path),
                "pending": len(self._pending),
                "recovered": self._recovered,
            }

    def __repr__(self) -> str:
        return (f"WriteAheadLog(path={str(self.path)!r}, "
                f"pending={len(self)})")


def _done_future() -> "Future[None]":
    """An already-resolved future (appends after close are no-ops)."""
    fut: "Future[None]" = Future()
    fut.set_result(None)
    return fut


__all__ = ["WalError", "WriteAheadLog"]
