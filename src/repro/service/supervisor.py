"""Supervision of the service's worker pool: restarts, deadlines, breaker.

The daemon's worker path used to be optimistic: submit a batch to the
persistent :class:`~repro.parallel.WorkerPool` and await the future.  A
crashed worker broke every waiter, a hung worker wedged the dispatcher
slot forever, and a crash-looping pool burned CPU while clients timed
out.  :class:`PoolSupervisor` wraps the pool with the four disciplines a
self-healing service needs:

- **restart + re-dispatch** — a batch whose worker dies mid-run
  (``BrokenProcessPool``) gets the damaged workers reaped, the pool
  restarted and the *orphaned batch re-dispatched* on the fresh workers,
  with capped full-jitter backoff between attempts
  (:func:`repro.parallel.backoff_delay`) so concurrent batches do not
  stampede a recovering pool;
- **deadlines** — every attempt is bounded by a wall-clock deadline; a
  hung worker trips :class:`DeadlineExceededError` (typed, mapped to an
  error reply) and the pool is restarted so the hung process is reaped
  instead of pinning a worker slot;
- **circuit breaker** — consecutive worker-path failures flip
  :class:`CircuitBreaker` open; while open the daemon *rejects* new work
  with a ``retry_after`` hint (degraded mode) instead of queueing doomed
  batches, then re-probes after a cooldown (half-open) and closes again
  on the first success;
- **heartbeat** — an *idle* pool is probed every ``heartbeat_interval``
  seconds with a trivial round-trip job; a missed heartbeat restarts the
  pool before real work arrives.  A busy pool is never probed: in-flight
  batches are their own health signal (they either complete or trip their
  deadline), and a probe queued behind a long batch would false-positive.

Everything is observable: ``service.supervisor.{restarts,redispatches,
deadline_trips,heartbeats,heartbeat_misses}`` counters plus
``service.supervisor.*`` trace events (no-ops when telemetry is off).

The sandbox thread-fallback contract of the pre-supervisor server is
preserved: when the platform cannot create a process pool at all, work
transparently runs on a thread (same results by purity of the executed
function; a *hung* thread job still trips the deadline but cannot be
reaped — documented, and only reachable where ``fork`` is forbidden).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from concurrent.futures.process import BrokenProcessPool

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.parallel import WorkerPool, backoff_delay


class SupervisorError(Exception):
    """Base of the supervisor's typed failures (all map to error replies).

    Every subclass carries a stable ``code`` — the error envelope's
    ``error.code`` — so clients can implement policy without string
    matching.
    """

    code = "failed"


class DeadlineExceededError(SupervisorError, TimeoutError):
    """The batch exceeded its wall-clock deadline (worker hang/slowdown)."""

    code = "deadline"


class WorkerCrashError(SupervisorError, RuntimeError):
    """Workers kept dying across the re-dispatch budget."""

    code = "crashed"


class CircuitOpenError(SupervisorError, RuntimeError):
    """The worker path is degraded; retry after ``retry_after`` seconds."""

    code = "degraded"

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one :class:`CircuitBreaker`.

    ``failure_threshold`` consecutive worker-path failures open the
    breaker; after ``reset_timeout`` seconds it goes half-open and lets
    traffic probe the pool — one success closes it, one failure re-opens.
    """

    failure_threshold: int = 5
    reset_timeout: float = 2.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {self.reset_timeout}"
            )


class CircuitBreaker:
    """Closed → open → half-open state machine over consecutive failures.

    Thread-compatible by construction: all mutation happens on the
    daemon's event loop.  The ``clock`` is injectable so tests step time
    instead of sleeping.
    """

    def __init__(self, config: Optional[BreakerConfig] = None, *,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` right now."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.config.reset_timeout:
            return "half_open"
        return "open"

    @property
    def trips(self) -> int:
        """How many times the breaker has flipped open."""
        return self._trips

    def reject_after(self) -> Optional[float]:
        """Seconds to wait before retrying, or ``None`` when admitting.

        Non-consuming: the admission path calls this to decide whether to
        reject with ``retry_after``; half-open traffic is admitted so the
        pool gets its probe.
        """
        if self.state != "open":
            return None
        elapsed = self._clock() - self._opened_at
        return max(0.05, self.config.reset_timeout - elapsed)

    def record_success(self) -> None:
        """A worker-path success: close the breaker, reset the count."""
        if self._opened_at is not None:
            _trace.event("service.supervisor.breaker_closed")
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """A worker-path failure: count it; trip open at the threshold.

        A failure while half-open re-opens immediately (the probe failed).
        """
        self._failures += 1
        was_open = self._opened_at is not None
        if was_open or self._failures >= self.config.failure_threshold:
            if not was_open:
                self._trips += 1
                _metrics.inc("service.supervisor.breaker_trips")
                _trace.event("service.supervisor.breaker_opened",
                             failures=self._failures)
            self._opened_at = self._clock()

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot (state, consecutive failures, trips)."""
        return {
            "state": self.state,
            "consecutive_failures": self._failures,
            "trips": self._trips,
        }


def _heartbeat_probe(token: int) -> int:
    """The trivial round-trip job the heartbeat submits (picklable)."""
    return token


class PoolSupervisor:
    """Run pool jobs under restart/re-dispatch, deadline and breaker rules.

    Owns the resilience policy, not the pool itself: the caller creates
    (and finally closes) the :class:`~repro.parallel.WorkerPool`; the
    supervisor restarts it when workers crash, hang or miss heartbeats.

    ``run(fn, *args)`` is the whole API for callers: it resolves to the
    job's result or raises one of the typed :class:`SupervisorError`
    subclasses — never a raw ``BrokenProcessPool`` and never a hang.
    """

    def __init__(self, pool: WorkerPool, *,
                 deadline: Optional[float] = None,
                 max_redispatch: int = 2,
                 breaker: Optional[CircuitBreaker] = None,
                 heartbeat_interval: Optional[float] = None,
                 heartbeat_timeout: float = 10.0,
                 backoff_cap: float = 0.5,
                 rng: Optional[random.Random] = None):
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        if max_redispatch < 0:
            raise ValueError(
                f"max_redispatch must be >= 0, got {max_redispatch}"
            )
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        self.pool = pool
        self.deadline = deadline
        self.max_redispatch = max_redispatch
        self.breaker = breaker or CircuitBreaker()
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._backoff_cap = backoff_cap
        self._rng = rng or random.Random()
        self._use_threads = False
        self._inflight = 0
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._heartbeat_seq = 0
        self._counters: Dict[str, int] = {
            "restarts": 0, "redispatches": 0, "deadline_trips": 0,
            "heartbeats": 0, "heartbeat_misses": 0,
        }

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    async def start(self) -> None:
        """Start the heartbeat task (no-op without an interval)."""
        if self.heartbeat_interval is not None \
                and self._heartbeat_task is None:
            self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())

    async def stop(self) -> None:
        """Cancel the heartbeat task (the pool is the caller's to close)."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except (asyncio.CancelledError, Exception):
                pass
            self._heartbeat_task = None

    # -------------------------------------------------------------- #
    # supervised execution
    # -------------------------------------------------------------- #

    async def run(self, fn: Callable, /, *args) -> Any:
        """Execute ``fn(*args)`` on the pool under the supervision rules.

        Raises :class:`CircuitOpenError` when the breaker is open,
        :class:`DeadlineExceededError` on a hung/slow attempt (the pool is
        restarted so the hung worker is reaped), and
        :class:`WorkerCrashError` once the re-dispatch budget is spent on
        a crash-looping pool.  Any other exception is the job's own and
        propagates unchanged (the pool stays healthy).
        """
        retry_after = self.breaker.reject_after()
        if retry_after is not None:
            raise CircuitOpenError(
                "the worker path is degraded (circuit open); retry later",
                retry_after=retry_after,
            )
        attempt = 0
        self._inflight += 1
        try:
            while True:
                try:
                    result = await self._attempt(fn, args, self.deadline)
                except asyncio.TimeoutError:
                    self._counters["deadline_trips"] += 1
                    _metrics.inc("service.supervisor.deadline_trips")
                    _trace.event("service.supervisor.deadline",
                                 deadline_seconds=self.deadline)
                    await self._restart("deadline")
                    self.breaker.record_failure()
                    raise DeadlineExceededError(
                        f"batch exceeded its {self.deadline}s deadline; "
                        "the worker was restarted"
                    ) from None
                except BrokenProcessPool as exc:
                    await self._restart("crash")
                    self.breaker.record_failure()
                    if attempt >= self.max_redispatch:
                        raise WorkerCrashError(
                            f"workers died {attempt + 1} times running this "
                            "batch; giving up"
                        ) from exc
                    attempt += 1
                    self._counters["redispatches"] += 1
                    _metrics.inc("service.supervisor.redispatches")
                    _trace.event("service.supervisor.redispatch",
                                 attempt=attempt, error=repr(exc))
                    await asyncio.sleep(backoff_delay(
                        attempt, cap=self._backoff_cap, rng=self._rng))
                    continue
                else:
                    self.breaker.record_success()
                    return result
        finally:
            self._inflight -= 1

    async def _attempt(self, fn: Callable, args: tuple,
                       deadline: Optional[float]) -> Any:
        """One execution attempt: pool submit (or thread fallback) + wait."""
        loop = asyncio.get_running_loop()
        if self._use_threads:
            return await asyncio.wait_for(
                loop.run_in_executor(None, fn, *args), deadline)
        try:
            future = self.pool.submit(fn, *args)
        except BrokenProcessPool:
            raise                      # crash path: restart + re-dispatch
        except (OSError, RuntimeError) as exc:
            # The pool cannot be (re)created at all — a sandbox that
            # forbids fork will not learn to overnight.  Settle on
            # threads for good (same results by purity; no isolation).
            self._use_threads = True
            _trace.event("service.pool.thread_fallback", error=repr(exc))
            return await asyncio.wait_for(
                loop.run_in_executor(None, fn, *args), deadline)
        return await asyncio.wait_for(asyncio.wrap_future(future), deadline)

    async def _restart(self, reason: str) -> None:
        """Kill + reap the current workers off-loop; next use gets fresh."""
        self._counters["restarts"] += 1
        _metrics.inc("service.supervisor.restarts")
        _trace.event("service.supervisor.restart", reason=reason)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.restart)

    # -------------------------------------------------------------- #
    # heartbeat
    # -------------------------------------------------------------- #

    async def _heartbeat_loop(self) -> None:
        """Probe the *idle* pool every interval; restart on a miss."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            if self._inflight > 0 or self._use_threads:
                continue   # busy pools prove themselves; threads can't die
            if not self.pool.active:
                continue   # no workers to probe (nothing has run yet)
            self._heartbeat_seq += 1
            token = self._heartbeat_seq
            try:
                echoed = await self._attempt(
                    _heartbeat_probe, (token,), self.heartbeat_timeout)
                ok = echoed == token
            except asyncio.CancelledError:
                raise
            except Exception:
                ok = False
            if ok:
                self._counters["heartbeats"] += 1
                _metrics.inc("service.supervisor.heartbeats")
            else:
                self._counters["heartbeat_misses"] += 1
                _metrics.inc("service.supervisor.heartbeat_misses")
                _trace.event("service.supervisor.heartbeat_missed",
                             seq=token)
                await self._restart("heartbeat")

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    @property
    def thread_fallback(self) -> bool:
        """Whether execution settled on threads (no process pool)."""
        return self._use_threads

    @property
    def inflight(self) -> int:
        """Supervised jobs currently executing."""
        return self._inflight

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: counters, breaker state, deadline."""
        return {
            **dict(self._counters),
            "breaker": self.breaker.status(),
            "deadline_seconds": self.deadline,
            "heartbeat_interval": self.heartbeat_interval,
            "inflight": self._inflight,
            "thread_fallback": self._use_threads,
        }


__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "PoolSupervisor",
    "SupervisorError",
    "WorkerCrashError",
]
