"""Wire protocol of the scheduling service.

The service speaks newline-delimited JSON over a stream socket: each
message is one JSON object on one line, requests carry an ``"op"``
(``ping`` / ``status`` / ``submit`` / ``result`` / ``shutdown``) and every
reply carries ``"ok"``.  This module defines the value types exchanged —
:class:`ScheduleRequest`, :class:`ScheduleResponse`, :class:`ServiceStatus`
— their strict (de)serialization, the content-addressed request
fingerprint that drives deduplication and batching, and the line framing.

Determinism contract
--------------------
A :class:`ScheduleResponse` contains *only* deterministic fields: the
mapping, the quality scores, the optional degraded-mode placement and the
optional simulated load sweep.  Wall-times, queue position and how the
request was served ("solo", coalesced into a batch, replayed from the
store) travel in the reply *envelope*, never in the response payload — so
an identical request yields a byte-identical response payload no matter
which path served it.  ``tests/service/test_server.py`` locks this down.

Malformed payloads raise :class:`ProtocolError` (a ``ValueError``): every
decoder validates types, ranges and key sets instead of trusting the
peer, and the server maps the exception to an error reply rather than a
crash.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.mapping import Partition, Workload
from repro.faults.model import FaultScenario
from repro.search.annealing import SimulatedAnnealing
from repro.search.base import SearchMethod
from repro.search.genetic import GeneticAlgorithm
from repro.search.gsa import GeneticSimulatedAnnealing
from repro.search.random_search import RandomSearch
from repro.search.tabu import TabuSearch
from repro.simulation.engine import ENGINE_NAMES
from repro.topology.graph import Topology

PROTOCOL_VERSION = 1

#: Hard bound on one framed message; a peer sending more is cut off
#: before the JSON parser allocates unbounded memory.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed, oversized or semantically invalid wire payload."""


#: Every ``error.code`` the service emits.  The chaos harness classifies
#: request outcomes against this set: an error reply whose code is listed
#: here is a *typed* error (an acceptable outcome under fault injection);
#: anything else counts as an invariant violation.
ERROR_CODES = frozenset({
    "protocol",        # unparsable/oversized frame
    "bad-request",     # a frame that parsed but failed request validation
    "unknown-op",      # an op the daemon does not speak
    "unknown-ticket",  # result lookup for a fingerprint never seen
    "rejected",        # admission policy (permanent for this deployment)
    "backpressure",    # pending-work bound reached; carries retry_after
    "shed",            # evicted for higher-priority work; carries retry_after
    "degraded",        # circuit breaker open; carries retry_after
    "deadline",        # the request's execution deadline expired
    "crashed",         # workers died past the re-dispatch budget
    "failed",          # the job's own exception
})


#: Search methods a request may name.  Exhaustive/A* are deliberately
#: absent: their cost explodes with topology size, which is exactly what a
#: shared service must not let one request do (admission control caps the
#: rest).
SEARCH_METHODS: Dict[str, type] = {
    "tabu": TabuSearch,
    "annealing": SimulatedAnnealing,
    "genetic": GeneticAlgorithm,
    "gsa": GeneticSimulatedAnnealing,
    "random": RandomSearch,
}


def build_search(method: str, params: Optional[Dict[str, Any]] = None) -> SearchMethod:
    """Construct the named search method from request parameters.

    Parameters are validated against the constructor's signature (an
    unknown knob is a :class:`ProtocolError`, not a ``TypeError`` deep in
    a worker) and ``workers`` is forced to 1: requests already run on the
    service's process pool, and a nested pool per request would fork-bomb
    the host.
    """
    cls = SEARCH_METHODS.get(method)
    if cls is None:
        raise ProtocolError(
            f"unknown search method {method!r}; supported: "
            + ", ".join(sorted(SEARCH_METHODS))
        )
    kwargs = dict(params or {})
    if "workers" in kwargs:
        raise ProtocolError(
            "search parameter 'workers' is not accepted: parallelism is "
            "owned by the service's worker pool"
        )
    allowed = set(inspect.signature(cls.__init__).parameters) - {"self"}
    for key in kwargs:
        if key not in allowed:
            raise ProtocolError(
                f"search method {method!r} has no parameter {key!r}; "
                f"accepted: {', '.join(sorted(allowed - {'workers'}))}"
            )
    try:
        return cls(workers=1, **kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {method!r} parameters: {exc}") from None


# --------------------------------------------------------------------- #
# strict field readers
# --------------------------------------------------------------------- #

def _require_dict(obj: Any, what: str) -> Dict[str, Any]:
    if not isinstance(obj, dict):
        raise ProtocolError(f"{what} must be a JSON object, got "
                            f"{type(obj).__name__}")
    return obj


def _check_keys(d: Dict[str, Any], *, required: set, optional: set,
                what: str) -> None:
    keys = set(d)
    missing = required - keys
    if missing:
        raise ProtocolError(f"{what} is missing {sorted(missing)}")
    unknown = keys - required - optional
    if unknown:
        raise ProtocolError(f"{what} has unknown keys {sorted(unknown)}")


def _int_field(d: Dict[str, Any], key: str, what: str, *, default=None,
               lo: Optional[int] = None, hi: Optional[int] = None) -> Any:
    value = d.get(key, default)
    if value is default and key not in d:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{what}.{key} must be an integer, got {value!r}")
    if lo is not None and value < lo:
        raise ProtocolError(f"{what}.{key} must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise ProtocolError(f"{what}.{key} must be <= {hi}, got {value}")
    return value


def _number_field(d: Dict[str, Any], key: str, what: str, *, default=None,
                  lo: Optional[float] = None) -> Any:
    value = d.get(key, default)
    if value is default and key not in d:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{what}.{key} must be a number, got {value!r}")
    if lo is not None and not value > lo:
        raise ProtocolError(f"{what}.{key} must be > {lo}, got {value}")
    return float(value)


def _decode_via(decoder, payload: Any, what: str):
    """Run one of :mod:`repro.serialize`'s decoders, mapping failures
    (wrong tag, bad field types, inconsistent shapes) to ProtocolError."""
    _require_dict(payload, what)
    try:
        return decoder(payload)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {what}: {exc}") from None


# --------------------------------------------------------------------- #
# simulate spec
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SimulateSpec:
    """Optional request addendum: sweep the mapping through the simulator.

    Bounded on purpose — the admission policy re-checks ``points`` and
    ``measure`` so one request cannot monopolize a worker for minutes.
    """

    max_rate: float = 0.02
    points: int = 3
    warmup: int = 200
    measure: int = 600
    engine: str = "fast"

    def __post_init__(self):
        if not self.max_rate > 0:
            raise ProtocolError(f"simulate.max_rate must be > 0, "
                                f"got {self.max_rate}")
        if not 1 <= self.points <= 32:
            raise ProtocolError(f"simulate.points must be in 1..32, "
                                f"got {self.points}")
        if self.warmup < 0 or self.measure < 1:
            raise ProtocolError("simulate.warmup must be >= 0 and "
                                "simulate.measure >= 1")
        if self.engine not in ENGINE_NAMES:
            raise ProtocolError(
                f"simulate.engine must be one of {sorted(ENGINE_NAMES)}, "
                f"got {self.engine!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Encode as the plain dict embedded in a request payload."""
        return {
            "max_rate": self.max_rate,
            "points": self.points,
            "warmup": self.warmup,
            "measure": self.measure,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SimulateSpec":
        _require_dict(d, "simulate")
        _check_keys(d, required=set(),
                    optional={"max_rate", "points", "warmup", "measure",
                              "engine"},
                    what="simulate")
        engine = d.get("engine", "fast")
        if not isinstance(engine, str):
            raise ProtocolError(f"simulate.engine must be a string, "
                                f"got {engine!r}")
        return cls(
            max_rate=_number_field(d, "max_rate", "simulate", default=0.02,
                                   lo=0.0),
            points=_int_field(d, "points", "simulate", default=3, lo=1,
                              hi=32),
            warmup=_int_field(d, "warmup", "simulate", default=200, lo=0),
            measure=_int_field(d, "measure", "simulate", default=600, lo=1),
            engine=engine,
        )


# --------------------------------------------------------------------- #
# request
# --------------------------------------------------------------------- #

@dataclass
class ScheduleRequest:
    """One scheduling job: topology + workload + method + seed.

    ``priority`` orders the service queue (higher runs sooner) but does
    not influence the computed result, so it is excluded from the
    :meth:`fingerprint` — two requests differing only in priority are
    duplicates and share one computation.
    """

    topology: Topology
    workload: Workload
    method: str = "tabu"
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 1
    priority: int = 0
    faults: Optional[FaultScenario] = None
    simulate: Optional[SimulateSpec] = None

    def __post_init__(self):
        if self.method not in SEARCH_METHODS:
            raise ProtocolError(
                f"unknown search method {self.method!r}; supported: "
                + ", ".join(sorted(SEARCH_METHODS))
            )
        # Fail on unknown/forbidden knobs at admission time, not in a
        # worker process half a pipeline later.
        build_search(self.method, self.params)
        if self.faults is not None:
            self.faults.validate(self.topology)

    @classmethod
    def build(cls, topology: Topology, *, clusters: int = 4,
              method: str = "tabu", params: Optional[Dict[str, Any]] = None,
              seed: int = 1, priority: int = 0,
              faults: Optional[FaultScenario] = None,
              simulate: Optional[SimulateSpec] = None) -> "ScheduleRequest":
        """Convenience constructor for the paper's uniform workloads."""
        if clusters <= 0 or topology.num_switches % clusters != 0:
            raise ProtocolError(
                f"{clusters} clusters do not evenly divide "
                f"{topology.num_switches} switches"
            )
        per = (topology.num_switches // clusters) * topology.hosts_per_switch
        return cls(topology=topology, workload=Workload.uniform(clusters, per),
                   method=method, params=dict(params or {}), seed=seed,
                   priority=priority, faults=faults, simulate=simulate)

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a tagged JSON-ready dict (the wire form)."""
        from repro import serialize

        d: Dict[str, Any] = {
            "type": "schedule_request",
            "version": PROTOCOL_VERSION,
            "topology": serialize.topology_to_dict(self.topology),
            "workload": serialize.workload_to_dict(self.workload),
            "method": self.method,
            "params": dict(self.params),
            "seed": self.seed,
            "priority": self.priority,
        }
        if self.faults is not None:
            d["faults"] = serialize.fault_scenario_to_dict(self.faults)
        if self.simulate is not None:
            d["simulate"] = self.simulate.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Any) -> "ScheduleRequest":
        """Decode and validate a wire payload; raise ProtocolError if bad."""
        from repro import serialize

        _require_dict(d, "schedule_request")
        if d.get("type") != "schedule_request":
            raise ProtocolError(
                f"expected a 'schedule_request' payload, got {d.get('type')!r}"
            )
        version = d.get("version", 1)
        if not isinstance(version, int) or version > PROTOCOL_VERSION:
            raise ProtocolError(
                f"request version {version!r} is newer than supported "
                f"({PROTOCOL_VERSION})"
            )
        _check_keys(
            d,
            required={"type", "topology", "workload"},
            optional={"version", "method", "params", "seed", "priority",
                      "faults", "simulate"},
            what="schedule_request",
        )
        method = d.get("method", "tabu")
        if not isinstance(method, str):
            raise ProtocolError(f"schedule_request.method must be a string, "
                                f"got {method!r}")
        params = d.get("params", {})
        _require_dict(params, "schedule_request.params")
        topology = _decode_via(serialize.topology_from_dict, d["topology"],
                               "schedule_request.topology")
        workload = _decode_via(serialize.workload_from_dict, d["workload"],
                               "schedule_request.workload")
        faults = None
        if d.get("faults") is not None:
            faults = _decode_via(serialize.fault_scenario_from_dict,
                                 d["faults"], "schedule_request.faults")
        simulate = None
        if d.get("simulate") is not None:
            simulate = SimulateSpec.from_dict(d["simulate"])
        try:
            return cls(
                topology=topology,
                workload=workload,
                method=method,
                params=dict(params),
                seed=_int_field(d, "seed", "schedule_request", default=1),
                priority=_int_field(d, "priority", "schedule_request",
                                    default=0, lo=-1_000_000, hi=1_000_000),
                faults=faults,
                simulate=simulate,
            )
        except ProtocolError:
            raise
        except ValueError as exc:
            raise ProtocolError(f"invalid schedule_request: {exc}") from None

    # ------------------------------------------------------------------ #

    def fingerprint(self) -> str:
        """Content hash of everything that determines the response.

        Canonical JSON (sorted keys, compact separators) of the wire form
        minus ``priority`` — the key of the result store, the in-flight
        dedup table and the async-submit ticket.
        """
        d = self.to_dict()
        d.pop("priority", None)
        blob = json.dumps(d, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- #
# response
# --------------------------------------------------------------------- #

@dataclass
class ScheduleResponse:
    """The deterministic result of one :class:`ScheduleRequest`.

    Exactly one of two shapes:

    - healthy topology — ``partition`` plus the ``f_g``/``d_g``/``c_c``
      scores (and ``simulation`` when requested);
    - faulted topology — ``degraded`` carries the per-component placement
      summary from :func:`repro.faults.schedule_degraded` and the score
      fields are ``None``.

    No timing or serving metadata lives here (see the module docstring's
    determinism contract).
    """

    fingerprint: str
    topology_name: str
    method: str
    seed: int
    partition: Optional[Partition] = None
    f_g: Optional[float] = None
    d_g: Optional[float] = None
    c_c: Optional[float] = None
    degraded: Optional[Dict[str, Any]] = None
    simulation: Optional[List[Dict[str, float]]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a tagged JSON-ready dict — the *canonical payload*.

        Byte-for-byte identical for identical requests regardless of the
        serving path; the store persists exactly this dict.
        """
        from repro import serialize

        d: Dict[str, Any] = {
            "type": "schedule_response",
            "version": PROTOCOL_VERSION,
            "fingerprint": self.fingerprint,
            "topology_name": self.topology_name,
            "method": self.method,
            "seed": self.seed,
            "partition": (serialize.partition_to_dict(self.partition)
                          if self.partition is not None else None),
            "f_g": self.f_g,
            "d_g": self.d_g,
            "c_c": self.c_c,
            "degraded": self.degraded,
            "simulation": self.simulation,
        }
        return d

    @classmethod
    def from_dict(cls, d: Any) -> "ScheduleResponse":
        from repro import serialize

        _require_dict(d, "schedule_response")
        if d.get("type") != "schedule_response":
            raise ProtocolError(
                f"expected a 'schedule_response' payload, got {d.get('type')!r}"
            )
        version = d.get("version", 1)
        if not isinstance(version, int) or version > PROTOCOL_VERSION:
            raise ProtocolError(
                f"response version {version!r} is newer than supported "
                f"({PROTOCOL_VERSION})"
            )
        _check_keys(
            d,
            required={"type", "fingerprint", "topology_name", "method",
                      "seed"},
            optional={"version", "partition", "f_g", "d_g", "c_c",
                      "degraded", "simulation"},
            what="schedule_response",
        )
        fingerprint = d["fingerprint"]
        if not isinstance(fingerprint, str) or len(fingerprint) != 64:
            raise ProtocolError(
                f"schedule_response.fingerprint must be a sha256 hex digest, "
                f"got {fingerprint!r}"
            )
        partition = None
        if d.get("partition") is not None:
            partition = _decode_via(serialize.partition_from_dict,
                                    d["partition"],
                                    "schedule_response.partition")
        for key in ("f_g", "d_g", "c_c"):
            value = d.get(key)
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, (int, float))):
                raise ProtocolError(f"schedule_response.{key} must be a "
                                    f"number or null, got {value!r}")
        degraded = d.get("degraded")
        if degraded is not None:
            _require_dict(degraded, "schedule_response.degraded")
        simulation = d.get("simulation")
        if simulation is not None:
            if not isinstance(simulation, list):
                raise ProtocolError("schedule_response.simulation must be "
                                    "a list")
            for row in simulation:
                _require_dict(row, "schedule_response.simulation[*]")
        return cls(
            fingerprint=fingerprint,
            topology_name=str(d["topology_name"]),
            method=str(d["method"]),
            seed=_int_field(d, "seed", "schedule_response", default=1),
            partition=partition,
            f_g=d.get("f_g"),
            d_g=d.get("d_g"),
            c_c=d.get("c_c"),
            degraded=degraded,
            simulation=simulation,
        )


# --------------------------------------------------------------------- #
# status snapshot
# --------------------------------------------------------------------- #

@dataclass
class ServiceStatus:
    """A point-in-time snapshot of a running service (the ``status`` op)."""

    version: str
    uptime_seconds: float
    requests_total: int
    served: Dict[str, int]        # computed / store / inflight
    rejected: Dict[str, int]      # backpressure / admission / protocol / failed
    queue_depth: int
    queue_capacity: int
    inflight: int
    store: Dict[str, int]         # size / hits / misses / evictions / expirations
    pool: Dict[str, Any]          # workers / active
    batches: Dict[str, Any]       # count / requests / mean_size / max_size
    supervisor: Optional[Dict[str, Any]] = None  # restarts / breaker / ...
    wal: Optional[Dict[str, Any]] = None         # path / pending / recovered
    console: Optional[Dict[str, Any]] = None     # host / port / requests

    def to_dict(self) -> Dict[str, Any]:
        """Encode as a tagged JSON-ready dict (the ``status`` reply body).

        The self-healing fields (``supervisor``, ``wal``) are emitted only
        when present, so snapshots from daemons predating them — and WAL
        fields from daemons running without a journal — round-trip
        unchanged.
        """
        d = {
            "type": "service_status",
            "version": PROTOCOL_VERSION,
            "package_version": self.version,
            "uptime_seconds": self.uptime_seconds,
            "requests_total": self.requests_total,
            "served": dict(self.served),
            "rejected": dict(self.rejected),
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "inflight": self.inflight,
            "store": dict(self.store),
            "pool": dict(self.pool),
            "batches": dict(self.batches),
        }
        if self.supervisor is not None:
            d["supervisor"] = dict(self.supervisor)
        if self.wal is not None:
            d["wal"] = dict(self.wal)
        if self.console is not None:
            d["console"] = dict(self.console)
        return d

    @classmethod
    def from_dict(cls, d: Any) -> "ServiceStatus":
        _require_dict(d, "service_status")
        if d.get("type") != "service_status":
            raise ProtocolError(
                f"expected a 'service_status' payload, got {d.get('type')!r}"
            )
        required = {"type", "package_version", "uptime_seconds",
                    "requests_total", "served", "rejected", "queue_depth",
                    "queue_capacity", "inflight", "store", "pool", "batches"}
        _check_keys(d, required=required,
                    optional={"version", "supervisor", "wal", "console"},
                    what="service_status")
        for key in ("served", "rejected", "store", "pool", "batches"):
            _require_dict(d[key], f"service_status.{key}")
        for key in ("supervisor", "wal", "console"):
            if d.get(key) is not None:
                _require_dict(d[key], f"service_status.{key}")
        return cls(
            version=str(d["package_version"]),
            uptime_seconds=float(d["uptime_seconds"]),
            requests_total=int(d["requests_total"]),
            served={str(k): int(v) for k, v in d["served"].items()},
            rejected={str(k): int(v) for k, v in d["rejected"].items()},
            queue_depth=int(d["queue_depth"]),
            queue_capacity=int(d["queue_capacity"]),
            inflight=int(d["inflight"]),
            store=dict(d["store"]),
            pool=dict(d["pool"]),
            batches=dict(d["batches"]),
            supervisor=(dict(d["supervisor"])
                        if d.get("supervisor") is not None else None),
            wal=dict(d["wal"]) if d.get("wal") is not None else None,
            console=(dict(d["console"])
                     if d.get("console") is not None else None),
        )


# --------------------------------------------------------------------- #
# line framing
# --------------------------------------------------------------------- #

def encode_line(obj: Dict[str, Any]) -> bytes:
    """Frame one message: compact JSON + newline."""
    blob = json.dumps(obj, separators=(",", ":")) + "\n"
    data = blob.encode()
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "frame limit"
        )
    return data


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Parse one framed message; raise :class:`ProtocolError` on garbage."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(raw)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "frame limit"
        )
    try:
        obj = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"not a JSON message: {exc}") from None
    return _require_dict(obj, "message")


def error_envelope(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    """An error reply: ``{"ok": false, "error": {"code", "message", ...}}``."""
    return {"ok": False, "error": {"code": code, "message": message, **extra}}


def ok_envelope(**fields: Any) -> Dict[str, Any]:
    """A success reply: ``{"ok": true, ...fields}``."""
    return {"ok": True, **fields}


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "SEARCH_METHODS",
    "build_search",
    "SimulateSpec",
    "ScheduleRequest",
    "ScheduleResponse",
    "ServiceStatus",
    "encode_line",
    "decode_line",
    "error_envelope",
    "ok_envelope",
]
