"""The resident scheduling daemon: asyncio front-end over a worker pool.

Request lifecycle::

    client ──line-JSON──▶ connection handler
        │ store hit?  ──────────────▶ reply (served from "store")
        │ identical request in flight? ─▶ await its future ("inflight")
        │ admission check ──────────▶ reject ("rejected")
        │ queue.put_nowait ─────────▶ reject ("backpressure") when full
        ▼
    micro-batcher (drains the priority queue in windows, groups by
    topology fingerprint, folds duplicates)
        ▼
    persistent WorkerPool ── execute_batch ──▶ canonical response dicts
        ▼
    result store (TTL) + every waiter's future resolved

The whole pipeline is instrumented through :mod:`repro.obs`
(``service.queue.depth`` gauge, ``service.batch.size`` histogram,
``service.request`` spans) and keeps answering for faulted topologies via
degraded-mode scheduling (see :mod:`repro.service.batch`).

Determinism: the computed payload for a request is byte-identical whether
it is served solo, coalesced into a batch, or replayed from the store —
the serving path only shows up in the reply envelope's ``served`` field.

Sandbox resilience: when the platform cannot run a process pool at all
(``fork`` forbidden), execution transparently falls back to a thread —
same results by purity of :func:`execute_batch`, just no process
isolation.

Self-healing (PR 7): the worker path runs under a
:class:`~repro.service.supervisor.PoolSupervisor` — per-batch deadlines,
automatic restart and re-dispatch after worker crashes, an idle-pool
heartbeat, and a circuit breaker that flips the daemon into degraded
mode (typed ``degraded`` rejects with ``retry_after``) when the pool
crash-loops.  With ``wal_path`` set, every accepted request is journaled
fsync-durably *before* it is queued (:mod:`repro.service.wal`) and
replayed through the normal queue path on restart, so a daemon kill
never silently loses accepted work.  The invariant the chaos harness
(:mod:`repro.chaos`) enforces: every accepted request terminates with a
byte-identical correct reply or an explicit typed error — never a hang,
never silent loss.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.parallel import WorkerPool, WorkersLike
from repro.service.batch import BatchGroup, execute_batch, plan_batches
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    ScheduleRequest,
    ServiceStatus,
    decode_line,
    encode_line,
    error_envelope,
    ok_envelope,
)
from repro.service.queue import (
    AdmissionError,
    AdmissionPolicy,
    BackpressureError,
    Job,
    JobQueue,
    ShedError,
)
from repro.service.store import ResultStore
from repro.service.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    PoolSupervisor,
)
from repro.service.wal import WriteAheadLog

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7421


class ServiceStartupError(RuntimeError):
    """The daemon failed to come up (bind failure, startup hang, …)."""


def _default_executor(seq: int, payloads: List[Dict[str, Any]],
                      cold: bool) -> List[Dict[str, Any]]:
    """The production batch executor: :func:`execute_batch`, seq ignored.

    The ``seq`` argument is the daemon's monotonically increasing batch
    sequence number; the default executor ignores it, the chaos harness's
    :class:`~repro.chaos.inject.ChaoticExecutor` keys its deterministic
    fault plan on it.  Must stay a top-level function — it crosses the
    process-pool pickle boundary.
    """
    return execute_batch(payloads, cold)


def _swallow_future_exception(future: "asyncio.Future") -> None:
    """Done-callback that consumes a future's exception (replay path)."""
    if not future.cancelled():
        future.exception()


@dataclass
class ServiceConfig:
    """Tunables of one service instance.

    ``batching=False`` dispatches one request per pool job and
    ``dedup=False`` disables both the store and in-flight coalescing;
    together with ``cold=True`` (clear worker caches per request) they
    form the naive one-request-one-run baseline the load bench compares
    against.
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT          # 0 = ephemeral (tests/bench)
    workers: WorkersLike = None       # None → $REPRO_WORKERS or 1
    max_pending: int = 64
    max_batch: int = 16
    batch_window: float = 0.02        # seconds the batcher waits to fill
    store_ttl: Optional[float] = 300.0
    store_size: int = 1024
    max_inflight_batches: Optional[int] = None   # None → 2 × workers
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    batching: bool = True
    dedup: bool = True
    cold: bool = False                # bench baseline: per-request cache clear
    # --- self-healing knobs (PR 7) ---------------------------------- #
    request_deadline: Optional[float] = None   # s per batch attempt; None=off
    max_redispatch: int = 2           # crash re-dispatch budget per batch
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    heartbeat_interval: Optional[float] = None  # s between idle probes
    heartbeat_timeout: float = 10.0
    shed: bool = True                 # priority-aware eviction when full
    wal_path: Optional[Union[str, Path]] = None  # accepted-request journal
    # --- operator console (PR 9) ------------------------------------ #
    console_port: Optional[int] = None  # HTTP console; None=off, 0=ephemeral
    executor: Callable[[int, List[Dict[str, Any]], bool],
                       List[Dict[str, Any]]] = _default_executor


class SchedulerService:
    """The daemon: queue + batcher + persistent pool + store, one loop."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.store = ResultStore(ttl=self.config.store_ttl,
                                 max_entries=self.config.store_size)
        self.pool = WorkerPool(self.config.workers)
        self.queue: Optional[JobQueue] = None       # built on the loop
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._group_tasks: set = set()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._stop_event: Optional[asyncio.Event] = None
        self._started_at = 0.0
        self.supervisor = PoolSupervisor(
            self.pool,
            deadline=self.config.request_deadline,
            max_redispatch=self.config.max_redispatch,
            breaker=CircuitBreaker(self.config.breaker),
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_timeout=self.config.heartbeat_timeout,
        )
        self.wal: Optional[WriteAheadLog] = None     # opened on start()
        self.console = None                          # ConsoleServer on start()
        self._batch_seq = 0
        self._counters: Dict[str, int] = {
            "requests": 0,
            "served_computed": 0, "served_store": 0, "served_inflight": 0,
            "rejected_backpressure": 0, "rejected_admission": 0,
            "rejected_protocol": 0, "failed": 0,
            "rejected_shed": 0, "rejected_degraded": 0, "deadline": 0,
            "replayed": 0,
            "batches": 0, "batched_requests": 0, "max_batch": 0,
        }

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    async def start(self) -> Tuple[str, int]:
        """Bind the socket, start the dispatcher; returns (host, port)."""
        self.queue = JobQueue(self.config.max_pending)
        self._stop_event = asyncio.Event()
        # Bound the batches handed to the pool at once: when every slot is
        # taken the dispatcher stops popping, the queue fills, and clients
        # see backpressure — instead of unbounded fan-out hiding overload
        # inside the executor's own queue.
        slots = self.config.max_inflight_batches
        if slots is None:
            slots = max(2, 2 * self.pool.workers)
        self._group_sem = asyncio.Semaphore(max(1, slots))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._started_at = time.monotonic()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        await self.supervisor.start()
        if self.config.wal_path is not None:
            self.wal = WriteAheadLog(self.config.wal_path)
            await self._replay_wal()
        if self.config.console_port is not None:
            # Imported here: the reporting layer is optional at runtime
            # and the service must not pull it in when the console is off.
            from repro.reporting.console import ConsoleServer
            from repro.reporting.html import render_status_page

            self.console = ConsoleServer(
                metrics=self._console_metrics,
                status=lambda: self.status().to_dict(),
                report=lambda: render_status_page(self.status().to_dict()),
            )
            chost, cport = await self.console.start(
                self.config.host, self.config.console_port)
            _trace.event("service.console.started", host=chost, port=cport)
        _trace.event("service.started", host=self.address[0],
                     port=self.address[1], workers=self.pool.workers)
        return self.address

    async def _replay_wal(self) -> None:
        """Re-queue every accepted-but-unreplied request from the journal.

        Replayed jobs flow through the normal queue path with internal
        futures: results land in the store (and settle the journal) just
        like live traffic, so a client re-asking for a fingerprint its
        killed daemon had accepted gets the byte-identical reply from
        the store.  Requires ``dedup`` (the store *is* the redelivery
        channel); replay is skipped — with a warning event — without it.
        """
        pending = self.wal.pending()
        if not pending:
            return
        if not self.config.dedup:
            _trace.event("service.wal.replay_skipped",
                         reason="dedup disabled", pending=len(pending))
            return
        loop = asyncio.get_running_loop()
        replayed = 0
        for item in pending:
            try:
                request = ScheduleRequest.from_dict(item["payload"])
            except ProtocolError:
                # A journal entry this build can no longer parse: settle
                # it rather than crash-loop on every restart.
                self.wal.append_done(item["fp"])
                continue
            fingerprint = item["fp"]
            if self.store.get(fingerprint) is not None:
                self.wal.append_done(fingerprint)
                continue
            future = loop.create_future()
            job = Job(request=request, payload=request.to_dict(),
                      fingerprint=fingerprint, future=future,
                      priority=item["priority"])
            try:
                self.queue.put_nowait(job)
            except BackpressureError:   # pragma: no cover - tiny queues
                break
            self._inflight[fingerprint] = future
            future.add_done_callback(
                lambda _f, fp=fingerprint: self._inflight.pop(fp, None))
            # No client awaits a replayed future; retrieve its outcome so
            # a failure cannot surface as an "exception never retrieved".
            future.add_done_callback(_swallow_future_exception)
            replayed += 1
        self._counters["replayed"] = replayed
        _metrics.inc("service.wal.replays", replayed)
        _trace.event("service.wal.replayed", count=replayed)

    def request_stop(self) -> None:
        """Signal the daemon to stop (safe from any thread via its loop)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop`, then shut down cleanly."""
        await self._stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, fail queued work, close the pool (reaping it)."""
        if self.console is not None:
            await self.console.stop()
            self.console = None
        await self.supervisor.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        for task in list(self._group_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        if self.queue is not None:
            for job in self.queue.drain():
                if not job.future.done():
                    job.future.set_exception(
                        ConnectionError("service is shutting down"))
        for fut in list(self._inflight.values()):
            if not fut.done():
                fut.set_exception(ConnectionError("service is shutting down"))
        self._inflight.clear()
        # Pool close waits for in-flight jobs; do it off-loop so a long
        # job cannot wedge the shutdown path.
        await asyncio.get_running_loop().run_in_executor(None, self.pool.close)
        if self.wal is not None:
            # Queued-but-unreplied requests stay journaled: the next
            # incarnation replays them.  Close drains and fsyncs.
            await asyncio.get_running_loop().run_in_executor(
                None, self.wal.close)
        _trace.event("service.stopped")

    # -------------------------------------------------------------- #
    # dispatcher: queue → batches → pool
    # -------------------------------------------------------------- #

    async def _dispatch_loop(self) -> None:
        cfg = self.config
        max_batch = cfg.max_batch if cfg.batching else 1
        window = cfg.batch_window if cfg.batching else 0.0
        while True:
            await self._group_sem.acquire()   # capacity before popping work
            try:
                jobs = await self.queue.get_batch(max_batch, window)
            except BaseException:
                self._group_sem.release()
                raise
            groups = plan_batches(jobs, dedup=cfg.dedup)
            for i, group in enumerate(groups):
                if i > 0:                      # first group uses the held slot
                    await self._group_sem.acquire()
                task = asyncio.create_task(self._run_group(group))
                self._group_tasks.add(task)
                task.add_done_callback(self._on_group_done)
            if not groups:                     # pragma: no cover - defensive
                self._group_sem.release()

    def _on_group_done(self, task: "asyncio.Task") -> None:
        self._group_tasks.discard(task)
        self._group_sem.release()

    async def _run_group(self, group: BatchGroup) -> None:
        payloads = group.payloads()
        self._counters["batches"] += 1
        self._counters["batched_requests"] += group.total
        self._counters["max_batch"] = max(self._counters["max_batch"],
                                          group.total)
        _metrics.observe("service.batch.size", group.total)
        _metrics.observe("service.batch.unique", group.unique)
        served = {"from": "computed", "batch_size": group.total,
                  "unique": group.unique}
        try:
            results = await self._execute(payloads)
        except Exception as exc:
            self._counters["failed"] += group.total
            for entry in group.entries:
                # The client gets an explicit typed error — the request
                # is settled, so the journal entry is too.
                self._wal_done(entry[0].fingerprint)
                for job in entry:
                    if not job.future.done():
                        job.future.set_exception(exc)
            return
        for entry, result in zip(group.entries, results):
            if self.config.dedup:
                self.store.put(entry[0].fingerprint, result)
            self._wal_done(entry[0].fingerprint)
            for job in entry:
                if not job.future.done():
                    job.future.set_result((result, served))

    def _wal_done(self, fingerprint: str) -> None:
        """Settle a journal entry once its request has a definite outcome."""
        if self.wal is not None:
            self.wal.append_done(fingerprint)

    async def _execute(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run one batch under supervision (deadline, restart, re-dispatch).

        Delegates the resilience policy — per-attempt deadline, restart +
        re-dispatch on worker crashes, circuit-breaker accounting and the
        sandbox thread fallback — to the :class:`PoolSupervisor`; failures
        surface as its typed errors and are mapped to typed error replies.
        """
        self._batch_seq += 1
        return await self.supervisor.run(
            self.config.executor, self._batch_seq, payloads, self.config.cold)

    # -------------------------------------------------------------- #
    # connection handling
    # -------------------------------------------------------------- #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._counters["rejected_protocol"] += 1
                    writer.write(encode_line(error_envelope(
                        "protocol", "message exceeds the frame limit")))
                    await writer.drain()
                    break
                if not raw:
                    break
                stop_after = False
                try:
                    message = decode_line(raw)
                    op = message.get("op")
                    if op == "shutdown":
                        stop_after = True
                    reply = await self._dispatch_op(message)
                except ProtocolError as exc:
                    self._counters["rejected_protocol"] += 1
                    reply = error_envelope("protocol", str(exc))
                writer.write(encode_line(reply))
                await writer.drain()
                if stop_after:
                    self.request_stop()
                    break
        except asyncio.CancelledError:
            # Only stop() cancels connection tasks; finishing normally keeps
            # asyncio's stream protocol from logging the cancellation.
            pass
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch_op(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "ping":
            from repro import __version__
            return ok_envelope(op="ping", version=__version__)
        if op == "status":
            return ok_envelope(status=self.status().to_dict())
        if op == "submit":
            return await self._handle_submit(message)
        if op == "result":
            return self._handle_result(message)
        if op == "shutdown":
            return ok_envelope(stopping=True)
        return error_envelope("unknown-op", f"unknown op {op!r}")

    async def _handle_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            request = ScheduleRequest.from_dict(message.get("request"))
        except ProtocolError as exc:
            self._counters["rejected_protocol"] += 1
            return error_envelope("bad-request", str(exc))
        wait = message.get("wait", True)
        if not isinstance(wait, bool):
            return error_envelope("bad-request", "'wait' must be a boolean")
        fingerprint = request.fingerprint()
        self._counters["requests"] += 1
        with _trace.span("service.request", fingerprint=fingerprint[:12],
                         method=request.method) as sp:
            if self.config.dedup:
                stored = self.store.get(fingerprint)
                if stored is not None:
                    self._counters["served_store"] += 1
                    sp.set(served="store")
                    return ok_envelope(result=stored,
                                       served={"from": "store"})
                pending = self._inflight.get(fingerprint)
                if pending is not None:
                    if not wait:
                        return ok_envelope(ticket=fingerprint,
                                           status="pending")
                    sp.set(served="inflight")
                    return await self._await_future(pending, "inflight")
            try:
                self.config.admission.check(request)
            except AdmissionError as exc:
                self._counters["rejected_admission"] += 1
                sp.set(served="rejected")
                return error_envelope("rejected", str(exc))
            retry_after = self.supervisor.breaker.reject_after()
            if retry_after is not None:
                # Degraded mode: the worker path is crash-looping; reject
                # new work with a hint instead of queueing doomed batches.
                self._counters["rejected_degraded"] += 1
                sp.set(served="degraded")
                return error_envelope(
                    "degraded",
                    "the service is degraded (worker path failing); "
                    "retry later",
                    retry_after=round(retry_after, 3))
            future = asyncio.get_running_loop().create_future()
            job = Job(request=request, payload=request.to_dict(),
                      fingerprint=fingerprint, future=future,
                      priority=request.priority)
            try:
                victim = self.queue.put_nowait(job, shed=self.config.shed)
            except BackpressureError as exc:
                self._counters["rejected_backpressure"] += 1
                sp.set(served="backpressure")
                return error_envelope("backpressure", str(exc),
                                      retry_after=exc.retry_after)
            if victim is not None:
                # A lower-priority queued job made room: fail it with a
                # typed shed error (its waiters get retry_after) and
                # settle its journal entry — an explicit outcome, not
                # silent loss.
                self._counters["rejected_shed"] += 1
                sp.set(shed=victim.fingerprint[:12])
                self._wal_done(victim.fingerprint)
                if not victim.future.done():
                    victim.future.set_exception(ShedError(
                        "evicted by a higher-priority request; retry later"))
            # Journal *after* the queue admitted the job but *before* any
            # reply: a request is only observably accepted once the client
            # hears back, and by then the accept record is fsync-durable.
            if self.wal is not None:
                await asyncio.wrap_future(self.wal.append_accept(
                    fingerprint, job.payload, request.priority))
            if self.config.dedup:
                self._inflight[fingerprint] = future
                future.add_done_callback(
                    lambda _f, fp=fingerprint: self._inflight.pop(fp, None))
            if not wait:
                # Nobody awaits a ticketed future directly (results are
                # read back through the store), so mark any terminal
                # exception retrieved to keep shutdown logs clean.
                future.add_done_callback(_swallow_future_exception)
                return ok_envelope(ticket=fingerprint, status="queued")
            sp.set(served="computed")
            return await self._await_future(future, "computed")

    def _reply_timeout(self) -> Optional[float]:
        """Absolute never-hang bound on one submit's reply future.

        The supervisor's per-attempt deadline normally resolves the
        future first (with a typed error); this backstop covers the
        pathological remainder — a wedged dispatcher, a future nothing
        will ever complete — so a waiting client always hears *something*
        within a bounded time.  ``None`` (no deadline configured) keeps
        the historical wait-forever behaviour.
        """
        deadline = self.config.request_deadline
        if deadline is None:
            return None
        return deadline * (self.config.max_redispatch + 2) + 30.0

    def _error_reply(self, exc: BaseException) -> Dict[str, Any]:
        """Map an exception to a typed error envelope (+ counters)."""
        code = getattr(exc, "code", None) or "failed"
        extra: Dict[str, Any] = {}
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            extra["retry_after"] = round(float(retry_after), 3)
        if code == "shed":
            pass          # counted at shed time, not per waiter
        elif code == "degraded":
            self._counters["rejected_degraded"] += 1
        elif code == "deadline":
            self._counters["deadline"] += 1
        else:
            self._counters["failed"] += 1
        message = str(exc) or type(exc).__name__
        if code == "failed":
            message = f"{type(exc).__name__}: {exc}"
        return error_envelope(code, message, **extra)

    async def _await_future(self, future: "asyncio.Future",
                            source: str) -> Dict[str, Any]:
        try:
            result, served = await asyncio.wait_for(
                asyncio.shield(future), self._reply_timeout())
        except asyncio.TimeoutError:
            self._counters["deadline"] += 1
            return error_envelope(
                "deadline",
                "no result within the service's reply bound; the request "
                "was dropped")
        except Exception as exc:
            return self._error_reply(exc)
        if source == "inflight":
            self._counters["served_inflight"] += 1
            served = {**served, "from": "inflight"}
        else:
            self._counters["served_computed"] += 1
        return ok_envelope(result=result, served=served)

    def _handle_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        ticket = message.get("ticket")
        if not isinstance(ticket, str):
            return error_envelope("bad-request", "'ticket' must be a string")
        stored = self.store.get(ticket)
        if stored is not None:
            return ok_envelope(result=stored, served={"from": "store"})
        if ticket in self._inflight or self._queued(ticket):
            return ok_envelope(ticket=ticket, status="pending")
        return error_envelope("unknown-ticket",
                              f"no stored or pending result for {ticket!r}")

    def _queued(self, fingerprint: str) -> bool:
        # Without dedup there is no in-flight table; a queued job is still
        # "pending" from the client's point of view.
        return any(job.fingerprint == fingerprint
                   for _, _, job in getattr(self.queue, "_queue")._queue)

    # -------------------------------------------------------------- #
    # status
    # -------------------------------------------------------------- #

    def status(self) -> ServiceStatus:
        """A deterministic-schema snapshot for the ``status`` op."""
        from repro import __version__

        c = self._counters
        store_stats = self.store.stats()
        batches = c["batches"]
        return ServiceStatus(
            version=__version__,
            uptime_seconds=round(time.monotonic() - self._started_at, 3),
            requests_total=c["requests"],
            served={
                "computed": c["served_computed"],
                "store": c["served_store"],
                "inflight": c["served_inflight"],
            },
            rejected={
                "backpressure": c["rejected_backpressure"],
                "admission": c["rejected_admission"],
                "protocol": c["rejected_protocol"],
                "failed": c["failed"],
                "shed": c["rejected_shed"],
                "degraded": c["rejected_degraded"],
                "deadline": c["deadline"],
            },
            queue_depth=self.queue.depth if self.queue is not None else 0,
            queue_capacity=self.config.max_pending,
            inflight=len(self._inflight),
            store={
                "size": store_stats.size,
                "hits": store_stats.hits,
                "misses": store_stats.misses,
                "evictions": store_stats.evictions,
                "expirations": store_stats.expirations,
                "corruptions": store_stats.corruptions,
            },
            pool={
                "workers": self.pool.workers,
                "active": self.pool.active,
                "thread_fallback": self.supervisor.thread_fallback,
            },
            batches={
                "count": batches,
                "requests": c["batched_requests"],
                "mean_size": (round(c["batched_requests"] / batches, 3)
                              if batches else None),
                "max_size": c["max_batch"],
            },
            supervisor=self.supervisor.status(),
            wal=(self.wal.status() if self.wal is not None else None),
            console=(
                {"host": self.console.address[0],
                 "port": self.console.address[1],
                 "requests": self.console.requests_served}
                if self.console is not None
                and self.console.address is not None else None
            ),
        )

    def _console_metrics(self) -> str:
        """The ``/metrics`` body: the status snapshot as Prometheus text.

        Built from the same counters the ``status`` op reports, merged
        with the context's live :class:`MetricsRegistry` when one is
        active (e.g. the daemon runs under ``--trace``).
        """
        from repro.obs.export import render_prometheus
        from repro.obs.metrics import current_registry

        snapshot = status_metrics_snapshot(self.status().to_dict())
        registry = current_registry()
        if registry is not None:
            live = registry.snapshot()
            snapshot["counters"].update(live.get("counters", {}))
            snapshot["gauges"].update(live.get("gauges", {}))
            snapshot["histograms"] = live.get("histograms", {})
        return render_prometheus(snapshot)


# --------------------------------------------------------------------- #
# status -> metrics mapping
# --------------------------------------------------------------------- #

def status_metrics_snapshot(status: Dict[str, Any]) -> Dict[str, Any]:
    """A ``status`` dict as a registry-snapshot shape for the exporter.

    Monotone totals (requests, served/rejected reasons, store traffic,
    batches) become counters; instantaneous readings (queue depth,
    inflight, pool occupancy, uptime) become gauges.  Keys are dotted
    instrument names; :func:`repro.obs.export.render_prometheus` turns
    them into legal exposition names.
    """
    counters: Dict[str, float] = {
        "service.requests": status.get("requests_total", 0),
    }
    for reason, value in status.get("served", {}).items():
        counters[f"service.served.{reason}"] = value
    for reason, value in status.get("rejected", {}).items():
        counters[f"service.rejected.{reason}"] = value
    store = status.get("store", {})
    for kind in ("hits", "misses", "evictions", "expirations",
                 "corruptions"):
        counters[f"service.store.{kind}"] = store.get(kind, 0)
    batches = status.get("batches", {})
    counters["service.batches"] = batches.get("count", 0)
    counters["service.batched_requests"] = batches.get("requests", 0)
    console = status.get("console") or {}
    if console:
        counters["service.console.requests"] = console.get("requests", 0)
    gauges: Dict[str, float] = {
        "service.uptime_seconds": status.get("uptime_seconds", 0.0),
        "service.queue_depth": status.get("queue_depth", 0),
        "service.queue_capacity": status.get("queue_capacity", 0),
        "service.inflight": status.get("inflight", 0),
        "service.store.size": store.get("size", 0),
    }
    pool = status.get("pool", {})
    gauges["service.pool.workers"] = pool.get("workers", 0)
    gauges["service.pool.active"] = pool.get("active", 0)
    return {"counters": counters, "gauges": gauges, "histograms": {}}


# --------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------- #

def run_service(config: Optional[ServiceConfig] = None, *,
                ready_message: bool = True) -> int:
    """Run a service until SIGINT/SIGTERM or a ``shutdown`` op (blocking).

    The ``repro serve`` entry point.  Returns a process exit code; the
    pool's workers are reaped on every exit path (the KeyboardInterrupt
    teardown contract of :class:`repro.parallel.WorkerPool`).
    """
    service = SchedulerService(config)

    async def _main() -> None:
        host, port = await service.start()
        if ready_message:
            print(f"repro service listening on {host}:{port} "
                  f"(workers={service.pool.workers}, "
                  f"max_pending={service.config.max_pending})", flush=True)
        await service.serve_until_stopped()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        service.pool.terminate()
        if ready_message:
            print("interrupted — workers reaped", flush=True)
        return 130
    return 0


@contextlib.contextmanager
def running_service(config: Optional[ServiceConfig] = None):
    """Run a service on a background thread; yields it with ``.address``.

    The harness used by tests, the CI smoke job and the load bench::

        with running_service(ServiceConfig(port=0)) as service:
            host, port = service.address
            ...

    On exit the daemon is stopped and its pool closed (or reaped, if the
    body raised a ``KeyboardInterrupt``-class exception).
    """
    service = SchedulerService(config)
    started = threading.Event()
    failure: List[BaseException] = []
    loop_holder: Dict[str, asyncio.AbstractEventLoop] = {}

    async def _main() -> None:
        try:
            await service.start()
        except BaseException as exc:  # bind failures surface to the caller
            failure.append(exc)
            started.set()
            return  # quiet thread exit; the caller raises typed below
        loop_holder["loop"] = asyncio.get_running_loop()
        started.set()
        await service.serve_until_stopped()

    thread = threading.Thread(target=lambda: asyncio.run(_main()),
                              name="repro-service", daemon=True)
    thread.start()
    came_up = started.wait(timeout=30.0)
    if failure:
        thread.join(timeout=5.0)
        raise ServiceStartupError(
            f"service failed to start: {failure[0]!r}") from failure[0]
    if not came_up or service.address is None:
        # The daemon never signalled readiness: don't proceed against a
        # half-started service — stop it, reap the thread, raise typed.
        service.request_stop()
        thread.join(timeout=10.0)
        raise ServiceStartupError(
            "service did not come up within 30s"
            + (" (startup thread still running)" if thread.is_alive() else "")
        )
    try:
        yield service
    finally:
        loop = loop_holder.get("loop")
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(service.request_stop)
        thread.join(timeout=60.0)


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ServiceConfig",
    "ServiceStartupError",
    "SchedulerService",
    "status_metrics_snapshot",
    "run_service",
    "running_service",
]
