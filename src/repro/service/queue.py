"""Admission control and the bounded priority job queue.

Two failure modes are deliberately distinct:

- :class:`AdmissionError` — the request itself is unacceptable for this
  deployment (too many switches, a disallowed search method, an oversized
  simulation): retrying is pointless, the client must change the request.
- :class:`BackpressureError` — the request is fine but the service is at
  its pending-work bound right now: the client should back off and retry
  (the error carries a ``retry_after`` hint).

The queue is a bounded max-priority heap (higher ``priority`` first, FIFO
within a priority) exposed through asyncio; :meth:`JobQueue.get_batch`
implements the micro-batching window — pop one job, then keep draining
until either ``max_batch`` jobs are in hand or ``window`` seconds passed
without the batch filling.  Queue depth is published as the
``service.queue.depth`` gauge on every transition.

Under overload the queue can also *shed*: when a higher-priority request
arrives at a full queue, the lowest-priority (youngest-within-priority)
queued job is evicted and failed with :class:`ShedError` — a third typed
failure mode alongside admission and backpressure, carrying its own
``retry_after`` hint — so important work displaces less important work
instead of being bounced (``service.queue.shed`` counter).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics
from repro.service.protocol import SEARCH_METHODS, ScheduleRequest


class AdmissionError(Exception):
    """The request violates this deployment's admission policy."""


class BackpressureError(Exception):
    """The pending-work bound is reached; retry after ``retry_after`` s."""

    def __init__(self, message: str, *, retry_after: float = 0.5):
        super().__init__(message)
        self.retry_after = retry_after


class ShedError(BackpressureError):
    """This queued request was evicted to admit higher-priority work.

    Raised *into the shed job's future*, not at the submitter of the new
    job: under overload the queue keeps the most important work and the
    displaced client gets an explicit typed error (code ``"shed"``) with
    a ``retry_after`` hint — never silent loss.
    """

    code = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-request resource bounds checked before a job is queued.

    The defaults admit everything the paper's experiments produce
    (16/24-switch networks, small sweeps) with generous headroom while
    keeping a single request from monopolizing a shared worker.
    """

    max_switches: int = 256
    max_clusters: int = 64
    max_simulate_points: int = 16
    max_simulate_cycles: int = 200_000
    allowed_methods: Optional[frozenset] = None  # None = every registered

    def check(self, request: ScheduleRequest) -> None:
        """Raise :class:`AdmissionError` unless ``request`` is admissible."""
        topo = request.topology
        if topo.num_switches > self.max_switches:
            raise AdmissionError(
                f"topology has {topo.num_switches} switches, this service "
                f"admits at most {self.max_switches}"
            )
        if request.workload.num_clusters > self.max_clusters:
            raise AdmissionError(
                f"workload has {request.workload.num_clusters} clusters, "
                f"this service admits at most {self.max_clusters}"
            )
        allowed = (self.allowed_methods if self.allowed_methods is not None
                   else frozenset(SEARCH_METHODS))
        if request.method not in allowed:
            raise AdmissionError(
                f"search method {request.method!r} is not admitted here; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        sim = request.simulate
        if sim is not None:
            if sim.points > self.max_simulate_points:
                raise AdmissionError(
                    f"simulate.points={sim.points} exceeds the admitted "
                    f"maximum of {self.max_simulate_points}"
                )
            cycles = (sim.warmup + sim.measure) * sim.points
            if cycles > self.max_simulate_cycles:
                raise AdmissionError(
                    f"simulation of {cycles} total cycles exceeds the "
                    f"admitted maximum of {self.max_simulate_cycles}"
                )


@dataclass
class Job:
    """One queued request plus the future its submitters await."""

    request: ScheduleRequest
    payload: Dict[str, Any]          # the wire dict (what workers execute)
    fingerprint: str
    future: "asyncio.Future" = field(repr=False)
    priority: int = 0


class JobQueue:
    """Bounded max-priority queue feeding the dispatcher.

    A thin wrapper over :class:`asyncio.PriorityQueue` ordering by
    ``(-priority, arrival)`` — higher priority first, FIFO within a
    priority — that turns the full condition into a synchronous
    :class:`BackpressureError` (admission happens on the event loop; a
    blocking ``put`` would hide the overload from the client).
    """

    def __init__(self, max_pending: int = 64):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self._queue: "asyncio.PriorityQueue" = \
            asyncio.PriorityQueue(maxsize=self.max_pending)
        self._arrival = itertools.count()

    # -------------------------------------------------------------- #

    @property
    def depth(self) -> int:
        """Jobs currently waiting (excludes in-flight batches)."""
        return self._queue.qsize()

    def put_nowait(self, job: Job, *, shed: bool = False) -> Optional[Job]:
        """Enqueue ``job``; under overload, optionally shed lower-priority work.

        At capacity with ``shed=False`` (the historical behaviour) this
        raises :class:`BackpressureError` at the submitter.  With
        ``shed=True`` the queue first looks for a victim of *strictly
        lower* priority — the lowest-priority job, youngest within that
        priority — evicts it to make room, and returns it so the caller
        can fail its future with :class:`ShedError`.  When every queued
        job has priority >= the newcomer's, the newcomer is the loser and
        :class:`BackpressureError` is raised as before.  Returns ``None``
        when nothing was shed.
        """
        victim: Optional[Job] = None
        try:
            self._queue.put_nowait((-job.priority, next(self._arrival), job))
        except asyncio.QueueFull:
            if shed:
                victim = self._evict_lowest(job.priority)
            if victim is None:
                raise BackpressureError(
                    f"the service has {self.max_pending} requests pending; "
                    "retry later",
                ) from None
            _metrics.inc("service.queue.shed")
            self._queue.put_nowait((-job.priority, next(self._arrival), job))
        _metrics.set_gauge("service.queue.depth", self.depth)
        return victim

    def _evict_lowest(self, above_priority: int) -> Optional[Job]:
        """Remove the worst queued job strictly below ``above_priority``.

        "Worst" = lowest priority, then youngest arrival (the job that
        has waited least loses the tie).  Reaches into the underlying
        heap — sound because everything runs on the event loop, and the
        heap invariant is restored with ``heapify``.
        """
        heap = self._queue._queue  # list of (-priority, arrival, job)
        worst_index = None
        for index, (neg_priority, arrival, _) in enumerate(heap):
            if -neg_priority >= above_priority:
                continue
            if worst_index is None or (neg_priority, arrival) > (
                    heap[worst_index][0], heap[worst_index][1]):
                worst_index = index
        if worst_index is None:
            return None
        _, _, victim = heap.pop(worst_index)
        heapq.heapify(heap)
        # PriorityQueue tracks size through get(); mirror its accounting.
        self._queue._unfinished_tasks -= 1
        return victim

    async def get(self) -> Job:
        """Wait for and pop the highest-priority job."""
        _, _, job = await self._queue.get()
        _metrics.set_gauge("service.queue.depth", self.depth)
        return job

    async def get_batch(self, max_batch: int, window: float) -> List[Job]:
        """Pop one job, then drain up to ``max_batch`` within ``window`` s.

        The first pop waits indefinitely (an idle service parks here);
        once a job arrives, whatever else shows up inside the batching
        window rides along.  ``max_batch=1`` or ``window<=0`` degrade to
        plain one-at-a-time dispatch.
        """
        batch = [await self.get()]
        if max_batch <= 1:
            return batch
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, window)
        while len(batch) < max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Window over: take only what is already queued.
                try:
                    batch.append(self.get_nowait())
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    batch.append(await asyncio.wait_for(self.get(), remaining))
                except asyncio.TimeoutError:
                    break
        return batch

    def get_nowait(self) -> Job:
        """Pop the highest-priority job without waiting."""
        _, _, job = self._queue.get_nowait()
        _metrics.set_gauge("service.queue.depth", self.depth)
        return job

    def drain(self) -> List[Job]:
        """Remove and return every queued job (shutdown path)."""
        jobs = []
        while True:
            try:
                jobs.append(self.get_nowait())
            except asyncio.QueueEmpty:
                break
        return jobs


__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "BackpressureError",
    "Job",
    "JobQueue",
    "ShedError",
]
