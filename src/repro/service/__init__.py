"""repro.service — a batching, backpressure-aware scheduling service.

The resident counterpart of the one-shot CLI: an asyncio daemon that
accepts JSON scheduling requests (topology + cluster spec + search
method) over a stream socket and answers with the deterministic mapping,
its F_G/D_G/C_c scores and, optionally, simulated latency — amortizing
topology analysis (up*/down* routing, tables of equivalent distances)
across requests instead of rebuilding it per invocation.

Layers (one module each):

- :mod:`~repro.service.protocol` — wire types, strict decoding, request
  fingerprints, the determinism contract;
- :mod:`~repro.service.store` — content-addressed TTL result store with
  integrity digests (corruption degrades to a recompute, never a wrong
  reply);
- :mod:`~repro.service.queue` — admission policy, backpressure,
  priority-aware load shedding, the bounded priority queue with the
  micro-batching window;
- :mod:`~repro.service.batch` — batch planning by topology fingerprint
  and the pure worker-side executor;
- :mod:`~repro.service.supervisor` — deadlines, worker restart and
  re-dispatch, the idle-pool heartbeat and the circuit breaker that
  flips the daemon into degraded mode;
- :mod:`~repro.service.wal` — the write-ahead journal of accepted
  requests, replayed byte-identically after a daemon kill;
- :mod:`~repro.service.server` — the daemon tying it all to a persistent
  :class:`repro.parallel.WorkerPool`;
- :mod:`~repro.service.client` — the blocking client the CLI and the
  load bench use, with transparent reconnect for idempotent ops.

The invariant the chaos harness (:mod:`repro.chaos`) enforces across all
of it: every accepted request terminates with a byte-identical correct
reply or an explicit typed error — never a hang, never silent loss.

Entry points: ``repro serve`` / ``repro submit`` / ``repro status``, or
programmatically::

    from repro.service import ServiceConfig, running_service, ServiceClient

    with running_service(ServiceConfig(port=0)) as service:
        host, port = service.address
        with ServiceClient(host, port) as client:
            reply = client.submit(request)
"""

from repro.service.batch import (
    BatchGroup,
    execute_batch,
    execute_request,
    plan_batches,
)
from repro.service.client import IDEMPOTENT_OPS, ServiceClient, ServiceError
from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    SEARCH_METHODS,
    ProtocolError,
    ScheduleRequest,
    ScheduleResponse,
    ServiceStatus,
    SimulateSpec,
    build_search,
    decode_line,
    encode_line,
)
from repro.service.queue import (
    AdmissionError,
    AdmissionPolicy,
    BackpressureError,
    Job,
    JobQueue,
    ShedError,
)
from repro.service.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    SchedulerService,
    ServiceConfig,
    ServiceStartupError,
    run_service,
    running_service,
)
from repro.service.store import ResultStore, StoreStats
from repro.service.supervisor import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    PoolSupervisor,
    SupervisorError,
    WorkerCrashError,
)
from repro.service.wal import WalError, WriteAheadLog

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "BackpressureError",
    "BatchGroup",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DeadlineExceededError",
    "ERROR_CODES",
    "IDEMPOTENT_OPS",
    "Job",
    "JobQueue",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "PoolSupervisor",
    "ProtocolError",
    "ResultStore",
    "SEARCH_METHODS",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchedulerService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceStartupError",
    "ServiceStatus",
    "ShedError",
    "SimulateSpec",
    "StoreStats",
    "SupervisorError",
    "WalError",
    "WorkerCrashError",
    "WriteAheadLog",
    "build_search",
    "decode_line",
    "encode_line",
    "execute_batch",
    "execute_request",
    "plan_batches",
    "run_service",
    "running_service",
]
