"""Precomputed routing tables for the simulator.

The flit-level simulator consults the routing function on every header
arbitration; going through the full BFS machinery there would dominate the
run time.  :class:`RoutingTable` flattens a routing algorithm into dense
per-destination lookup lists:

``table.hops(current, phase, dst)`` → tuple of ``(neighbor, next_phase)``
candidates on shortest legal continuations.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.routing.base import Hop, Phase, RoutingAlgorithm


class RoutingTable:
    """Dense (switch, phase, destination) → next-hop-options table."""

    def __init__(self, routing: RoutingAlgorithm):
        self.routing = routing
        self.topology = routing.topology
        n = self.topology.num_switches
        # _table[dst][phase][switch] = tuple of hops
        self._table: List[List[List[Tuple[Hop, ...]]]] = [
            [
                [routing.next_hops(s, Phase(p), dst) for s in range(n)]
                for p in (Phase.UP, Phase.DOWN)
            ]
            for dst in range(n)
        ]

    def hops(self, current: int, phase: Phase, dst: int) -> Tuple[Hop, ...]:
        """Legal shortest next hops from ``(current, phase)`` toward ``dst``."""
        return self._table[dst][phase][current]

    def path_length(self, src: int, dst: int) -> int:
        """Length in hops of the routes the table produces for ``src → dst``."""
        return int(self.routing.distances()[src, dst])


def build_routing_table(routing: RoutingAlgorithm) -> RoutingTable:
    """Convenience constructor mirroring the package's functional style."""
    return RoutingTable(routing)


__all__ = ["RoutingTable", "build_routing_table"]
