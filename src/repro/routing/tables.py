"""Precomputed routing tables for the simulator.

The flit-level simulator consults the routing function on every header
arbitration; going through the full BFS machinery there would dominate the
run time.  :class:`RoutingTable` flattens a routing algorithm into dense
per-destination lookup lists:

``table.hops(current, phase, dst)`` → tuple of ``(neighbor, next_phase)``
candidates on shortest legal continuations.

The table additionally hosts the *engine caches*: per-slot routing-candidate
stores that every simulation engine (fast, batch, vector) used to rebuild
per instantiation.  Candidates depend only on the routing table and the
channel layout (which is a pure function of topology + ``virtual_channels``)
plus the adaptive flag, so one store per ``(virtual_channels, adaptive)``
key can be shared by every engine instance on the same table — see
:meth:`candidate_cache`.  The caches are dropped on pickling (pool workers
rebuild them lazily) so they never bloat job payloads.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.routing.base import Hop, Phase, RoutingAlgorithm


class RoutingTable:
    """Dense (switch, phase, destination) → next-hop-options table."""

    def __init__(self, routing: RoutingAlgorithm):
        self.routing = routing
        self.topology = routing.topology
        n = self.topology.num_switches
        # _table[dst][phase][switch] = tuple of hops
        self._table: List[List[List[Tuple[Hop, ...]]]] = [
            [
                [routing.next_hops(s, Phase(p), dst) for s in range(n)]
                for p in (Phase.UP, Phase.DOWN)
            ]
            for dst in range(n)
        ]
        self._engine_caches: Dict[Hashable, object] = {}

    def hops(self, current: int, phase: Phase, dst: int) -> Tuple[Hop, ...]:
        """Legal shortest next hops from ``(current, phase)`` toward ``dst``."""
        return self._table[dst][phase][current]

    def path_length(self, src: int, dst: int) -> int:
        """Length in hops of the routes the table produces for ``src → dst``."""
        return int(self.routing.distances()[src, dst])

    # ------------------------------------------------------------------ #
    # engine-shared caches
    # ------------------------------------------------------------------ #

    def engine_cache(self, key: Hashable) -> dict:
        """A shared memo dict for simulation-engine lookaside structures.

        Engines key their derived, immutable lookup structures here (the
        vector engine's dense candidate tables, for example) so every
        engine instance on this table reuses one copy.  The store is
        per-process: :meth:`__getstate__` drops it, so pickled tables
        (process-pool jobs) arrive lean and rebuild lazily.
        """
        caches = self.__dict__.get("_engine_caches")
        if caches is None:
            caches = self._engine_caches = {}
        entry = caches.get(key)
        if entry is None:
            entry = caches[key] = {}
        return entry

    def candidate_cache(
        self, virtual_channels: int, adaptive: bool,
    ) -> Dict[Tuple[int, Phase, int], Tuple[Tuple[int, int, Phase], ...]]:
        """The shared per-slot routing-candidate store for the engines.

        Maps ``(head_switch, phase, dst_switch)`` to the reference
        engine's free-list construction order of ``(cid, neighbor,
        next_phase)`` candidates (hop-major, VC-minor; truncated to the
        first hop when ``adaptive`` is false).  The dict is created empty
        once per ``(virtual_channels, adaptive)`` and filled lazily by
        whichever engine first needs each key — the content is a pure
        function of the key, so sharing is safe and every later engine
        instance on this table starts warm.
        """
        return self.engine_cache(
            ("candidates", int(virtual_channels), bool(adaptive))
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_engine_caches", None)
        return state


def build_routing_table(routing: RoutingAlgorithm) -> RoutingTable:
    """Convenience constructor mirroring the package's functional style."""
    return RoutingTable(routing)


__all__ = ["RoutingTable", "build_routing_table"]
