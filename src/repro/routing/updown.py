"""Up*/down* routing (Autonet-style).

A BFS spanning tree is grown from a root switch; every link is oriented so
that its "up" end is the endpoint closer to the root (ties by lower id).
A path is *legal* iff it consists of zero or more up traversals followed by
zero or more down traversals.  This forbids some minimal paths — the effect
the paper's distance model is designed to capture — and guarantees both
connectivity and deadlock freedom.

Implementation: a packet's routing state is ``(switch, phase)`` with
``phase`` from :class:`~repro.routing.base.Phase`; legality becomes a plain
reachability problem on a directed *state graph* with ``2N`` nodes:

- an up traversal keeps phase ``UP``;
- a down traversal moves (or keeps) phase ``DOWN``;
- no edge ever leaves ``DOWN`` for ``UP``.

Shortest legal distances, per-state next hops and shortest-path link
supports all come out of forward/backward BFS on this graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.routing.base import Hop, Phase, RoutingAlgorithm
from repro.topology.graph import Link, Topology

_UNREACHED = -1


def bfs_levels(topology: Topology, root: int) -> np.ndarray:
    """BFS level of every switch from ``root`` (the spanning-tree depth)."""
    n = topology.num_switches
    level = np.full(n, _UNREACHED, dtype=np.int64)
    level[root] = 0
    frontier = [root]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for u in frontier:
            for v in topology.neighbors(u):
                if level[v] == _UNREACHED:
                    level[v] = d
                    nxt.append(v)
        frontier = nxt
    return level


def choose_root(topology: Topology) -> int:
    """Deterministic root election: maximum degree, ties by lowest id.

    Autonet elects the root dynamically; any deterministic rule preserves
    the algorithm's structure, and max-degree roots tend to give shallower
    trees (slightly better legal distances).
    """
    best = 0
    best_deg = topology.degree(0)
    for s in range(1, topology.num_switches):
        d = topology.degree(s)
        if d > best_deg:
            best, best_deg = s, d
    return best


class UpDownRouting(RoutingAlgorithm):
    """Up*/down* routing over a fixed topology.

    Parameters
    ----------
    topology:
        The switch network (must be connected).
    root:
        Spanning-tree root.  ``None`` elects one via :func:`choose_root`.
    """

    def __init__(self, topology: Topology, *, root: Optional[int] = None):
        super().__init__(topology)
        n = topology.num_switches
        if root is None:
            root = choose_root(topology)
        if not (0 <= root < n):
            raise ValueError(f"root {root} outside 0..{n - 1}")
        self.root = root
        self.level = bfs_levels(topology, root)

        # Directed state-graph adjacency: for each (switch, phase) the legal
        # (neighbor, phase') continuations, independent of destination.
        self._succ: List[List[List[Hop]]] = [
            [[] for _ in range(n)] for _ in range(2)
        ]
        self._pred: List[List[List[Hop]]] = [
            [[] for _ in range(n)] for _ in range(2)
        ]
        for u, v in topology.links:
            for a, b in ((u, v), (v, u)):
                if self.is_up(a, b):
                    self._add_edge(a, Phase.UP, b, Phase.UP)
                else:
                    self._add_edge(a, Phase.UP, b, Phase.DOWN)
                    self._add_edge(a, Phase.DOWN, b, Phase.DOWN)

        self._dist: Optional[np.ndarray] = None
        # Per-destination remaining-distance arrays, filled lazily:
        # _db[dst] has shape (2, N): _db[dst][phase, switch].
        self._db: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # orientation
    # ------------------------------------------------------------------ #

    def is_up(self, frm: int, to: int) -> bool:
        """True when traversing the link ``frm -> to`` is an *up* traversal.

        The up end of a link is the endpoint with the lexicographically
        smaller ``(BFS level, id)``; travelling toward it is travelling up.
        """
        if not self.topology.has_link(frm, to):
            raise ValueError(f"({frm},{to}) is not a link of {self.topology.name}")
        return (self.level[to], to) < (self.level[frm], frm)

    def up_end(self, u: int, v: int) -> int:
        """The endpoint of link ``u-v`` closer to the root."""
        return v if self.is_up(u, v) else u

    # ------------------------------------------------------------------ #
    # RoutingAlgorithm interface
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return "updown"

    def distances(self) -> np.ndarray:
        """All-pairs shortest legal distances (symmetric for up*/down*)."""
        if self._dist is None:
            n = self.topology.num_switches
            d = np.empty((n, n), dtype=np.int64)
            for src in range(n):
                df = self._forward_bfs(src).astype(float)
                df[df < 0] = np.inf  # unreachable in that phase
                best = np.minimum(df[Phase.UP], df[Phase.DOWN])
                if np.isinf(best).any():
                    missing = int(np.nonzero(np.isinf(best))[0][0])
                    raise RuntimeError(f"updown: {missing} unreachable from {src}")
                d[src] = best.astype(np.int64)
            self._dist = d
        return self._dist

    def links_on_shortest_paths(self, src: int, dst: int) -> FrozenSet[Link]:
        if src == dst:
            return frozenset()
        df = self._forward_bfs(src)
        db = self._backward_dist(dst)
        finite = [int(df[p, dst]) for p in (Phase.UP, Phase.DOWN) if df[p, dst] >= 0]
        if not finite:
            raise RuntimeError(f"updown: {dst} unreachable from {src}")
        total = min(finite)
        links = set()
        n = self.topology.num_switches
        for phase in (Phase.UP, Phase.DOWN):
            for u in range(n):
                fu = df[phase, u]
                if fu < 0:
                    continue
                for v, nphase in self._succ[phase][u]:
                    bv = db[nphase, v]
                    if bv >= 0 and fu + 1 + bv == total:
                        links.add((u, v) if u < v else (v, u))
        return frozenset(links)

    def next_hops(self, current: int, phase: Phase, dst: int) -> Tuple[Hop, ...]:
        if current == dst:
            return ()
        db = self._backward_dist(dst)
        here = db[phase, current]
        if here < 0:
            return ()
        out = [
            (v, nphase)
            for v, nphase in self._succ[phase][current]
            if db[nphase, v] == here - 1
        ]
        out.sort()
        return tuple(out)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _add_edge(self, u: int, pu: Phase, v: int, pv: Phase) -> None:
        self._succ[pu][u].append((v, pv))
        self._pred[pv][v].append((u, pu))

    def _forward_bfs(self, src: int) -> np.ndarray:
        """Distances from state ``(src, UP)`` to every state; shape (2, N)."""
        n = self.topology.num_switches
        dist = np.full((2, n), _UNREACHED, dtype=np.int64)
        dist[Phase.UP, src] = 0
        frontier: List[Hop] = [(src, Phase.UP)]
        d = 0
        while frontier:
            d += 1
            nxt: List[Hop] = []
            for u, pu in frontier:
                for v, pv in self._succ[pu][u]:
                    if dist[pv, v] == _UNREACHED:
                        dist[pv, v] = d
                        nxt.append((v, pv))
            frontier = nxt
        return dist

    def _backward_dist(self, dst: int) -> np.ndarray:
        """Remaining legal distance from every state to switch ``dst``.

        BFS over reversed state edges from both ``(dst, UP)`` and
        ``(dst, DOWN)`` (arriving in either phase completes the route).
        Cached per destination — the simulator queries this on every hop.
        """
        cached = self._db.get(dst)
        if cached is not None:
            return cached
        n = self.topology.num_switches
        dist = np.full((2, n), _UNREACHED, dtype=np.int64)
        dist[Phase.UP, dst] = 0
        dist[Phase.DOWN, dst] = 0
        frontier: List[Hop] = [(dst, Phase.UP), (dst, Phase.DOWN)]
        d = 0
        while frontier:
            d += 1
            nxt: List[Hop] = []
            for v, pv in frontier:
                for u, pu in self._pred[pv][v]:
                    if dist[pu, u] == _UNREACHED:
                        dist[pu, u] = d
                        nxt.append((u, pu))
            frontier = nxt
        self._db[dst] = dist
        return dist


__all__ = ["UpDownRouting", "bfs_levels", "choose_root"]
