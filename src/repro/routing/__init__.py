"""Routing algorithms for switch-based networks.

The paper's distance model is explicitly routing-aware: only links on
shortest paths *supplied by the routing algorithm* enter the equivalent
resistance computation, and the motivating example is the up*/down* scheme
of Autonet, which forbids some minimal paths and concentrates traffic near
the spanning-tree root.

This package provides:

- :class:`~repro.routing.updown.UpDownRouting` — up*/down* routing built on
  a BFS spanning tree with (level, id) link orientation;
- :class:`~repro.routing.minimal.MinimalRouting` — unrestricted shortest
  path routing, the baseline the model must distinguish from;
- :class:`~repro.routing.tables.RoutingTable` — per-destination next-hop
  tables consumed by the flit-level simulator;
- :mod:`~repro.routing.deadlock` — channel-dependency-graph analysis used
  to verify that up*/down* tables are deadlock-free.
"""

from repro.routing.base import Phase, RoutingAlgorithm
from repro.routing.updown import UpDownRouting
from repro.routing.minimal import MinimalRouting
from repro.routing.tables import RoutingTable, build_routing_table
from repro.routing.deadlock import channel_dependency_graph, is_deadlock_free

__all__ = [
    "Phase",
    "RoutingAlgorithm",
    "UpDownRouting",
    "MinimalRouting",
    "RoutingTable",
    "build_routing_table",
    "channel_dependency_graph",
    "is_deadlock_free",
]
