"""Routing-algorithm interface.

Legality in up*/down* routing depends on *how* a packet reached its current
switch (once it has travelled a "down" link it may never go up again), so
the interface threads a :class:`Phase` through every hop decision.  A
routing algorithm without history (minimal routing) simply ignores it.

All algorithms expose:

- all-pairs *legal* shortest distances (``distances``),
- the set of links lying on any shortest legal path between a pair
  (``links_on_shortest_paths``) — the input to the equivalent-distance
  model of :mod:`repro.distance`,
- per-hop next-hop enumeration (``next_hops``) — the input to the
  simulator's routing tables.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.topology.graph import Link, Topology


class Phase(enum.IntEnum):
    """Routing phase of a packet.

    ``UP``  — the packet has only traversed up links so far (or none);
              it may still ascend toward the spanning-tree root.
    ``DOWN`` — the packet has taken at least one down link; it may only
               descend from now on.

    Phase-free algorithms use ``UP`` throughout.
    """

    UP = 0
    DOWN = 1


# A next-hop option: (neighbor switch, phase after taking the hop).
Hop = Tuple[int, Phase]


class RoutingAlgorithm(ABC):
    """Common contract for routing algorithms over a fixed topology."""

    def __init__(self, topology: Topology):
        if not topology.is_connected():
            raise ValueError(
                f"routing requires a connected topology; {topology.name} is not"
            )
        self.topology = topology

    # -- identity ------------------------------------------------------- #

    @property
    @abstractmethod
    def name(self) -> str:
        """Short label used in reports ('updown', 'minimal', ...)."""

    def initial_phase(self) -> Phase:
        """Phase of a freshly injected packet."""
        return Phase.UP

    # -- distances ------------------------------------------------------ #

    @abstractmethod
    def distances(self) -> np.ndarray:
        """All-pairs shortest *legal* path lengths (hops), shape ``(N, N)``.

        Must satisfy ``d[i, i] == 0`` and ``d[i, j] >= hop_distance(i, j)``
        (legality can only lengthen paths).  The matrix need not be
        symmetric for arbitrary algorithms, though up*/down* distances are.
        """

    @abstractmethod
    def links_on_shortest_paths(self, src: int, dst: int) -> FrozenSet[Link]:
        """Undirected links used by at least one shortest legal src→dst path.

        Empty for ``src == dst``.  This is the resistor-network support for
        the equivalent-distance model.
        """

    # -- per-hop decisions ---------------------------------------------- #

    @abstractmethod
    def next_hops(self, current: int, phase: Phase, dst: int) -> Tuple[Hop, ...]:
        """Neighbours reachable in one legal hop that lie on a shortest legal
        continuation toward ``dst`` from state ``(current, phase)``.

        Returns an empty tuple when ``current == dst`` or when no legal
        continuation exists from this state (a packet can never actually be
        in such a state if it was routed consistently from injection).
        """

    # -- helpers shared by subclasses ------------------------------------ #

    def shortest_path(self, src: int, dst: int) -> Sequence[int]:
        """One concrete shortest legal path (lowest-id tie-break), inclusive."""
        path = [src]
        current, phase = src, self.initial_phase()
        guard = 0
        while current != dst:
            hops = self.next_hops(current, phase, dst)
            if not hops:
                raise RuntimeError(
                    f"{self.name}: no legal continuation from ({current}, {phase.name}) "
                    f"to {dst}"
                )
            current, phase = min(hops)
            path.append(current)
            guard += 1
            if guard > 4 * self.topology.num_switches:
                raise RuntimeError(f"{self.name}: path construction did not terminate")
        return path

    def average_distance(self) -> float:
        """Mean legal distance over ordered pairs ``i != j``."""
        d = self.distances().astype(float)
        n = d.shape[0]
        if n < 2:
            return 0.0
        return float((d.sum() - np.trace(d)) / (n * (n - 1)))


__all__ = ["Phase", "Hop", "RoutingAlgorithm"]
