"""Unrestricted minimal (shortest-path) routing.

The baseline against which up*/down* restrictions are measured: every
minimal path is legal, the phase is ignored, and the shortest-path link
support is computed from plain forward/backward BFS.  Note that minimal
routing on arbitrary topologies is *not* deadlock-free for wormhole
switching (see :mod:`repro.routing.deadlock`); the simulator accepts it for
ablations but the paper's configuration uses up*/down*.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.routing.base import Hop, Phase, RoutingAlgorithm
from repro.topology.graph import Link, Topology

_UNREACHED = -1


class MinimalRouting(RoutingAlgorithm):
    """Shortest-path routing with every minimal path allowed."""

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._dist: Optional[np.ndarray] = None
        self._db: Dict[int, np.ndarray] = {}

    @property
    def name(self) -> str:
        return "minimal"

    def distances(self) -> np.ndarray:
        if self._dist is None:
            self._dist = self.topology.hop_distances()
            if (self._dist < 0).any():
                raise RuntimeError("minimal routing on a disconnected topology")
        return self._dist

    def _dist_to(self, dst: int) -> np.ndarray:
        """BFS distances from every switch to ``dst`` (symmetric graph)."""
        cached = self._db.get(dst)
        if cached is not None:
            return cached
        n = self.topology.num_switches
        dist = np.full(n, _UNREACHED, dtype=np.int64)
        dist[dst] = 0
        frontier = [dst]
        d = 0
        while frontier:
            d += 1
            nxt = []
            for u in frontier:
                for v in self.topology.neighbors(u):
                    if dist[v] == _UNREACHED:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        self._db[dst] = dist
        return dist

    def links_on_shortest_paths(self, src: int, dst: int) -> FrozenSet[Link]:
        if src == dst:
            return frozenset()
        dsrc = self._dist_to(src)  # == distances from src (undirected graph)
        ddst = self._dist_to(dst)
        total = int(dsrc[dst])
        links = set()
        for u, v in self.topology.links:
            # The link u-v is on a shortest path if traversing it in either
            # direction keeps the total length minimal.
            if dsrc[u] + 1 + ddst[v] == total or dsrc[v] + 1 + ddst[u] == total:
                links.add((u, v))
        return frozenset(links)

    def next_hops(self, current: int, phase: Phase, dst: int) -> Tuple[Hop, ...]:
        if current == dst:
            return ()
        ddst = self._dist_to(dst)
        here = ddst[current]
        out = [
            (v, Phase.UP)
            for v in self.topology.neighbors(current)
            if ddst[v] == here - 1
        ]
        return tuple(out)


__all__ = ["MinimalRouting"]
