"""Channel-dependency-graph deadlock analysis (Dally & Seitz / Duato).

For wormhole switching without virtual channels, a routing function is
deadlock-free if its channel dependency graph (CDG) is acyclic: nodes are
directed channels ``u → v``; an edge ``(u→v) → (v→w)`` exists when some
packet may hold ``u→v`` while requesting ``v→w``.

Up*/down* routing is deadlock-free by construction (a down traversal can
never be followed by an up traversal, and up-only / down-only subgraphs are
DAGs ordered by (level, id)); the test-suite verifies this property on the
actual tables.  Minimal routing on cyclic topologies generally is *not*
deadlock-free — the rings used in tests demonstrate the cycle.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.routing.base import Phase, RoutingAlgorithm

Channel = Tuple[int, int]  # directed link u -> v


def channel_dependency_graph(routing: RoutingAlgorithm) -> Dict[Channel, Set[Channel]]:
    """Build the CDG induced by the routing function over all destinations.

    An edge is recorded whenever, for some destination, a packet can arrive
    at ``v`` over channel ``(u, v)`` in phase ``p`` and legally continue on
    ``(v, w)``.  The arrival phase is taken from the hop tuple the routing
    function itself returns, so this analyzes exactly the paths the
    simulator would use.
    """
    topo = routing.topology
    n = topo.num_switches
    deps: Dict[Channel, Set[Channel]] = {}
    for u, v in topo.links:
        deps[(u, v)] = set()
        deps[(v, u)] = set()
    for dst in range(n):
        for src in range(n):
            if src == dst:
                continue
            # Walk breadth-first over (switch, phase) states actually
            # reachable when routing src -> dst.
            seen: Set[Tuple[int, Phase]] = set()
            frontier: List[Tuple[int, Phase]] = [(src, routing.initial_phase())]
            while frontier:
                nxt: List[Tuple[int, Phase]] = []
                for s, p in frontier:
                    if (s, p) in seen:
                        continue
                    seen.add((s, p))
                    for v1, p1 in routing.next_hops(s, p, dst):
                        for v2, _p2 in routing.next_hops(v1, p1, dst):
                            deps[(s, v1)].add((v1, v2))
                        if (v1, p1) not in seen:
                            nxt.append((v1, p1))
                frontier = nxt
    return deps


def is_deadlock_free(routing: RoutingAlgorithm) -> bool:
    """True when the routing function's CDG is acyclic."""
    deps = channel_dependency_graph(routing)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Channel, int] = {c: WHITE for c in deps}
    for start in deps:
        if color[start] != WHITE:
            continue
        stack: List[Tuple[Channel, List[Channel]]] = [(start, list(deps[start]))]
        color[start] = GRAY
        while stack:
            node, todo = stack[-1]
            if todo:
                child = todo.pop()
                if color[child] == GRAY:
                    return False
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, list(deps[child])))
            else:
                color[node] = BLACK
                stack.pop()
    return True


__all__ = ["Channel", "channel_dependency_graph", "is_deadlock_free"]
