"""Traffic patterns and message arrival processes.

The paper's evaluation traffic is *100 % intracluster uniform*: every
process sends only to other processes of its own logical cluster, all
processes inject at the same rate (:class:`IntraClusterTraffic` with
``intercluster_fraction=0``).  :class:`UniformTraffic` and
:class:`HotspotTraffic` cover the standard comparison patterns, and the
``intercluster_fraction`` knob implements the paper's future-work
relaxation of the all-intracluster assumption.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from repro.core.mapping import ProcessMapping
from repro.topology.graph import Topology
from repro.util.validation import check_probability


class TrafficPattern(ABC):
    """Chooses a destination host for each generated message."""

    @abstractmethod
    def dest_for(self, src_host: int, rng: random.Random) -> int:
        """Destination host for a message from ``src_host`` (never the source)."""

    @abstractmethod
    def active_hosts(self) -> Sequence[int]:
        """Hosts that generate traffic under this pattern."""

    def rate_scale(self, host: int) -> float:
        """Per-host multiplier on the nominal injection rate (default 1)."""
        return 1.0


class UniformTraffic(TrafficPattern):
    """Every host sends to every other host uniformly."""

    def __init__(self, topology: Topology):
        if topology.num_hosts < 2:
            raise ValueError("uniform traffic needs at least two hosts")
        self.topology = topology
        self._hosts = list(range(topology.num_hosts))

    def dest_for(self, src_host: int, rng: random.Random) -> int:
        dst = rng.randrange(self.topology.num_hosts - 1)
        return dst if dst < src_host else dst + 1

    def active_hosts(self) -> Sequence[int]:
        return self._hosts


class IntraClusterTraffic(TrafficPattern):
    """The paper's pattern: destinations uniform within the sender's cluster.

    Parameters
    ----------
    mapping:
        Process→host mapping; the logical-cluster structure and the hosts
        that actually run processes are read from it.
    intercluster_fraction:
        Probability that a message instead picks a uniform destination in a
        *different* cluster (0 reproduces the paper; >0 is the extension).
    weighted:
        When True, hosts inject proportionally to their logical cluster's
        ``comm_weight`` (extension beyond the equal-requirements
        assumption).
    """

    def __init__(self, mapping: ProcessMapping, *,
                 intercluster_fraction: float = 0.0, weighted: bool = False):
        check_probability(intercluster_fraction, "intercluster_fraction")
        self.intercluster_fraction = intercluster_fraction
        self.weighted = weighted
        self.cluster_of: Dict[int, int] = mapping.cluster_of_host()
        if not self.cluster_of:
            raise ValueError("mapping places no processes")
        self.hosts_by_cluster: Dict[int, List[int]] = {}
        for h, c in sorted(self.cluster_of.items()):
            self.hosts_by_cluster.setdefault(c, []).append(h)
        for c, hosts in self.hosts_by_cluster.items():
            if len(hosts) < 2:
                raise ValueError(
                    f"cluster {c} has a single host; intracluster traffic "
                    "needs at least two"
                )
        self._weights = {
            c: mapping.workload.clusters[c].comm_weight
            for c in self.hosts_by_cluster
        }
        self._all_clusters = sorted(self.hosts_by_cluster)

    def dest_for(self, src_host: int, rng: random.Random) -> int:
        c = self.cluster_of[src_host]
        if (self.intercluster_fraction > 0.0
                and len(self._all_clusters) > 1
                and rng.random() < self.intercluster_fraction):
            others = [x for x in self._all_clusters if x != c]
            target = others[rng.randrange(len(others))]
            hosts = self.hosts_by_cluster[target]
            return hosts[rng.randrange(len(hosts))]
        hosts = self.hosts_by_cluster[c]
        while True:
            dst = hosts[rng.randrange(len(hosts))]
            if dst != src_host:
                return dst

    def active_hosts(self) -> Sequence[int]:
        return sorted(self.cluster_of)

    def rate_scale(self, host: int) -> float:
        if not self.weighted:
            return 1.0
        return self._weights[self.cluster_of[host]]


class HotspotTraffic(TrafficPattern):
    """Uniform traffic with a fraction directed at hotspot hosts."""

    def __init__(self, topology: Topology, hotspots: Sequence[int],
                 hotspot_fraction: float = 0.2):
        check_probability(hotspot_fraction, "hotspot_fraction")
        if not hotspots:
            raise ValueError("need at least one hotspot host")
        for h in hotspots:
            if not (0 <= h < topology.num_hosts):
                raise ValueError(f"hotspot host {h} out of range")
        self.uniform = UniformTraffic(topology)
        self.hotspots = list(hotspots)
        self.hotspot_fraction = hotspot_fraction

    def dest_for(self, src_host: int, rng: random.Random) -> int:
        if rng.random() < self.hotspot_fraction:
            candidates = [h for h in self.hotspots if h != src_host]
            if candidates:
                return candidates[rng.randrange(len(candidates))]
        return self.uniform.dest_for(src_host, rng)

    def active_hosts(self) -> Sequence[int]:
        return self.uniform.active_hosts()


__all__ = [
    "TrafficPattern",
    "UniformTraffic",
    "IntraClusterTraffic",
    "HotspotTraffic",
]
