"""Simulation outcome records.

Units follow the paper: *traffic* is the flit reception rate in flits per
switch per cycle; *latency* is in cycles from header injection to tail
delivery; *throughput* is the maximum accepted traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.stats import RunningStats


@dataclass
class SimulationResult:
    """Measurements of one simulation run at one offered load.

    ``meta`` carries deterministic context (topology/routing names, the
    engine that produced the run, arbitration-conflict counters, skipped
    cycles); ``perf`` carries wall-clock phase timings.  Wall times vary
    run to run, so ``perf`` is excluded from equality: two results are
    equal exactly when their seed-determined payloads are.
    """

    offered_flits_per_switch_cycle: float
    accepted_flits_per_switch_cycle: float
    avg_latency: float
    latency: RunningStats
    total_latency: RunningStats
    messages_completed: int
    messages_generated: int
    flits_consumed_measured: int
    cycles_measured: int
    warmup_cycles: int
    latency_percentiles: Optional[Dict[str, float]] = None
    meta: Dict[str, object] = field(default_factory=dict)
    perf: Dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: accepted materially below offered.

        Accepted tracking offered within 5 % means the network still
        delivers what the sources produce; a larger shortfall marks
        saturation (source queues growing).
        """
        if self.offered_flits_per_switch_cycle <= 0:
            return False
        ratio = (self.accepted_flits_per_switch_cycle
                 / self.offered_flits_per_switch_cycle)
        return ratio < 0.95

    def summary_row(self) -> Dict[str, float]:
        """Compact dict of the headline numbers (for tables/logging)."""
        return {
            "offered": self.offered_flits_per_switch_cycle,
            "accepted": self.accepted_flits_per_switch_cycle,
            "latency": self.avg_latency,
            "completed": self.messages_completed,
            "saturated": float(self.saturated),
        }

    def __repr__(self) -> str:
        lat = "nan" if math.isnan(self.avg_latency) else f"{self.avg_latency:.1f}"
        return (
            f"SimulationResult(offered={self.offered_flits_per_switch_cycle:.4f}, "
            f"accepted={self.accepted_flits_per_switch_cycle:.4f}, "
            f"latency={lat}, completed={self.messages_completed})"
        )


__all__ = ["SimulationResult"]
