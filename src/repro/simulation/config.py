"""Simulator configuration.

Defaults follow the standard Duato-school evaluation setup of the paper's
era: 16-flit messages, small (2-flit) channel buffers, 1 flit/cycle links,
one injection channel per workstation and one delivery channel per
workstation port, adaptive selection among the legal shortest up*/down*
output ports with random arbitration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.validation import check_positive


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the wormhole simulator.

    Attributes
    ----------
    message_length:
        Flits per message (header included).
    buffer_flits:
        FIFO buffer capacity of every channel, in flits.
    delivery_channels:
        Concurrent message drains per switch (``None`` = hosts per switch).
    virtual_channels:
        Virtual channels multiplexed on every physical inter-switch link
        (each with its own ``buffer_flits`` FIFO; the link still moves at
        most 1 flit/cycle).  The paper's setting is 1; >1 reduces
        head-of-line blocking and is exercised by the VC ablation bench.
    adaptive:
        ``True``: the header may take any free legal shortest output port
        (selected uniformly at random); ``False``: deterministic routing —
        always the first legal port.
    warmup_cycles / measure_cycles:
        Cycles discarded before measurement / measured.
    queue_capacity:
        Pending messages a host can hold; arrivals are postponed (source
        throttled) when full, which bounds memory in deep saturation.
    record_trace:
        Record one ``(cycle, src_host, dst_host, length)`` tuple per
        generated message in ``simulator.trace`` — the raw material for
        communication-requirement estimation (see
        :mod:`repro.simulation.probe`).  Off by default: a saturated run
        generates many messages.
    seed:
        Seed of the simulator's own RNG (arrival times, destination draws,
        arbitration coin flips).
    engine:
        Which engine executes the model: ``"fast"`` (the struct-of-arrays
        kernel with quiescence skipping, the default), ``"reference"``
        (the per-``Message`` model in :mod:`repro.simulation.network`),
        ``"batch"`` (the many-replication lockstep kernel in
        :mod:`repro.simulation.engine_batch`; solo runs get a batch of
        one, and ``simulate_batch`` runs many seeds/rates at once) or
        ``"vector"`` (the numpy-vectorized many-replication kernel in
        :mod:`repro.simulation.engine_vector`).  The first three are
        bit-identical — same RNG draw order, same
        :class:`SimulationResult` payload for every seed — so within
        that tier this is purely a performance knob; the three-way
        parity suite (``tests/simulation/test_engine_parity.py``)
        enforces it.  ``"vector"`` is opt-in and relaxes the contract to
        *statistical equivalence*: deterministic per seed, same latency/
        throughput distributions, different draw order (enforced by
        ``tests/simulation/test_engine_equivalence.py``).
    """

    message_length: int = 16
    buffer_flits: int = 2
    delivery_channels: Optional[int] = None
    virtual_channels: int = 1
    adaptive: bool = True
    warmup_cycles: int = 1000
    measure_cycles: int = 4000
    queue_capacity: int = 16
    record_trace: bool = False
    seed: int = 0
    engine: str = "fast"

    def __post_init__(self):
        check_positive(self.message_length, "message_length")
        check_positive(self.buffer_flits, "buffer_flits")
        check_positive(self.virtual_channels, "virtual_channels")
        if self.delivery_channels is not None:
            check_positive(self.delivery_channels, "delivery_channels")
        if self.warmup_cycles < 0:
            raise ValueError(f"warmup_cycles must be >= 0, got {self.warmup_cycles}")
        check_positive(self.measure_cycles, "measure_cycles")
        check_positive(self.queue_capacity, "queue_capacity")
        if self.engine not in ("reference", "fast", "batch", "vector"):
            raise ValueError(
                f"engine must be 'reference', 'fast', 'batch' or "
                f"'vector', got {self.engine!r}"
            )


__all__ = ["SimulationConfig"]
