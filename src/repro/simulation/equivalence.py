"""Statistical-equivalence contract between simulation engines.

The ``reference``/``fast``/``batch`` engines are bit-identical: every RNG
draw and arbitration decision happens in the same order, so their payloads
can be compared with ``==``.  The ``vector`` engine deliberately breaks
that contract — it draws per-replication counter-based streams and
arbitrates whole arrays at once — so it is deterministic given
``(seed, engine)`` but *not* draw-order-identical to the reference
lineage.  Its correctness claim is statistical: across many seeds, the
distributions of mean latency and delivered throughput at every
``(traffic, rate)`` point must be indistinguishable from the reference
lineage's, and the paper's qualitative orderings (OP beating the random
mappings) must survive the engine swap.

This module is that claim as code.  It is dependency-light on purpose:
CI installs numpy but not scipy, so the Welch t-test p-value is computed
from first principles — Student's t CDF via the regularized incomplete
beta function (continued fraction + ``math.lgamma``), accurate to ~1e-10
over the ranges we use, cross-checked against scipy in the test suite
when scipy happens to be present.

Decision rule
-------------
A metric point fails only when BOTH detectors fire:

- Welch's t-test rejects equal means at ``alpha`` (two-sided), and
- the two ``(1 - alpha)`` confidence intervals for the mean are disjoint.

Either test alone is noisy at n≈30: the t-test flags tiny-but-real
implementation differences of no practical consequence (and flukes at a
rate of ``alpha``), while CI overlap alone under-rejects.  Requiring both
keeps the checker sensitive to genuine bugs (a mis-seeded stream or a
dropped arbitration shifts latency by whole cycles, failing both
decisively) yet stable across seed choices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "EquivalencePoint",
    "EquivalenceReport",
    "check_equivalence",
    "check_rank_preservation",
    "mean_ci",
    "student_t_cdf",
    "student_t_sf",
    "welch_t",
]

# Two-sided significance level and the matching CI coverage.  0.01 keeps
# the family-wise false-alarm rate manageable across the ~dozens of
# (metric, rate) points a full equivalence run inspects.
DEFAULT_ALPHA = 0.01

_MAX_CF_ITER = 300
_CF_EPS = 1e-12
_TINY = 1e-300


# --------------------------------------------------------------------- #
# Student's t distribution from first principles (no scipy)
# --------------------------------------------------------------------- #

def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta function.

    Lentz's algorithm, as in Numerical Recipes §6.4.  Converges in a few
    dozen iterations for the ``x < (a + 1) / (a + b + 2)`` regime the
    caller guarantees.
    """
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_CF_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _CF_EPS:
            break
    return h


def _betainc_reg(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the
    # fast-converging regime of the continued fraction.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """P(T <= t) for Student's t with ``df`` degrees of freedom."""
    if df <= 0.0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    p = 0.5 * _betainc_reg(0.5 * df, 0.5, x)
    return p if t < 0.0 else 1.0 - p


def student_t_sf(t: float, df: float) -> float:
    """Two-sided survival: P(|T| >= |t|)."""
    if df <= 0.0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    x = df / (df + t * t)
    return _betainc_reg(0.5 * df, 0.5, x)


def _t_quantile(p: float, df: float) -> float:
    """Upper-tail quantile: t such that P(T > t) = p, for p in (0, 0.5).

    Bisection on the monotone CDF — a handful of extra iterations beats
    carrying an inverse-incomplete-beta implementation, and this runs a
    few times per report, not per sample.
    """
    if not 0.0 < p < 0.5:
        raise ValueError(f"quantile p must be in (0, 0.5), got {p}")
    lo, hi = 0.0, 2.0
    while 1.0 - student_t_cdf(hi, df) > p:
        hi *= 2.0
        if hi > 1e8:  # pragma: no cover - df >= 1 converges long before
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if 1.0 - student_t_cdf(mid, df) > p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


# --------------------------------------------------------------------- #
# Welch's t-test and confidence intervals
# --------------------------------------------------------------------- #

def _mean_var(xs: Sequence[float]) -> Tuple[float, float, int]:
    n = len(xs)
    if n < 2:
        raise ValueError(f"need at least 2 samples per side, got {n}")
    mean = math.fsum(xs) / n
    var = math.fsum((x - mean) ** 2 for x in xs) / (n - 1)
    return mean, var, n


def welch_t(
    xs: Sequence[float], ys: Sequence[float],
) -> Tuple[float, float, float]:
    """Welch's unequal-variance t-test.

    Returns ``(t_statistic, degrees_of_freedom, two_sided_p)``.  Two
    identically-constant samples compare equal (t = 0, p = 1) rather
    than dividing by zero — degenerate but legitimate at rates so low
    that every seed delivers every message with identical latency.
    """
    mx, vx, nx = _mean_var(xs)
    my, vy, ny = _mean_var(ys)
    sx, sy = vx / nx, vy / ny
    se2 = sx + sy
    if se2 == 0.0:
        return (0.0, float(nx + ny - 2), 1.0) if mx == my else (
            math.inf, float(nx + ny - 2), 0.0)
    t = (mx - my) / math.sqrt(se2)
    # Welch–Satterthwaite degrees of freedom.
    df = se2 * se2 / (
        (sx * sx) / (nx - 1) + (sy * sy) / (ny - 1)
    )
    return t, df, student_t_sf(t, df)


def mean_ci(
    xs: Sequence[float], alpha: float = DEFAULT_ALPHA,
) -> Tuple[float, float, float]:
    """``(mean, lo, hi)`` — the two-sided ``1 - alpha`` CI for the mean."""
    mean, var, n = _mean_var(xs)
    if var == 0.0:
        return mean, mean, mean
    half = _t_quantile(alpha / 2.0, float(n - 1)) * math.sqrt(var / n)
    return mean, mean - half, mean + half


# --------------------------------------------------------------------- #
# The contract
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class EquivalencePoint:
    """Verdict for one (label, metric) sample pair."""

    label: str
    metric: str
    mean_a: float
    mean_b: float
    t_statistic: float
    df: float
    p_value: float
    ci_a: Tuple[float, float]
    ci_b: Tuple[float, float]
    rejected_by_t: bool
    cis_disjoint: bool

    @property
    def equivalent(self) -> bool:
        """Fails only when the t-test AND the CI check agree on a shift."""
        return not (self.rejected_by_t and self.cis_disjoint)


@dataclass
class EquivalenceReport:
    """All point verdicts of one engine-vs-engine comparison."""

    alpha: float
    points: List[EquivalencePoint] = field(default_factory=list)

    @property
    def failures(self) -> List[EquivalencePoint]:
        return [p for p in self.points if not p.equivalent]

    @property
    def equivalent(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """Human-readable per-point verdict table (for assertion messages)."""
        lines = [
            f"equivalence @ alpha={self.alpha}: "
            f"{len(self.points) - len(self.failures)}/{len(self.points)} "
            f"points pass"
        ]
        for p in self.points:
            tag = "ok  " if p.equivalent else "FAIL"
            lines.append(
                f"  [{tag}] {p.label}/{p.metric}: "
                f"{p.mean_a:.4g} vs {p.mean_b:.4g} "
                f"(t={p.t_statistic:+.3f}, df={p.df:.1f}, p={p.p_value:.4f})"
            )
        return "\n".join(lines)


def check_equivalence(
    samples_a: Dict[str, Dict[str, Sequence[float]]],
    samples_b: Dict[str, Dict[str, Sequence[float]]],
    alpha: float = DEFAULT_ALPHA,
) -> EquivalenceReport:
    """Compare two engines' per-point sample sets.

    ``samples_a[label][metric]`` is a sequence of per-seed measurements
    (e.g. ``label='OP@0.0108'``, ``metric='latency'``).  Both sides must
    provide the same (label, metric) grid; the verdict for each point is
    the combined t-test + CI rule described in the module docstring.
    The whole procedure is deterministic: same samples in, same report
    out, no RNG anywhere.
    """
    if set(samples_a) != set(samples_b):
        raise ValueError(
            "sample sets disagree on labels: "
            f"{sorted(set(samples_a) ^ set(samples_b))}"
        )
    report = EquivalenceReport(alpha=alpha)
    for label in sorted(samples_a):
        ma, mb = samples_a[label], samples_b[label]
        if set(ma) != set(mb):
            raise ValueError(
                f"label {label!r} disagrees on metrics: "
                f"{sorted(set(ma) ^ set(mb))}"
            )
        for metric in sorted(ma):
            xs, ys = list(ma[metric]), list(mb[metric])
            t, df, p = welch_t(xs, ys)
            mean_a, lo_a, hi_a = mean_ci(xs, alpha)
            mean_b, lo_b, hi_b = mean_ci(ys, alpha)
            report.points.append(EquivalencePoint(
                label=label,
                metric=metric,
                mean_a=mean_a,
                mean_b=mean_b,
                t_statistic=t,
                df=df,
                p_value=p,
                ci_a=(lo_a, hi_a),
                ci_b=(lo_b, hi_b),
                rejected_by_t=p < alpha,
                cis_disjoint=hi_a < lo_b or hi_b < lo_a,
            ))
    return report


def check_rank_preservation(
    scores_a: Dict[str, float],
    scores_b: Dict[str, float],
    higher_is_better: bool = True,
) -> Tuple[bool, List[str], List[str]]:
    """Do two engines rank the same contestants in the same order?

    Used for the paper's qualitative claim: the OP mapping outperforms
    R1/R2/R3 regardless of which engine simulates them.  Returns
    ``(preserved, order_a, order_b)`` where the orders list keys from
    best to worst.
    """
    if set(scores_a) != set(scores_b):
        raise ValueError(
            "score sets disagree on keys: "
            f"{sorted(set(scores_a) ^ set(scores_b))}"
        )

    def ranked(scores: Dict[str, float]) -> List[str]:
        # Sort by score with the key as a deterministic tie-break.
        return [k for k, _ in sorted(
            scores.items(),
            key=lambda kv: (-kv[1] if higher_is_better else kv[1], kv[0]),
        )]

    order_a, order_b = ranked(scores_a), ranked(scores_b)
    return order_a == order_b, order_a, order_b
