"""Flit-level wormhole network simulation.

Reimplementation of the paper's evaluation substrate (the methodology of
Duato [8]): switch-based irregular networks with wormhole switching,
up*/down* routing, finite channel buffers and 1 flit/cycle links.  The
simulator tracks each message as a *worm* — a contiguous chain of exclusively
held channels with per-channel flit counts — which is operationally
identical to per-flit simulation for wormhole switching with FIFO buffers
while being orders of magnitude cheaper in Python.

Key pieces:

- :class:`~repro.simulation.config.SimulationConfig` — message length,
  buffer depth, delivery channels, arbitration, warmup/measurement;
- :mod:`~repro.simulation.traffic` — traffic patterns (the paper's 100 %
  intracluster uniform pattern, plus uniform/hotspot/intercluster mixes);
- :mod:`~repro.simulation.engine` — the shared engine interface:
  :func:`~repro.simulation.engine.make_simulator` builds either the
  readable reference engine
  (:class:`~repro.simulation.network.WormholeNetworkSimulator`) or the
  bit-identical struct-of-arrays kernel
  (:class:`~repro.simulation.engine_fast.FastWormholeNetworkSimulator`)
  selected by ``SimulationConfig.engine``;
- :mod:`~repro.simulation.sweep` — load sweeps (the S1…S9 points) and
  saturation-throughput estimation.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.message import Message
from repro.simulation.traffic import (
    TrafficPattern,
    UniformTraffic,
    IntraClusterTraffic,
    HotspotTraffic,
)
from repro.simulation.network import WormholeNetworkSimulator
from repro.simulation.engine import (
    BIT_IDENTICAL_ENGINES,
    ENGINE_NAMES,
    EnginePerf,
    canonical_payload,
    make_simulator,
)
from repro.simulation.engine_fast import FastWormholeNetworkSimulator
from repro.simulation.engine_vector import (
    VectorWormholeNetworkSimulator,
    simulate_batch_vector,
)
from repro.simulation.metrics import SimulationResult
from repro.simulation.sweep import (
    LoadPoint,
    run_load_sweep,
    find_saturation_rate,
    make_load_points,
)
from repro.simulation.probe import (
    RequirementEstimate,
    estimate_requirements,
    probe_requirements,
)

__all__ = [
    "SimulationConfig",
    "Message",
    "TrafficPattern",
    "UniformTraffic",
    "IntraClusterTraffic",
    "HotspotTraffic",
    "WormholeNetworkSimulator",
    "FastWormholeNetworkSimulator",
    "VectorWormholeNetworkSimulator",
    "simulate_batch_vector",
    "BIT_IDENTICAL_ENGINES",
    "ENGINE_NAMES",
    "EnginePerf",
    "canonical_payload",
    "make_simulator",
    "SimulationResult",
    "LoadPoint",
    "run_load_sweep",
    "find_saturation_rate",
    "make_load_points",
    "RequirementEstimate",
    "estimate_requirements",
    "probe_requirements",
]
