"""The struct-of-arrays wormhole kernel — fast engine.

Same cycle-level semantics as the reference engine
(:class:`repro.simulation.network.WormholeNetworkSimulator`), **bit-identical**
for every seed: the single ``random.Random(config.seed)`` stream is consumed
in exactly the reference order, so every ``SimulationResult`` payload matches
(the parity suite ``tests/simulation/test_engine_parity.py`` enforces this).

What is different is the representation and the work skipped:

- **Struct of arrays.**  No per-``Message`` objects: worm state lives in
  preallocated flat Python lists indexed by *slot* (``to_inject``,
  ``consumed``, ``head_switch`` ...).  Each slot owns a fixed-width row of
  two flat arrays — held channel ids and per-channel flit counts — addressed
  by a tail column that only advances (channel release) and a head column
  that only advances (channel acquisition), so chain append and tail release
  are O(1) index bumps with no allocation.  A columnar NumPy shift kernel was
  prototyped and rejected by measurement: at the worm counts these networks
  sustain (tens), scalar flat-list indexing beats ``ndarray`` element access
  by ~4x, and the in-worm shift is a backward-dependent scan that does not
  vectorize cleanly (a flit draining at the head frees buffer space that the
  same cycle's upstream flits may enter).

- **Worm dormancy** (``virtual_channels == 1`` only).  A worm whose header
  lost no arbitration draw (its candidate channels were *all* owned, or its
  destination had zero delivery channels available — both cases consume no
  RNG in the reference engine) and whose flits cannot move is put to sleep.
  It is woken by watcher lists the moment one of its candidate channels is
  released or a delivery channel frees up at its destination switch; stale
  watcher entries are invalidated by per-slot epoch counters.  At saturation
  the vast majority of worms are blocked most cycles, so this removes most
  per-cycle work.  With ``virtual_channels > 1`` the shared physical-link
  budgets couple worms, so dormancy is disabled and the engine runs the
  budgeted, rotation-ordered path.

- **Sealed drains** (``virtual_channels == 1`` only).  Once a worm acquires
  a delivery channel its remaining trajectory is deterministic: the chain is
  frozen (no further arbitration, no RNG), the head consumes one flit per
  cycle whenever one is buffered, and exclusive ownership decouples it from
  every other worm.  The engine therefore *seals* it — the whole remainder
  (drain cycles, tail releases, completion cycle) is computed once in a
  tight local loop, channel releases are replayed as timed events at the
  top of the cycle where the reference-freed channel first becomes
  observable, and the worm drops out of per-cycle processing entirely.
  Measured-window flit consumption is credited in bulk with an exact
  per-cycle window test, and completion statistics are recorded at the
  true completion cycle in the reference rotation order.

- **Arrival parking.**  The reference engine re-pushes a throttled host's
  heap entry every cycle while its queue is full.  Here the host is parked
  and re-enters the heap (same ``(cycle + 1, host)`` entry the reference
  would have live) when an injection frees a queue slot — identical pop
  order, identical draws, no per-cycle heap churn in deep saturation.

- **Quiescence skipping** (``run()`` only; ``step()`` never skips).  When no
  worm is active, no message is queued and the next arrival lies in the
  future, every intervening cycle is a no-op in the reference engine —
  ``cycle`` jumps straight to the next arrival deadline and the jump is
  recorded in ``perf.cycles_skipped``.

- **Candidate caching.**  The ``(head_switch, phase, dst)`` → free-channel
  candidate list (hop-major, VC-minor — the reference construction order)
  is memoised, replacing the per-cycle routing-table walk and channel-map
  lookups.

Construct via :func:`repro.simulation.engine.make_simulator` with
``SimulationConfig(engine="fast")`` (the default).
"""

from __future__ import annotations

import heapq
import math
import random
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs import trace as _trace
from repro.routing.base import Phase
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import EnginePerf, record_engine_metrics
from repro.simulation.metrics import SimulationResult
from repro.simulation.traffic import TrafficPattern
from repro.util.stats import ReservoirSampler, RunningStats


class FastWormholeNetworkSimulator:
    """Struct-of-arrays engine; drop-in, bit-identical reference replacement.

    Parameters match :class:`~repro.simulation.network.WormholeNetworkSimulator`.
    """

    ENGINE_NAME = "fast"

    def __init__(self, routing_table: RoutingTable, traffic: TrafficPattern,
                 injection_rate: float, config: SimulationConfig = SimulationConfig()):
        if injection_rate < 0:
            raise ValueError(f"injection_rate must be >= 0, got {injection_rate}")
        self.table = routing_table
        self.topology = routing_table.topology
        self.traffic = traffic
        self.rate = injection_rate
        self.config = config
        self.rng = random.Random(config.seed)

        topo = self.topology
        # --- channel layout: identical ids to the reference engine ----------
        vcs = config.virtual_channels
        self.chan_of: Dict[Tuple[int, int], List[int]] = {}
        self.sink_switch: List[int] = []
        self.phys_of: List[int] = []
        phys = 0
        for u, v in topo.links:
            for a, b in ((u, v), (v, u)):
                cids = []
                for _ in range(vcs):
                    cids.append(len(self.sink_switch))
                    self.sink_switch.append(b)
                    self.phys_of.append(phys)
                self.chan_of[(a, b)] = cids
                phys += 1
        self.inj_base = len(self.sink_switch)
        self._host_switch: List[int] = []
        for h in range(topo.num_hosts):
            sw = topo.host_switch(h)
            self._host_switch.append(sw)
            self.sink_switch.append(sw)
            self.phys_of.append(phys)
            phys += 1
        self.num_channels = len(self.sink_switch)
        self.num_physical = phys
        self._link_budget = [1] * self.num_physical
        # Channel owner as a slot index; -1 = free.
        self.owner: List[int] = [-1] * self.num_channels

        dc = (config.delivery_channels if config.delivery_channels is not None
              else max(1, topo.hosts_per_switch))
        self.avail_delivery = [dc] * topo.num_switches

        # --- host state ------------------------------------------------------
        # Queue entries are (mid, dst_host, generated_cycle) tuples.
        self.queues: Dict[int, Deque[Tuple[int, int, int]]] = {}
        self._arrivals: List[Tuple[int, int]] = []  # heap of (cycle, host)
        self._host_rate: Dict[int, float] = {}
        for h in traffic.active_hosts():
            r = injection_rate * traffic.rate_scale(h)
            if r > 1.0:
                raise ValueError(
                    f"host {h} injection rate {r} exceeds 1 message/cycle"
                )
            self.queues[h] = deque()
            self._host_rate[h] = r
            if r > 0:
                heapq.heappush(self._arrivals, (self._gap(r), h))
        self._queued_total = 0
        # Injection ready set: h is a member iff its queue is non-empty AND
        # its injection channel is free — exactly the hosts the reference
        # engine's full queue scan would inject this cycle.  Iterated in
        # queues-dict order via _host_pos so worms join ``order`` in the
        # reference sequence.
        self._inj_ready: set = set()
        self._host_pos = {h: i for i, h in enumerate(self.queues)}
        # Host-indexed mirrors of the dicts above for the hot loops (list
        # indexing beats dict hashing); only active hosts' entries are
        # ever touched.
        nh = topo.num_hosts
        self._queue_list: List[Optional[Deque[Tuple[int, int, int]]]] = \
            [None] * nh
        self._parked_list = [False] * nh
        for h, q in self.queues.items():
            self._queue_list[h] = q

        # --- worm slots (struct of arrays) -----------------------------------
        # Every active worm owns >= 1 channel, so num_channels slots suffice;
        # +1 keeps the free list non-empty at the theoretical maximum.
        n_slots = self.num_channels + 1
        self._n_slots = n_slots
        # Chain rows: head column only advances (one bump per acquired
        # channel; shortest legal continuations bound acquisitions by the
        # switch count + the injection channel), tail column only advances
        # (release).  Width leaves slack so the overflow guard never fires
        # on legal routes.
        self._row_w = row_w = topo.num_switches + 4
        self._chain = [0] * (n_slots * row_w)
        self._occ = [0] * (n_slots * row_w)
        self._tcol = [0] * n_slots          # absolute index of the tail entry
        self._clen = [0] * n_slots          # held-channel count
        self._to_inject = [0] * n_slots
        self._consumed = [0] * n_slots
        self._head_sw = [0] * n_slots
        self._dst_sw = [0] * n_slots
        self._phase: List[Phase] = [Phase.UP] * n_slots
        self._draining = [False] * n_slots
        self._injected_at = [0] * n_slots
        self._generated_at = [0] * n_slots
        self._awake = [False] * n_slots
        self._epoch = [0] * n_slots
        self._arb_blocked = [0] * n_slots   # 0 none / 1 head / 2 delivery
        self._sealed = [False] * n_slots
        self._free_slots = list(range(n_slots - 1, -1, -1))
        #: Active worm slots, in the reference engine's ``self.active`` order.
        self.order: List[int] = []
        # The non-sealed subsequence of ``order``: the only slots the
        # per-cycle scan must visit (sealed worms are replayed, dormant
        # ones are skipped by their awake flag).  Freshly sealed slots
        # linger until the next completion batch compacts the list.
        self._live: List[int] = []

        # Dormancy wake watchers: lists of (slot, epoch) pairs.
        self._chan_watch: List[List[Tuple[int, int]]] = \
            [[] for _ in range(self.num_channels)]
        self._deliv_watch: List[List[Tuple[int, int]]] = \
            [[] for _ in range(topo.num_switches)]
        # Awake snapshot shared between the arbitration and move phases of
        # one cycle (rebuilt at the top of _arbitrate).
        self._awake_list: List[int] = []

        # Sealed-drain replay state: channel-release events applied at the
        # top of their cycle, completion events popped during the move
        # phase, and the completion-cycle releases of each sealed slot
        # (those are applied when the completion pops, which is exactly
        # when the reference engine frees them).
        # cycle -> channel ids freed at the top of that cycle.  A dict, not
        # a heap: while any entry is pending its worm's completion event
        # keeps ``order`` non-empty, so no cycle is skipped and every key
        # is visited exactly at its own cycle.  Within-cycle order is
        # unobservable (releases only clear ``owner`` and fire idempotent
        # wakes), so a plain list per cycle suffices.
        self._release_events: Dict[int, List[int]] = {}
        self._completions_due: List[Tuple[int, int]] = []   # (cycle, slot)
        self._final_cids: Dict[int, List[int]] = {}
        # Per-host log1p(-rate) for the inlined geometric gap draw; 0.0
        # flags rate >= 1 (gap is the constant 1, but the draw still
        # happens — the reference consumes u before branching).
        self._gap_denom = [0.0] * topo.num_hosts
        for h, r in self._host_rate.items():
            if r < 1.0:
                self._gap_denom[h] = math.log1p(-r)

        # (head_switch, phase, dst) -> ((cid, neighbor, phase), ...) in the
        # reference free-list construction order (hop-major, VC-minor).
        # Shared across every engine instance on this routing table (the
        # content is a pure function of table + vcs + adaptive), so a
        # second simulator starts with the store already warm.
        self._cand_cache: Dict[Tuple[int, Phase, int],
                               Tuple[Tuple[int, int, Phase], ...]] = \
            routing_table.candidate_cache(vcs, config.adaptive)
        # Per-slot memo of the current (head_switch, phase, dst) candidate
        # tuple, refreshed at injection and at every hop grant — the only
        # places the key can change — so the per-cycle arbitration scan
        # indexes a list instead of hashing a fresh key tuple.
        self._slot_cands: List[Tuple[Tuple[int, int, Phase], ...]] = \
            [()] * n_slots
        self._initial_phase = routing_table.routing.initial_phase()

        # --- bookkeeping -----------------------------------------------------
        self.cycle = 0
        self._next_mid = 0
        self.generated = 0
        self.flits_consumed_measured = 0
        self.latency_stats = RunningStats()
        self.total_latency_stats = RunningStats()
        self.latency_samples = ReservoirSampler(seed=config.seed)
        self.completed_in_window = 0
        self.trace: List[Tuple[int, int, int, int]] = []
        self.perf = EnginePerf()

    # ------------------------------------------------------------------ #
    # arrival process
    # ------------------------------------------------------------------ #

    def _gap(self, rate: float) -> int:
        """Geometric inter-arrival gap for a Bernoulli(rate) process, >= 1."""
        u = self.rng.random()
        return max(1, math.ceil(math.log(max(u, 1e-300)) / math.log1p(-rate))) \
            if rate < 1.0 else 1

    def _generate_arrivals(self) -> None:
        arrivals = self._arrivals
        if not arrivals or arrivals[0][0] > self.cycle:
            return
        cap = self.config.queue_capacity
        cycle = self.cycle
        rng = self.rng
        length = self.config.message_length
        record = self.config.record_trace
        while arrivals and arrivals[0][0] <= cycle:
            due, h = heapq.heappop(arrivals)
            q = self.queues[h]
            if len(q) >= cap:
                # Source throttled.  The reference engine re-pushes
                # (cycle + 1, h) every cycle; parking is draw-free and
                # re-creates exactly the entry the reference would hold
                # live when the queue next has room (see _start_injections).
                self._parked_list[h] = True
                continue
            dst = self.traffic.dest_for(h, rng)
            mid = self._next_mid
            self._next_mid += 1
            self.generated += 1
            if record:
                self.trace.append((cycle, h, dst, length))
            q.append((mid, dst, cycle))
            self._queued_total += 1
            if self.owner[self.inj_base + h] < 0:
                self._inj_ready.add(h)
            heapq.heappush(arrivals, (cycle + self._gap(self._host_rate[h]), h))

    def _start_injections(self) -> None:
        ready = self._inj_ready
        if not ready:
            return
        owner = self.owner
        inj_base = self.inj_base
        cycle = self.cycle
        free_slots = self._free_slots
        row_w = self._row_w
        length = self.config.message_length
        initial_phase = self._initial_phase
        host_switch = self._host_switch
        for h in sorted(ready, key=self._host_pos.__getitem__):
            q = self.queues[h]
            cid = inj_base + h
            mid, dst, gen_at = q.popleft()
            self._queued_total -= 1
            if self._parked_list[h]:
                # The queue has room again: restore the retry entry the
                # reference engine keeps live while throttled.
                self._parked_list[h] = False
                heapq.heappush(self._arrivals, (cycle + 1, h))
            slot = free_slots.pop()
            base = slot * row_w
            self._chain[base] = cid
            self._occ[base] = 0
            self._tcol[slot] = base
            self._clen[slot] = 1
            self._to_inject[slot] = length
            self._consumed[slot] = 0
            self._head_sw[slot] = host_switch[h]
            self._dst_sw[slot] = host_switch[dst]
            self._phase[slot] = initial_phase
            self._draining[slot] = False
            self._injected_at[slot] = cycle
            self._generated_at[slot] = gen_at
            self._awake[slot] = True
            self._arb_blocked[slot] = 0
            owner[cid] = slot
            self.order.append(slot)
        ready.clear()

    # ------------------------------------------------------------------ #
    # header arbitration
    # ------------------------------------------------------------------ #

    def _candidates(self, head_sw: int, phase: Phase,
                    dst_sw: int) -> Tuple[Tuple[int, int, Phase], ...]:
        key = (head_sw, phase, dst_sw)
        cands = self._cand_cache.get(key)
        if cands is None:
            hops = self.table.hops(head_sw, phase, dst_sw)
            if not hops:
                raise RuntimeError(
                    f"no legal continuation toward switch {dst_sw} at "
                    f"({head_sw}, {phase.name})"
                )
            if not self.config.adaptive:
                hops = hops[:1]
            cands = tuple(
                (cid, w, ph)
                for w, ph in hops
                for cid in self.chan_of[(head_sw, w)]
            )
            self._cand_cache[key] = cands
        return cands

    def _arbitrate(self) -> None:
        owner = self.owner
        rng = self.rng
        awake = self._awake
        draining = self._draining
        occ = self._occ
        tcol = self._tcol
        clen = self._clen
        head_sw = self._head_sw
        dst_sw = self._dst_sw
        phase = self._phase
        arb_blocked = self._arb_blocked
        cand_cache = self._cand_cache
        requests: Dict[int, List[Tuple[int, int, Phase]]] = {}
        delivery_requests: Dict[int, List[int]] = {}

        # One C-speed filter replaces per-phase interpreter-level dormancy
        # checks; the move phase reuses the list (worms woken *during* the
        # move phase are provably static for the rest of the cycle, exactly
        # as in the reference engine, so the snapshot is safe).
        awake_list = self._awake_list = [s for s in self.order if awake[s]]

        for slot in awake_list:
            c = clen[slot]
            if draining[slot] or c == 0 or occ[tcol[slot] + c - 1] == 0:
                continue
            hs = head_sw[slot]
            ds = dst_sw[slot]
            arb_blocked[slot] = 0
            if hs == ds:
                delivery_requests.setdefault(hs, []).append(slot)
                continue
            cands = cand_cache.get((hs, phase[slot], ds))
            if cands is None:
                cands = self._candidates(hs, phase[slot], ds)
            free = [cand for cand in cands if owner[cand[0]] < 0]
            if not free:
                # All candidate channels owned: the reference engine draws
                # nothing here, so this worm may sleep if also move-static.
                arb_blocked[slot] = 1
                continue
            cid, w, ph = (free[rng.randrange(len(free))]
                          if len(free) > 1 else free[0])
            requests.setdefault(cid, []).append((slot, w, ph))

        perf = self.perf
        chain = self._chain
        for cid, reqs in requests.items():
            perf.arb_requests += 1
            if len(reqs) > 1:
                perf.arb_conflicts += 1
            slot, w, ph = reqs[rng.randrange(len(reqs))] if len(reqs) > 1 else reqs[0]
            owner[cid] = slot
            j = tcol[slot] + clen[slot]
            if j >= (slot + 1) * self._row_w:  # pragma: no cover - guard
                raise AssertionError(f"chain row overflow for slot {slot}")
            chain[j] = cid
            occ[j] = 0
            clen[slot] += 1
            head_sw[slot] = w
            phase[slot] = ph

        avail_delivery = self.avail_delivery
        for sw, reqs in delivery_requests.items():
            avail = avail_delivery[sw]
            if avail <= 0:
                # No delivery channel and no shuffle draw in the reference
                # engine: every requester may sleep if also move-static.
                for slot in reqs:
                    arb_blocked[slot] = 2
                continue
            if len(reqs) > avail:
                perf.delivery_conflicts += 1
                rng.shuffle(reqs)
                reqs = reqs[:avail]
            for slot in reqs:
                draining[slot] = True
                avail_delivery[sw] -= 1

    # ------------------------------------------------------------------ #
    # flit movement
    # ------------------------------------------------------------------ #

    def _seal(self, slot: int, cycle: int) -> None:
        """Fast-forward a draining worm's deterministic remainder.

        With one virtual channel a draining worm is fully decoupled: its
        chain is frozen (no further arbitration, no RNG), the head drains
        one flit per cycle whenever one is buffered, and exclusive channel
        ownership means no other worm can touch its state.  The whole
        remaining trajectory is replayed here in a local loop over a copy
        of the worm's occupancy row.  A channel freed during the reference
        move phase of cycle ``r`` is first observable at the top of cycle
        ``r + 1``, so releases become heap events applied there; releases
        on the completion cycle are applied when the completion event pops
        (the reference frees them in the same move phase that records the
        completion).  Measured-window consumption is credited in bulk with
        an exact per-cycle window test — sealed worms keep ``order``
        non-empty, so no quiescence skip can jump the window.
        """
        t = self._tcol[slot]
        c = self._clen[slot]
        chain = self._chain
        locc = self._occ[t:t + c]
        ti = self._to_inject[slot]
        cons = self._consumed[slot]
        cap = self.config.buffer_flits
        length = self.config.message_length
        w0 = self.config.warmup_cycles
        w1 = w0 + self.config.measure_cycles

        if min(locc) > 0:
            # Bubble-free pipe: a perfect conveyor.  The head consumes one
            # flit every cycle (its feeder is never empty), which frees one
            # downstream slot per cycle, so *every* channel forwards one
            # flit per cycle until it has passed everything behind it —
            # channel j (tail-first) forwards ``S_j = to_inject +
            # occ[0..j]`` flits and empties on cycle ``cycle + S_j - 1``.
            # S is strictly increasing (every occ >= 1), so only the head
            # channel releases on the completion cycle.  The whole schedule
            # is closed-form: O(chain) instead of O(flits * chain).
            rem = ti + sum(locc)
            comp_c = cycle + rem - 1
            lo = cycle if cycle > w0 else w0
            hi = comp_c if comp_c < w1 - 1 else w1 - 1
            events = self._release_events
            final: List[int] = []
            s = ti
            for j in range(c):
                s += locc[j]
                r = cycle + s - 1
                if r < comp_c:
                    el = events.get(r + 1)
                    if el is None:
                        events[r + 1] = [chain[t + j]]
                    else:
                        el.append(chain[t + j])
                else:
                    final.append(chain[t + j])
            self.flits_consumed_measured += hi - lo + 1 if hi >= lo else 0
            self._final_cids[slot] = final
            heapq.heappush(self._completions_due, (comp_c, slot))
            self._sealed[slot] = True
            self._awake[slot] = False
            self._epoch[slot] += 1
            self._live.remove(slot)
            return

        meas = 0
        releases: List[Tuple[int, int]] = []
        tl = 0
        hl = c - 1
        k = cycle
        limit = cycle + (c + 2) * length + 8
        while True:
            # Same within-cycle order as the reference move phase:
            # drain, head-first shift, source injection, tail release.
            if locc[hl] > 0:
                locc[hl] -= 1
                cons += 1
                if w0 <= k < w1:
                    meas += 1
            for i in range(hl, tl, -1):
                if locc[i - 1] > 0 and locc[i] < cap:
                    locc[i - 1] -= 1
                    locc[i] += 1
            if ti > 0 and locc[tl] < cap:
                locc[tl] += 1
                ti -= 1
            while tl <= hl and ti == 0 and locc[tl] == 0:
                releases.append((k, chain[t + tl]))
                tl += 1
            if cons >= length:
                break
            k += 1
            if k > limit:  # pragma: no cover - progress guard
                raise AssertionError(f"sealed worm {slot} failed to drain")
        if tl != hl + 1:  # pragma: no cover - invariant guard
            raise AssertionError(
                f"sealed worm {slot} completed still holding channels"
            )
        self.flits_consumed_measured += meas
        events = self._release_events
        final: List[int] = []
        for r, cid in releases:
            if r < k:
                el = events.get(r + 1)
                if el is None:
                    events[r + 1] = [cid]
                else:
                    el.append(cid)
            else:
                final.append(cid)
        self._final_cids[slot] = final
        heapq.heappush(self._completions_due, (k, slot))
        self._sealed[slot] = True
        self._awake[slot] = False
        self._epoch[slot] += 1  # invalidate stale watcher entries
        self._live.remove(slot)

    def _move_flits_budgeted(self) -> None:
        """virtual_channels > 1: shared physical-link budgets couple worms,
        so process in the reference rotation order with budget accounting
        (dormancy stays off on this path)."""
        cap = self.config.buffer_flits
        owner = self.owner
        chain = self._chain
        occ = self._occ
        phys_of = self.phys_of
        budget = self._link_budget
        inj_base = self.inj_base
        queues = self.queues
        inj_ready = self._inj_ready
        for p in range(self.num_physical):
            budget[p] = 1
        tcol = self._tcol
        clen = self._clen
        to_inject = self._to_inject
        consumed = self._consumed
        draining = self._draining
        length = self.config.message_length
        cycle = self.cycle
        measuring = (self.config.warmup_cycles <= cycle
                     < self.config.warmup_cycles + self.config.measure_cycles)
        order = self.order
        n_active = len(order)
        start = cycle % n_active if n_active else 0
        completions: List[Tuple[int, int, int]] = []

        for k in range(n_active):
            idx = (start + k) % n_active
            slot = order[idx]
            t = tcol[slot]
            c = clen[slot]
            h = t + c - 1

            if draining[slot] and c and occ[h] > 0:
                occ[h] -= 1
                consumed[slot] += 1
                if measuring:
                    self.flits_consumed_measured += 1

            for i in range(h, t, -1):
                if occ[i - 1] > 0 and occ[i] < cap:
                    p = phys_of[chain[i]]
                    if budget[p] > 0:
                        budget[p] -= 1
                        occ[i - 1] -= 1
                        occ[i] += 1

            ti = to_inject[slot]
            if ti > 0 and c and occ[t] < cap:
                p = phys_of[chain[t]]
                if budget[p] > 0:
                    budget[p] -= 1
                    occ[t] += 1
                    ti -= 1
                    to_inject[slot] = ti

            while c and ti == 0 and occ[t] == 0:
                cid = chain[t]
                owner[cid] = -1
                if cid >= inj_base and queues[cid - inj_base]:
                    inj_ready.add(cid - inj_base)
                t += 1
                c -= 1
            tcol[slot] = t
            clen[slot] = c

            if consumed[slot] >= length:
                if c:  # pragma: no cover - invariant guard
                    raise AssertionError(
                        f"completed worm slot {slot} still holds channels"
                    )
                draining[slot] = False
                self.avail_delivery[self._dst_sw[slot]] += 1
                completions.append((k, slot, idx))

        if completions:
            self._finish_completions(completions, measuring, cycle)

    def _finish_completions(self, completions: List[Tuple[int, int, int]],
                            measuring: bool, cycle: int) -> None:
        """Record completion statistics in the reference rotation order and
        recycle the finished slots.

        ``completions`` holds ``(rotation_key, slot, raw_order_index)``
        triples; sorting by rotation key reproduces the reference's
        statistics order, and the raw indices let the finished slots be
        deleted from ``order`` without re-scanning it.
        """
        completions.sort()
        if measuring:
            # RunningStats.add and ReservoirSampler.add inlined — same
            # arithmetic, same draw logic — this runs once per delivered
            # message and the call overhead is measurable at saturation.
            ls = self.latency_stats
            ts = self.total_latency_stats
            res = self.latency_samples
            sample = res._sample
            rcap = res.capacity
            res_rand = res._rng.randrange
            injected_at = self._injected_at
            generated_at = self._generated_at
            self.completed_in_window += len(completions)
            for _, slot, _ in completions:
                lat = cycle - injected_at[slot]
                n = ls.count + 1
                ls.count = n
                delta = lat - ls._mean
                m = ls._mean + delta / n
                ls._mean = m
                ls._m2 += delta * (lat - m)
                if lat < ls._min:
                    ls._min = lat
                if lat > ls._max:
                    ls._max = lat
                tot = cycle - generated_at[slot]
                n = ts.count + 1
                ts.count = n
                delta = tot - ts._mean
                m = ts._mean + delta / n
                ts._mean = m
                ts._m2 += delta * (tot - m)
                if tot < ts._min:
                    ts._min = tot
                if tot > ts._max:
                    ts._max = tot
                rc = res.count + 1
                res.count = rc
                if len(sample) < rcap:
                    sample.append(lat)
                else:
                    j = res_rand(rc)
                    if j < rcap:
                        sample[j] = lat
        order = self.order
        live = self._live
        sealed = self._sealed
        for _, slot, _ in completions:
            self._awake[slot] = False
            if sealed[slot]:
                sealed[slot] = False
            elif live:
                # Budgeted-path completions never sealed, so the slot is
                # still on the live list (vcs == 1 removes it at seal).
                live.remove(slot)
            self._draining[slot] = False
            self._epoch[slot] += 1  # invalidate any stale watcher entries
            self._free_slots.append(slot)
        if len(completions) == 1:
            del order[completions[0][2]]
        else:
            for idx in sorted((comp[2] for comp in completions),
                              reverse=True):
                del order[idx]

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance the network by exactly one cycle (never skips)."""
        if self.config.virtual_channels > 1:
            self._advance_budgeted(self.cycle + 1, False)
        else:
            self._advance(self.cycle + 1, False)

    def run(self) -> SimulationResult:
        """Run warmup + measurement and return the measured point.

        Quiescent stretches — no active worm, nothing queued, no pending
        sealed-release event, next arrival in the future — are provable
        no-ops in the reference engine (no heap pop, no injection, no
        arbitration, no movement, no RNG draw), so the clock jumps
        straight to the next arrival deadline.
        """
        total = self.config.warmup_cycles + self.config.measure_cycles
        with _trace.span("engine.run", engine=self.ENGINE_NAME,
                         rate=self.rate, cycles=total) as sp:
            if self.config.virtual_channels > 1:
                self._advance_budgeted(total, True)
            else:
                self._advance(total, True)
            result = self._result()
            sp.set(accepted=result.accepted_flits_per_switch_cycle,
                   avg_latency=result.avg_latency)
        record_engine_metrics(result)
        return result

    def _advance(self, target: int, allow_skip: bool) -> None:
        """Batched ``virtual_channels == 1`` kernel.

        One locals-hoisted loop runs every cycle up to ``target`` with the
        four reference phases inlined (arrivals, injections, arbitration,
        movement), sealing worms the cycle they acquire a delivery channel
        and — when ``allow_skip`` — jumping quiescent stretches.  Phase
        wall-times and arbitration counters accumulate in locals and are
        flushed to ``self.perf`` once on exit.
        """
        perf = self.perf
        perf_counter = time.perf_counter
        rng = self.rng
        rng_random = rng.random
        rng_randrange = rng.randrange
        rng_shuffle = rng.shuffle
        heappush = heapq.heappush
        heappop = heapq.heappop
        ceil = math.ceil
        log = math.log

        cfg = self.config
        cap = cfg.buffer_flits
        length = cfg.message_length
        qcap = cfg.queue_capacity
        record = cfg.record_trace
        w0 = cfg.warmup_cycles
        w1 = w0 + cfg.measure_cycles

        owner = self.owner
        arrivals = self._arrivals
        queues = self._queue_list
        parked = self._parked_list
        gap_denom = self._gap_denom
        traffic_dest = self.traffic.dest_for
        trace = self.trace
        inj_base = self.inj_base
        inj_ready = self._inj_ready
        host_pos_get = self._host_pos.__getitem__
        host_switch = self._host_switch
        free_slots = self._free_slots
        row_w = self._row_w
        initial_phase = self._initial_phase

        chain = self._chain
        occ = self._occ
        tcol = self._tcol
        clen = self._clen
        to_inject = self._to_inject
        consumed = self._consumed
        head_sw = self._head_sw
        dst_sw = self._dst_sw
        phase = self._phase
        draining = self._draining
        injected_at = self._injected_at
        generated_at = self._generated_at
        awake = self._awake
        arb_blocked = self._arb_blocked
        sealed = self._sealed
        epoch = self._epoch
        avail_delivery = self.avail_delivery
        cand_cache = self._cand_cache
        slot_cands = self._slot_cands
        chan_watch = self._chan_watch
        deliv_watch = self._deliv_watch
        events = self._release_events
        comp_due = self._completions_due
        final_cids = self._final_cids

        live = self._live
        order = self.order
        cycle = self.cycle
        queued_total = self._queued_total
        next_mid = self._next_mid
        generated = self.generated

        t_arr = t_inj = t_arb = t_mov = 0.0
        executed = 0
        skipped = 0
        arb_requests = 0
        arb_conflicts = 0
        delivery_conflicts = 0
        consumed_measured = 0

        while cycle < target:
            # Sealed worms keep ``order`` non-empty until their completion
            # event pops, and their release events all land by then, so an
            # empty order + empty queues + empty event heap really is
            # quiescent.
            if allow_skip and not order and queued_total == 0 and not events:
                nxt = arrivals[0][0] if arrivals else target
                if nxt > cycle:
                    new_c = nxt if nxt < target else target
                    skipped += new_c - cycle
                    cycle = new_c
                    if cycle >= target:
                        break

            t0 = perf_counter()

            # ---- sealed channel releases due this cycle -----------------
            # The reference frees these during the previous cycle's move
            # phase; nothing observes them before this point.
            if events:
                rel = events.pop(cycle, None)
                if rel is not None:
                    for cid in rel:
                        owner[cid] = -1
                        wl = chan_watch[cid]
                        if wl:
                            for s2, e2 in wl:
                                if epoch[s2] == e2:
                                    awake[s2] = True
                                    epoch[s2] = e2 + 1
                            wl.clear()
                        if cid >= inj_base and queues[cid - inj_base]:
                            inj_ready.add(cid - inj_base)

            # ---- arrivals -----------------------------------------------
            while arrivals and arrivals[0][0] <= cycle:
                h = heappop(arrivals)[1]
                q = queues[h]
                if len(q) >= qcap:
                    parked[h] = True
                    continue
                dst = traffic_dest(h, rng)
                mid = next_mid
                next_mid += 1
                generated += 1
                if record:
                    trace.append((cycle, h, dst, length))
                q.append((mid, dst, cycle))
                queued_total += 1
                if owner[inj_base + h] < 0:
                    inj_ready.add(h)
                u = rng_random()
                d = gap_denom[h]
                if d:
                    gap = ceil(log(u if u > 1e-300 else 1e-300) / d)
                    if gap < 1:
                        gap = 1
                else:
                    gap = 1
                heappush(arrivals, (cycle + gap, h))

            t1 = perf_counter()

            # ---- injections ---------------------------------------------
            if inj_ready:
                # Reference injection order is host order; a single ready
                # host (the common case) needs no sort.
                for h in (inj_ready if len(inj_ready) == 1
                          else sorted(inj_ready, key=host_pos_get)):
                    q = queues[h]
                    cid = inj_base + h
                    mid, dst, gen_at = q.popleft()
                    queued_total -= 1
                    if parked[h]:
                        parked[h] = False
                        heappush(arrivals, (cycle + 1, h))
                    slot = free_slots.pop()
                    base = slot * row_w
                    chain[base] = cid
                    occ[base] = 0
                    tcol[slot] = base
                    clen[slot] = 1
                    to_inject[slot] = length
                    consumed[slot] = 0
                    hs_i = host_switch[h]
                    ds_i = host_switch[dst]
                    head_sw[slot] = hs_i
                    dst_sw[slot] = ds_i
                    phase[slot] = initial_phase
                    if hs_i != ds_i:
                        nc = cand_cache.get((hs_i, initial_phase, ds_i))
                        slot_cands[slot] = (
                            nc if nc is not None
                            else self._candidates(hs_i, initial_phase, ds_i))
                    draining[slot] = False
                    injected_at[slot] = cycle
                    generated_at[slot] = gen_at
                    awake[slot] = True
                    arb_blocked[slot] = 0
                    owner[cid] = slot
                    order.append(slot)
                    live.append(slot)
                inj_ready.clear()

            t2 = perf_counter()

            # ---- arbitration --------------------------------------------
            # ``live`` is the non-sealed subsequence of ``order``, so this
            # scan visits exactly the worms the reference arbitrates over,
            # in the reference sequence; dormant ones fail the awake flag.
            awake_list = [s for s in live if awake[s]]

            if awake_list:
                requests: Dict[int, List[Tuple[int, int, Phase]]] = {}
                delivery_requests: Dict[int, List[int]] = {}

                for slot in awake_list:
                    c = clen[slot]
                    if draining[slot] or c == 0 or occ[tcol[slot] + c - 1] == 0:
                        continue
                    hs = head_sw[slot]
                    ds = dst_sw[slot]
                    arb_blocked[slot] = 0
                    if hs == ds:
                        dr = delivery_requests.get(hs)
                        if dr is None:
                            delivery_requests[hs] = [slot]
                        else:
                            dr.append(slot)
                        continue
                    free = [cand for cand in slot_cands[slot]
                            if owner[cand[0]] < 0]
                    if not free:
                        arb_blocked[slot] = 1
                        continue
                    cid, w, ph = (free[rng_randrange(len(free))]
                                  if len(free) > 1 else free[0])
                    r = requests.get(cid)
                    if r is None:
                        requests[cid] = [(slot, w, ph)]
                    else:
                        r.append((slot, w, ph))

                for cid, reqs in requests.items():
                    arb_requests += 1
                    if len(reqs) > 1:
                        arb_conflicts += 1
                        slot, w, ph = reqs[rng_randrange(len(reqs))]
                    else:
                        slot, w, ph = reqs[0]
                    owner[cid] = slot
                    j = tcol[slot] + clen[slot]
                    if j >= (slot + 1) * row_w:  # pragma: no cover - guard
                        raise AssertionError(
                            f"chain row overflow for slot {slot}"
                        )
                    chain[j] = cid
                    occ[j] = 0
                    clen[slot] += 1
                    head_sw[slot] = w
                    phase[slot] = ph
                    ds = dst_sw[slot]
                    if w != ds:
                        key = (w, ph, ds)
                        nc = cand_cache.get(key)
                        slot_cands[slot] = (nc if nc is not None
                                            else self._candidates(w, ph, ds))

                for sw, reqs in delivery_requests.items():
                    avail = avail_delivery[sw]
                    if avail <= 0:
                        for slot in reqs:
                            arb_blocked[slot] = 2
                        continue
                    if len(reqs) > avail:
                        delivery_conflicts += 1
                        rng_shuffle(reqs)
                        reqs = reqs[:avail]
                    for slot in reqs:
                        draining[slot] = True
                        avail_delivery[sw] -= 1

            t3 = perf_counter()

            # ---- movement -----------------------------------------------
            n_active = len(order)
            start = cycle % n_active if n_active else 0
            completions: Optional[List[Tuple[int, int, int]]] = None

            for slot in awake_list:
                if draining[slot]:
                    # Delivery granted this cycle: the rest of this worm's
                    # life is deterministic — replay it once and move on.
                    # Common case inline: a bubble-free pipe is a perfect
                    # conveyor with a closed-form schedule (derivation on
                    # ``_seal``, which also handles the bubbled fallback).
                    t = tcol[slot]
                    c = clen[slot]
                    row = occ[t:t + c]
                    if 0 in row:
                        self._seal(slot, cycle)
                        continue
                    s_acc = to_inject[slot]
                    comp_c = cycle + s_acc + sum(row) - 1
                    lo = cycle if cycle > w0 else w0
                    hi = comp_c if comp_c < w1 - 1 else w1 - 1
                    if hi >= lo:
                        consumed_measured += hi - lo + 1
                    fin: List[int] = []
                    for j in range(c):
                        s_acc += row[j]
                        r = cycle + s_acc - 1
                        if r < comp_c:
                            el = events.get(r + 1)
                            if el is None:
                                events[r + 1] = [chain[t + j]]
                            else:
                                el.append(chain[t + j])
                        else:
                            fin.append(chain[t + j])
                    final_cids[slot] = fin
                    heappush(comp_due, (comp_c, slot))
                    sealed[slot] = True
                    awake[slot] = False
                    epoch[slot] += 1
                    live.remove(slot)
                    continue
                t = tcol[slot]
                c = clen[slot]
                moved = False

                # Pipelined shift, head side first so each flit moves at
                # most once per cycle (non-draining worms never consume).
                if c > 1:
                    for i in range(t + c - 1, t, -1):
                        if occ[i - 1] > 0 and occ[i] < cap:
                            occ[i - 1] -= 1
                            occ[i] += 1
                            moved = True

                ti = to_inject[slot]
                if ti > 0 and occ[t] < cap:
                    occ[t] += 1
                    ti -= 1
                    to_inject[slot] = ti
                    moved = True

                while c and ti == 0 and occ[t] == 0:
                    cid = chain[t]
                    owner[cid] = -1
                    wl = chan_watch[cid]
                    if wl:
                        for s2, e2 in wl:
                            if epoch[s2] == e2:
                                awake[s2] = True
                                epoch[s2] = e2 + 1
                        wl.clear()
                    if cid >= inj_base and queues[cid - inj_base]:
                        inj_ready.add(cid - inj_base)
                    t += 1
                    c -= 1
                    moved = True
                tcol[slot] = t
                clen[slot] = c

                if moved:
                    continue
                ab = arb_blocked[slot]
                if ab == 2:
                    # Delivery-blocked sleep; the re-check closes the race
                    # with a delivery channel returned earlier this phase.
                    ds2 = dst_sw[slot]
                    if avail_delivery[ds2] == 0:
                        awake[slot] = False
                        deliv_watch[ds2].append((slot, epoch[slot]))
                elif ab:
                    # Head-blocked sleep; the memo is current (refreshed at
                    # every hop grant) and the re-check closes the race
                    # with a channel released earlier this phase.
                    cands = slot_cands[slot]
                    for cand in cands:
                        if owner[cand[0]] < 0:
                            break
                    else:
                        awake[slot] = False
                        e2 = epoch[slot]
                        for cand in cands:
                            chan_watch[cand[0]].append((slot, e2))

            # Sealed-worm completions due this cycle: apply the
            # completion-cycle channel releases, return the delivery
            # channel, and slot the statistics into the reference
            # rotation order.
            while comp_due and comp_due[0][0] <= cycle:
                slot = heappop(comp_due)[1]
                for cid in final_cids.pop(slot):
                    owner[cid] = -1
                    wl = chan_watch[cid]
                    if wl:
                        for s2, e2 in wl:
                            if epoch[s2] == e2:
                                awake[s2] = True
                                epoch[s2] = e2 + 1
                        wl.clear()
                    if cid >= inj_base and queues[cid - inj_base]:
                        inj_ready.add(cid - inj_base)
                ds = dst_sw[slot]
                avail_delivery[ds] += 1
                wl = deliv_watch[ds]
                if wl:
                    for s2, e2 in wl:
                        if epoch[s2] == e2:
                            awake[s2] = True
                            epoch[s2] = e2 + 1
                    wl.clear()
                if completions is None:
                    completions = []
                idx = order.index(slot)
                completions.append(((idx - start) % n_active, slot, idx))
            if completions:
                self._finish_completions(completions, w0 <= cycle < w1,
                                         cycle)

            t4 = perf_counter()
            t_arr += t1 - t0
            t_inj += t2 - t1
            t_arb += t3 - t2
            t_mov += t4 - t3
            executed += 1
            cycle += 1

        self.cycle = cycle
        self._queued_total = queued_total
        self._next_mid = next_mid
        self.generated = generated
        self.flits_consumed_measured += consumed_measured
        perf.arrivals_seconds += t_arr
        perf.injection_seconds += t_inj
        perf.arbitration_seconds += t_arb
        perf.flit_move_seconds += t_mov
        perf.cycles_executed += executed
        perf.cycles_skipped += skipped
        perf.arb_requests += arb_requests
        perf.arb_conflicts += arb_conflicts
        perf.delivery_conflicts += delivery_conflicts

    def _advance_budgeted(self, target: int, allow_skip: bool) -> None:
        """``virtual_channels > 1`` driver: shared physical-link budgets
        couple worms, so cycles run through the per-phase methods in the
        reference rotation order (no dormancy, no sealing) with the same
        quiescence skip as the batched kernel."""
        perf = self.perf
        perf_counter = time.perf_counter
        arrivals = self._arrivals
        while self.cycle < target:
            if allow_skip and not self.order and self._queued_total == 0:
                nxt = arrivals[0][0] if arrivals else target
                if nxt > self.cycle:
                    new_c = nxt if nxt < target else target
                    perf.cycles_skipped += new_c - self.cycle
                    self.cycle = new_c
                    if self.cycle >= target:
                        break
            t0 = perf_counter()
            self._generate_arrivals()
            t1 = perf_counter()
            self._start_injections()
            t2 = perf_counter()
            self._arbitrate()
            t3 = perf_counter()
            self._move_flits_budgeted()
            t4 = perf_counter()
            perf.arrivals_seconds += t1 - t0
            perf.injection_seconds += t2 - t1
            perf.arbitration_seconds += t3 - t2
            perf.flit_move_seconds += t4 - t3
            perf.cycles_executed += 1
            self.cycle += 1

    def _result(self) -> SimulationResult:
        n_sw = self.topology.num_switches
        measure = self.config.measure_cycles
        offered = sum(
            self._host_rate[h] * self.config.message_length
            for h in self._host_rate
        ) / n_sw
        accepted = self.flits_consumed_measured / measure / n_sw
        return SimulationResult(
            offered_flits_per_switch_cycle=offered,
            accepted_flits_per_switch_cycle=accepted,
            avg_latency=self.latency_stats.mean,
            latency=self.latency_stats,
            total_latency=self.total_latency_stats,
            latency_percentiles=self.latency_samples.percentiles(),
            messages_completed=self.completed_in_window,
            messages_generated=self.generated,
            flits_consumed_measured=self.flits_consumed_measured,
            cycles_measured=measure,
            warmup_cycles=self.config.warmup_cycles,
            meta={
                "topology": self.topology.name,
                "routing": self.table.routing.name,
                "rate_msgs_per_host_cycle": self.rate,
                "adaptive": self.config.adaptive,
                "engine": self.ENGINE_NAME,
                **self.perf.meta_counters(),
            },
            perf=self.perf.wall_times(),
        )

    # ------------------------------------------------------------------ #
    # invariants (used by tests)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Verify conservation and exclusivity; raises ``AssertionError``.

        Sealed worms are exempt from the per-slot checks: their row state
        is frozen at seal time while their channels release through timed
        events, so conservation holds against the *replayed* trajectory
        rather than the stale arrays.
        """
        length = self.config.message_length
        sealed = self._sealed
        seen: Dict[int, int] = {}
        for slot in self.order:
            if sealed[slot]:
                continue
            t = self._tcol[slot]
            c = self._clen[slot]
            in_network = length - self._to_inject[slot] - self._consumed[slot]
            assert sum(self._occ[t:t + c]) == in_network, slot
            for j in range(t, t + c):
                cid = self._chain[j]
                assert self.owner[cid] == slot, (slot, cid)
                assert cid not in seen, f"channel {cid} in two chains"
                seen[cid] = slot
                assert 0 <= self._occ[j] <= self.config.buffer_flits
        active = set(self.order)
        for cid, own in enumerate(self.owner):
            if own >= 0 and own not in active:
                raise AssertionError(f"channel {cid} owned by inactive slot")
        # A dormant worm must be genuinely blocked: waking it spuriously is
        # harmless, failing to wake it would stall the run.
        for slot in self.order:
            if self._awake[slot] or sealed[slot]:
                continue
            assert not self._draining[slot], slot
            if self._arb_blocked[slot] == 1:
                cands = self._candidates(self._head_sw[slot],
                                         self._phase[slot],
                                         self._dst_sw[slot])
                assert all(self.owner[cc[0]] >= 0 for cc in cands), slot
            elif self._arb_blocked[slot] == 2:
                assert self.avail_delivery[self._dst_sw[slot]] == 0, slot


__all__ = ["FastWormholeNetworkSimulator"]
