"""The shared wormhole-engine interface, perf instrumentation and factory.

Three engines implement the same cycle-level semantics:

- ``"reference"`` — :class:`repro.simulation.network.WormholeNetworkSimulator`,
  the readable per-``Message`` model that defines the behaviour;
- ``"fast"``      — :class:`repro.simulation.engine_fast.FastWormholeNetworkSimulator`,
  a struct-of-arrays kernel with quiescence skipping that is **bit-identical**
  to the reference: same RNG draw order, same
  :class:`~repro.simulation.metrics.SimulationResult` payload for every seed;
- ``"batch"``     — :mod:`repro.simulation.engine_batch`, the many-replication
  lockstep kernel: one flattened state arena with a leading replication
  axis advances a whole batch of seeds/rates at once (bit-identical per
  member).  ``make_simulator`` builds a batch-of-one view; callers with
  several compatible replications pending should use
  :func:`repro.simulation.engine_batch.simulate_batch`.

:func:`make_simulator` dispatches on ``SimulationConfig.engine``; everything
downstream (load sweeps, saturation probes, the figure drivers, the CLI)
goes through it, so one config field switches the whole evaluation stack.

Observability: every engine fills an :class:`EnginePerf` — per-phase wall
times, skipped-cycle counts and arbitration conflict counters.  Wall times
land on ``SimulationResult.perf`` (excluded from equality comparisons);
deterministic counters land in ``SimulationResult.meta`` so parity checks
can assert the engines agree on *behaviour*, not just on headline numbers.
:func:`canonical_payload` produces the engine-independent view of a result
used by the parity suite and the engine benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Protocol, runtime_checkable

from repro.obs import metrics as _metrics
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult
from repro.simulation.traffic import TrafficPattern

#: Engine names accepted by ``SimulationConfig.engine``.
#: ``reference``/``fast``/``batch`` are bit-identical to each other;
#: ``vector`` is deterministic per seed but only statistically
#: equivalent (see :mod:`repro.simulation.equivalence`).
ENGINE_NAMES = ("reference", "fast", "batch", "vector")

#: The subset of :data:`ENGINE_NAMES` under the bit-identical contract.
BIT_IDENTICAL_ENGINES = ("reference", "fast", "batch")


@dataclass
class EnginePerf:
    """Per-run engine instrumentation.

    Wall-time fields (``*_seconds``) measure where the simulation spends
    its time; they vary run to run and never participate in result
    equality.  The remaining counters are deterministic functions of the
    seed and configuration: a bit-identical pair of engines must agree on
    every one of them except ``cycles_skipped``/``cycles_executed`` (the
    fast engine executes fewer cycles because quiescent stretches are
    jumped over — the *simulated* cycle count is still identical).
    """

    arrivals_seconds: float = 0.0
    injection_seconds: float = 0.0
    arbitration_seconds: float = 0.0
    flit_move_seconds: float = 0.0
    cycles_executed: int = 0
    cycles_skipped: int = 0
    arb_requests: int = 0       # channel requests granted-or-contended
    arb_conflicts: int = 0      # channel requests with >1 contending header
    delivery_conflicts: int = 0  # delivery rounds that had to shuffle

    @property
    def arb_conflict_rate(self) -> float:
        """Fraction of channel-request rounds contended by several headers."""
        if self.arb_requests == 0:
            return 0.0
        return self.arb_conflicts / self.arb_requests

    def wall_times(self) -> Dict[str, float]:
        """The volatile (timing) fields, for ``SimulationResult.perf``."""
        return {
            "arrivals_seconds": self.arrivals_seconds,
            "injection_seconds": self.injection_seconds,
            "arbitration_seconds": self.arbitration_seconds,
            "flit_move_seconds": self.flit_move_seconds,
        }

    def meta_counters(self) -> Dict[str, Any]:
        """The deterministic fields, for ``SimulationResult.meta``."""
        return {
            "cycles_executed": self.cycles_executed,
            "cycles_skipped": self.cycles_skipped,
            "arb_requests": self.arb_requests,
            "arb_conflicts": self.arb_conflicts,
            "arb_conflict_rate": self.arb_conflict_rate,
            "delivery_conflicts": self.delivery_conflicts,
        }


@runtime_checkable
class NetworkEngine(Protocol):
    """What the rest of the package relies on from a wormhole engine.

    Both engines also share the constructor signature
    ``(routing_table, traffic, injection_rate, config)``.
    """

    ENGINE_NAME: str
    config: SimulationConfig
    cycle: int
    generated: int
    trace: list
    perf: EnginePerf

    def step(self) -> None:
        """Advance exactly one cycle (no quiescence skipping)."""
        ...

    def run(self) -> SimulationResult:
        """Run warmup + measurement and return the measured point."""
        ...

    def check_invariants(self) -> None:
        """Verify conservation/exclusivity invariants; raise on violation."""
        ...


def make_simulator(routing_table, traffic: TrafficPattern,
                   injection_rate: float,
                   config: SimulationConfig = SimulationConfig()):
    """Build the engine selected by ``config.engine``.

    The returned object satisfies :class:`NetworkEngine`.  Results are
    bit-identical across the ``reference``/``fast``/``batch`` engines, so
    within that tier the choice is purely a performance knob; the opt-in
    ``vector`` engine is deterministic per seed but relaxes the contract
    to statistical equivalence (validated by the equivalence suite) in
    exchange for numpy vectorization across replications.
    """
    if config.engine == "reference":
        from repro.simulation.network import WormholeNetworkSimulator

        return WormholeNetworkSimulator(routing_table, traffic,
                                        injection_rate, config)
    if config.engine == "fast":
        from repro.simulation.engine_fast import FastWormholeNetworkSimulator

        return FastWormholeNetworkSimulator(routing_table, traffic,
                                            injection_rate, config)
    if config.engine == "batch":
        from repro.simulation.engine_batch import build_batch_simulator

        return build_batch_simulator(routing_table, traffic,
                                     injection_rate, config)
    if config.engine == "vector":
        from repro.simulation.engine_vector import build_vector_simulator

        return build_vector_simulator(routing_table, traffic,
                                      injection_rate, config)
    raise ValueError(
        f"unknown engine {config.engine!r}; expected one of {ENGINE_NAMES}"
    )


def record_engine_metrics(result: SimulationResult) -> None:
    """Fold one finished run's perf/meta into the active metrics registry.

    Registers ``engine.<name>.{runs,cycles_executed,cycles_skipped,
    arb_requests,arb_conflicts,delivery_conflicts}`` counters and
    ``engine.<name>.<phase>_seconds`` wall-time histograms.  The existing
    ``SimulationResult.perf``/``meta`` fields are unchanged — the registry
    is an aggregated *view* over them, and the whole call is a no-op
    when telemetry is off.
    """
    if _metrics.current_registry() is None:
        return
    name = result.meta.get("engine", "unknown")
    prefix = f"engine.{name}"
    _metrics.inc(f"{prefix}.runs")
    for key in ("cycles_executed", "cycles_skipped", "arb_requests",
                "arb_conflicts", "delivery_conflicts"):
        value = result.meta.get(key)
        if value is not None:
            _metrics.inc(f"{prefix}.{key}", float(value))
    for key, seconds in (result.perf or {}).items():
        _metrics.observe(f"{prefix}.{key}", float(seconds))


# Meta keys that legitimately differ between bit-identical engines.
_ENGINE_DEPENDENT_META = ("engine", "cycles_executed", "cycles_skipped")


def canonical_payload(result: SimulationResult) -> Dict[str, Any]:
    """The engine-independent view of a result, for parity comparison.

    Includes every measured quantity and every deterministic meta counter;
    excludes wall times (``result.perf``) and the meta keys that identify
    the engine or its cycle-skipping behaviour.  Two engines are
    *bit-identical* exactly when this payload matches for every seed.
    """
    meta = {k: v for k, v in result.meta.items()
            if k not in _ENGINE_DEPENDENT_META}
    return {
        "offered": result.offered_flits_per_switch_cycle,
        "accepted": result.accepted_flits_per_switch_cycle,
        "avg_latency": result.avg_latency,
        "latency": (result.latency.count, result.latency._mean,
                    result.latency._m2, result.latency._min,
                    result.latency._max),
        "total_latency": (result.total_latency.count,
                          result.total_latency._mean,
                          result.total_latency._m2,
                          result.total_latency._min,
                          result.total_latency._max),
        "latency_percentiles": result.latency_percentiles,
        "messages_completed": result.messages_completed,
        "messages_generated": result.messages_generated,
        "flits_consumed_measured": result.flits_consumed_measured,
        "cycles_measured": result.cycles_measured,
        "warmup_cycles": result.warmup_cycles,
        "meta": meta,
    }


__all__ = [
    "ENGINE_NAMES",
    "BIT_IDENTICAL_ENGINES",
    "EnginePerf",
    "NetworkEngine",
    "make_simulator",
    "record_engine_metrics",
    "canonical_payload",
]
