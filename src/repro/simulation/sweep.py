"""Load sweeps and saturation estimation.

The paper simulates each mapping "from low traffic (simulation point S1)
to saturation (simulation point S9)".  :func:`make_load_points` builds such
a ladder of injection rates; :func:`run_load_sweep` executes it for one
mapping; :func:`find_saturation_rate` estimates the saturation throughput
by bisection on the offered load (used both to place S9 and to report the
paper's "network throughput" figures).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.obs import trace as _trace
from repro.parallel import WorkersLike, parallel_map, resolve_workers
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import make_simulator
from repro.simulation.metrics import SimulationResult
from repro.simulation.traffic import TrafficPattern
from repro.util.rng import derive_seed


@dataclass
class LoadPoint:
    """One sweep point: the offered rate and the measured result."""

    index: int                      # 1-based: S1 … S9
    rate: float                     # messages / cycle / host
    result: SimulationResult

    @property
    def label(self) -> str:
        return f"S{self.index}"


def make_load_points(max_rate: float, n: int = 9, min_fraction: float = 0.1) -> List[float]:
    """A ladder of ``n`` injection rates from low load to ``max_rate``.

    Linear spacing from ``min_fraction * max_rate`` — matching the paper's
    S1 (low traffic) … S9 (deep saturation) structure when ``max_rate`` is
    set slightly above the best mapping's saturation rate.
    """
    if max_rate <= 0:
        raise ValueError(f"max_rate must be > 0, got {max_rate}")
    if n < 2:
        raise ValueError(f"need at least 2 points, got {n}")
    lo = max_rate * min_fraction
    step = (max_rate - lo) / (n - 1)
    return [lo + i * step for i in range(n)]


_SweepJob = Tuple[RoutingTable, TrafficPattern, int, float, SimulationConfig]


def _simulate_point(job: _SweepJob) -> LoadPoint:
    """Run one sweep point (top-level so the process pool can pickle it).

    The engine is chosen by ``cfg.engine``; both engines produce the same
    payload for the same seed, so sweeps are engine-independent data.
    """
    table, traffic, index, rate, cfg = job
    sim = make_simulator(table, traffic, rate, cfg)
    return LoadPoint(index=index, rate=rate, result=sim.run())


def _simulate_chunk(jobs: Sequence[_SweepJob]) -> List[LoadPoint]:
    """Run a chunk of sweep points in one worker (one pickled job).

    Batch-capable engines execute the whole chunk as a single
    ``simulate_batch`` call; scalar engines loop the points in-process.
    Either way the per-point seeds are the ones ``run_load_sweep``
    derived, so results are independent of the chunking.
    """
    engine = jobs[0][4].engine
    if engine in ("batch", "vector"):
        from repro.simulation.engine_batch import simulate_batch

        results = simulate_batch(
            [(table, traffic, rate, cfg)
             for table, traffic, _i, rate, cfg in jobs])
        return [LoadPoint(index=i, rate=rate, result=res)
                for (_t, _tr, i, rate, _c), res in zip(jobs, results)]
    return [_simulate_point(job) for job in jobs]


def run_load_sweep(
    table: RoutingTable,
    traffic: TrafficPattern,
    rates: Sequence[float],
    config: SimulationConfig = SimulationConfig(),
    *,
    workers: WorkersLike = None,
) -> List[LoadPoint]:
    """Simulate every rate in ``rates`` with independent, derived seeds.

    Each point's seed is derived from ``config.seed`` and its 1-based index
    alone, so the points are independent simulations and can run on a
    ``workers``-wide process pool with results identical to the serial
    order (the default ``workers=None`` honours ``$REPRO_WORKERS``).

    Under an active tracer the sweep is wrapped in a ``sweep.load`` span
    and one ``sweep.point`` event is emitted per point — from the parent,
    after the (possibly pooled) map returns, so the event stream is the
    same for serial and parallel runs.

    With ``config.engine`` in ``("batch", "vector")`` the points are
    compatible replications of one network by construction, so a serial
    sweep runs the whole ladder as a single
    :func:`repro.simulation.engine_batch.simulate_batch` call instead of
    point-at-a-time processes; per-point payloads are identical either
    way (bit-identical for ``batch``; the composition-invariant vector
    kernel for ``vector``), so this is purely a performance path.

    Parallel sweeps dispatch *chunks*: the jobs are dealt round-robin
    across ``workers`` chunks and each pool worker runs one chunk (a
    single ``simulate_batch`` call for batch-capable engines, an
    in-process loop otherwise).  One pickled job per worker instead of
    one per point keeps pool overhead off the critical path; the
    per-point seeds are derived before chunking, so results are
    bit-identical to the serial order regardless of the chunk count.
    """
    jobs: List[_SweepJob] = [
        (table, traffic, i, rate,
         replace(config, seed=derive_seed(config.seed, "sweep", i)))
        for i, rate in enumerate(rates, start=1)
    ]
    n_workers = resolve_workers(workers)
    with _trace.span("sweep.load", points=len(jobs),
                     engine=config.engine) as sp:
        if n_workers <= 1:
            points = _simulate_chunk(jobs)
        else:
            n_chunks = min(n_workers, len(jobs))
            chunks = [jobs[k::n_chunks] for k in range(n_chunks)]
            chunked = parallel_map(_simulate_chunk, chunks,
                                   workers=n_workers)
            points = sorted((p for chunk in chunked for p in chunk),
                            key=lambda p: p.index)
        if _trace.current_tracer() is not None:
            for point in points:
                _trace.event(
                    "sweep.point", index=point.index, rate=point.rate,
                    accepted=point.result.accepted_flits_per_switch_cycle,
                    avg_latency=point.result.avg_latency,
                    saturated=point.result.saturated,
                )
        sp.set(saturated_points=sum(1 for p in points if p.result.saturated))
    return points


def find_saturation_rate(
    table: RoutingTable,
    traffic: TrafficPattern,
    config: SimulationConfig = SimulationConfig(),
    *,
    lo: float = 0.001,
    hi: float = 0.25,
    tolerance: float = 0.05,
    max_iterations: int = 12,
) -> Dict[str, float]:
    """Bisection estimate of the saturation point.

    Returns ``{"rate": r*, "throughput": accepted_at_saturation}`` where
    ``r*`` is the highest tested rate the network still accepts within 5 %
    of offered.  ``throughput`` is measured at ~1.5·r* (deep saturation),
    i.e. the paper's "maximum amount of information delivered per time
    unit".
    """
    if not (0 < lo < hi):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")

    probes = 0

    def accepted_ratio(rate: float) -> SimulationResult:
        nonlocal probes
        probes += 1
        cfg = replace(config, seed=derive_seed(config.seed, "sat", int(rate * 1e7)))
        sim = make_simulator(table, traffic, rate, cfg)
        return sim.run()

    with _trace.span("sweep.saturation", engine=config.engine) as sp:
        # Grow hi until saturated (or give up and treat hi as unsaturable).
        res_hi = accepted_ratio(hi)
        grow = 0
        while not res_hi.saturated and grow < 6:
            lo = hi
            hi *= 1.8
            if hi > 1.0:
                hi = 1.0
                res_hi = accepted_ratio(hi)
                break
            res_hi = accepted_ratio(hi)
            grow += 1

        best_ok = lo
        for _ in range(max_iterations):
            if (hi - lo) / hi < tolerance:
                break
            mid = 0.5 * (lo + hi)
            res = accepted_ratio(mid)
            if res.saturated:
                hi = mid
            else:
                lo = mid
                best_ok = mid

        deep = accepted_ratio(min(1.0, 1.5 * hi))
        sp.set(probes=probes, rate=best_ok,
               throughput=deep.accepted_flits_per_switch_cycle)
    return {
        "rate": best_ok,
        "throughput": deep.accepted_flits_per_switch_cycle,
        "deep_rate": min(1.0, 1.5 * hi),
    }


__all__ = ["LoadPoint", "make_load_points", "run_load_sweep", "find_saturation_rate"]
