"""The cycle-driven wormhole network engine.

Model (one cycle = one flit transfer per channel):

- every directed inter-switch link is a *channel* with a ``buffer_flits``
  FIFO at its receiving end; every host owns a dedicated injection channel
  into its switch; every switch has a bounded number of delivery channels
  (message drains);
- a message is a worm: a contiguous chain of channels it owns exclusively,
  with a per-channel flit count.  The header acquires at most one channel
  per cycle (random arbitration among contending headers; adaptive mode
  picks uniformly among the *free* legal shortest up*/down* ports); body
  flits pipeline behind at 1 flit/cycle per channel, stalling in place on
  backpressure — wormhole switching exactly;
- a channel is released when the tail flit has left it; delivery consumes
  1 flit/cycle once the header has been granted a delivery channel at the
  destination switch.

This is the **reference engine**: plain Python over per-``Message``
records, written for readability — it defines the cycle-level semantics.
The production hot path is the struct-of-arrays kernel in
:mod:`repro.simulation.engine_fast`, which replaces the per-message
chain/occupancy deques with preallocated flat arrays, skips quiescent
stretches, and is **bit-identical** to this engine (same RNG draw order,
same :class:`~repro.simulation.metrics.SimulationResult` payload for
every seed) — the substitution recorded in DESIGN.md and enforced by
``tests/simulation/test_engine_parity.py``.  Tail release here is O(1)
per channel (deque ``popleft``), so even the reference engine no longer
pays O(chain) per released channel.

Select an engine with ``SimulationConfig(engine="reference" | "fast")``
or build one directly; :func:`repro.simulation.engine.make_simulator`
dispatches for the sweeps, probes, figure drivers and the CLI.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs import trace as _trace
from repro.routing.base import Phase
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import EnginePerf, record_engine_metrics
from repro.simulation.message import Message
from repro.simulation.metrics import SimulationResult
from repro.simulation.traffic import TrafficPattern
from repro.util.stats import ReservoirSampler, RunningStats


class WormholeNetworkSimulator:
    """Simulate one (topology, routing, traffic, load) configuration.

    Parameters
    ----------
    routing_table:
        Precomputed :class:`~repro.routing.tables.RoutingTable`; carries the
        topology.
    traffic:
        Destination chooser (e.g. the paper's intracluster-uniform pattern).
    injection_rate:
        Messages per cycle per host (before per-host ``rate_scale``).
    config:
        Engine knobs; see :class:`~repro.simulation.config.SimulationConfig`.
    """

    ENGINE_NAME = "reference"

    def __init__(self, routing_table: RoutingTable, traffic: TrafficPattern,
                 injection_rate: float, config: SimulationConfig = SimulationConfig()):
        if injection_rate < 0:
            raise ValueError(f"injection_rate must be >= 0, got {injection_rate}")
        self.table = routing_table
        self.topology = routing_table.topology
        self.traffic = traffic
        self.rate = injection_rate
        self.config = config
        self.rng = random.Random(config.seed)

        topo = self.topology
        # --- channel layout ------------------------------------------------
        # Each directed inter-switch link carries `virtual_channels` VCs,
        # each its own buffered channel; the physical link still moves at
        # most one flit per cycle (per-cycle budget in `_move_flits`).
        # Injection channels (one per host) come after the link VCs.
        vcs = config.virtual_channels
        self.chan_of: Dict[Tuple[int, int], List[int]] = {}
        self.sink_switch: List[int] = []
        self.phys_of: List[int] = []   # physical-link id per channel
        phys = 0
        for u, v in topo.links:
            for a, b in ((u, v), (v, u)):
                cids = []
                for _ in range(vcs):
                    cids.append(len(self.sink_switch))
                    self.sink_switch.append(b)
                    self.phys_of.append(phys)
                self.chan_of[(a, b)] = cids
                phys += 1
        self.inj_base = len(self.sink_switch)
        for h in range(topo.num_hosts):
            self.sink_switch.append(topo.host_switch(h))
            self.phys_of.append(phys)
            phys += 1
        self.num_channels = len(self.sink_switch)
        self.num_physical = phys
        self._link_budget = [1] * self.num_physical
        self.owner: List[Optional[Message]] = [None] * self.num_channels

        dc = (config.delivery_channels if config.delivery_channels is not None
              else max(1, topo.hosts_per_switch))
        self.avail_delivery = [dc] * topo.num_switches

        # --- host state ------------------------------------------------------
        self.queues: Dict[int, Deque[Message]] = {}
        self._arrivals: List[Tuple[int, int]] = []  # heap of (cycle, host)
        self._host_rate: Dict[int, float] = {}
        for h in traffic.active_hosts():
            r = injection_rate * traffic.rate_scale(h)
            if r > 1.0:
                raise ValueError(
                    f"host {h} injection rate {r} exceeds 1 message/cycle"
                )
            self.queues[h] = deque()
            self._host_rate[h] = r
            if r > 0:
                heapq.heappush(self._arrivals, (self._gap(r), h))

        # --- bookkeeping -----------------------------------------------------
        self.active: List[Message] = []
        self.cycle = 0
        self._next_mid = 0
        self.generated = 0
        self.flits_consumed_measured = 0
        self.latency_stats = RunningStats()
        self.total_latency_stats = RunningStats()
        self.latency_samples = ReservoirSampler(seed=config.seed)
        self.completed_in_window = 0
        self.trace: List[Tuple[int, int, int, int]] = []
        self.perf = EnginePerf()

    # ------------------------------------------------------------------ #
    # arrival process
    # ------------------------------------------------------------------ #

    def _gap(self, rate: float) -> int:
        """Geometric inter-arrival gap for a Bernoulli(rate) process, >= 1."""
        u = self.rng.random()
        return max(1, math.ceil(math.log(max(u, 1e-300)) / math.log1p(-rate))) \
            if rate < 1.0 else 1

    def _generate_arrivals(self) -> None:
        cap = self.config.queue_capacity
        while self._arrivals and self._arrivals[0][0] <= self.cycle:
            due, h = heapq.heappop(self._arrivals)
            q = self.queues[h]
            if len(q) >= cap:
                # Source throttled; retry next cycle without redrawing.
                heapq.heappush(self._arrivals, (self.cycle + 1, h))
                continue
            dst = self.traffic.dest_for(h, self.rng)
            topo = self.topology
            msg = Message(
                self._next_mid, h, dst, topo.host_switch(h),
                topo.host_switch(dst), self.config.message_length, self.cycle,
            )
            msg.phase = self.table.routing.initial_phase()
            self._next_mid += 1
            self.generated += 1
            if self.config.record_trace:
                self.trace.append((self.cycle, h, dst,
                                   self.config.message_length))
            q.append(msg)
            heapq.heappush(self._arrivals, (self.cycle + self._gap(self._host_rate[h]), h))

    def _start_injections(self) -> None:
        owner = self.owner
        for h, q in self.queues.items():
            if not q:
                continue
            cid = self.inj_base + h
            if owner[cid] is not None:
                continue
            msg = q.popleft()
            owner[cid] = msg
            msg.chain.append(cid)
            msg.occupancy.append(0)
            msg.injected_at = self.cycle
            self.active.append(msg)

    # ------------------------------------------------------------------ #
    # header arbitration
    # ------------------------------------------------------------------ #

    def _arbitrate(self) -> None:
        owner = self.owner
        chan_of = self.chan_of
        table = self.table
        rng = self.rng
        requests: Dict[int, List[Tuple[Message, int, Phase]]] = {}
        delivery_requests: Dict[int, List[Message]] = {}

        for m in self.active:
            if m.draining or not m.occupancy or m.occupancy[-1] == 0:
                continue
            if m.head_switch == m.dst_switch:
                delivery_requests.setdefault(m.head_switch, []).append(m)
                continue
            hops = table.hops(m.head_switch, m.phase, m.dst_switch)
            if not hops:
                raise RuntimeError(
                    f"no legal continuation for {m!r} at "
                    f"({m.head_switch}, {m.phase.name})"
                )
            if not self.config.adaptive:
                hops = hops[:1]
            free = [
                (cid, w, ph)
                for w, ph in hops
                for cid in chan_of[(m.head_switch, w)]
                if owner[cid] is None
            ]
            if not free:
                continue
            cid, w, ph = (free[rng.randrange(len(free))]
                          if len(free) > 1 else free[0])
            requests.setdefault(cid, []).append((m, w, ph))

        perf = self.perf
        for cid, reqs in requests.items():
            perf.arb_requests += 1
            if len(reqs) > 1:
                perf.arb_conflicts += 1
            m, w, ph = reqs[rng.randrange(len(reqs))] if len(reqs) > 1 else reqs[0]
            owner[cid] = m
            m.chain.append(cid)
            m.occupancy.append(0)
            m.head_switch = w
            m.phase = ph
            m.hops += 1

        for sw, reqs in delivery_requests.items():
            avail = self.avail_delivery[sw]
            if avail <= 0:
                continue
            if len(reqs) > avail:
                perf.delivery_conflicts += 1
                rng.shuffle(reqs)
                reqs = reqs[:avail]
            for m in reqs:
                m.draining = True
                self.avail_delivery[sw] -= 1

    # ------------------------------------------------------------------ #
    # flit movement
    # ------------------------------------------------------------------ #

    def _move_flits(self) -> None:
        cap = self.config.buffer_flits
        owner = self.owner
        phys_of = self.phys_of
        budget = self._link_budget
        for p in range(self.num_physical):
            budget[p] = 1
        measuring = (self.config.warmup_cycles <= self.cycle
                     < self.config.warmup_cycles + self.config.measure_cycles)
        completed: List[Message] = []

        # Rotate the service order so no worm persistently wins the shared
        # link budgets (only matters with virtual_channels > 1).
        active = self.active
        n_active = len(active)
        start = self.cycle % n_active if n_active else 0
        for k in range(n_active):
            m = active[(start + k) % n_active]
            occ = m.occupancy
            chain = m.chain

            # 1 flit/cycle delivery at the destination.
            if m.draining and occ and occ[-1] > 0:
                occ[-1] -= 1
                m.consumed += 1
                if measuring:
                    self.flits_consumed_measured += 1

            # Pipelined shift, head side first so a flit moves once per
            # cycle; entering channel i consumes its physical link's budget.
            for i in range(len(chain) - 1, 0, -1):
                if occ[i - 1] > 0 and occ[i] < cap:
                    p = phys_of[chain[i]]
                    if budget[p] > 0:
                        budget[p] -= 1
                        occ[i - 1] -= 1
                        occ[i] += 1

            # Source feeds the worm's first channel.
            if m.to_inject > 0 and occ and occ[0] < cap:
                p = phys_of[chain[0]]
                if budget[p] > 0:
                    budget[p] -= 1
                    occ[0] += 1
                    m.to_inject -= 1

            # Tail release: once the source is drained, empty tail channels
            # will never refill (flits only move forward).  O(1) per
            # channel: chain/occupancy are deques.
            while chain and m.to_inject == 0 and occ[0] == 0:
                owner[chain.popleft()] = None
                occ.popleft()

            if m.consumed >= m.length:
                m.completed_at = self.cycle
                m.draining = False
                self.avail_delivery[m.dst_switch] += 1
                if chain:  # pragma: no cover - invariant guard
                    raise AssertionError(f"completed message still holds {chain}")
                if measuring:
                    self.completed_in_window += 1
                    self.latency_stats.add(m.latency())
                    self.total_latency_stats.add(m.total_latency())
                    self.latency_samples.add(m.latency())
                completed.append(m)

        if completed:
            done = set(id(m) for m in completed)
            self.active = [m for m in self.active if id(m) not in done]

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance the network by one cycle."""
        perf = self.perf
        t0 = time.perf_counter()
        self._generate_arrivals()
        t1 = time.perf_counter()
        self._start_injections()
        t2 = time.perf_counter()
        self._arbitrate()
        t3 = time.perf_counter()
        self._move_flits()
        t4 = time.perf_counter()
        perf.arrivals_seconds += t1 - t0
        perf.injection_seconds += t2 - t1
        perf.arbitration_seconds += t3 - t2
        perf.flit_move_seconds += t4 - t3
        perf.cycles_executed += 1
        self.cycle += 1

    def run(self) -> SimulationResult:
        """Run warmup + measurement and return the measured point."""
        total = self.config.warmup_cycles + self.config.measure_cycles
        with _trace.span("engine.run", engine=self.ENGINE_NAME,
                         rate=self.rate, cycles=total) as sp:
            while self.cycle < total:
                self.step()
            result = self._result()
            sp.set(accepted=result.accepted_flits_per_switch_cycle,
                   avg_latency=result.avg_latency)
        record_engine_metrics(result)
        return result

    def _result(self) -> SimulationResult:
        n_sw = self.topology.num_switches
        measure = self.config.measure_cycles
        offered = sum(
            self._host_rate[h] * self.config.message_length
            for h in self._host_rate
        ) / n_sw
        accepted = self.flits_consumed_measured / measure / n_sw
        return SimulationResult(
            offered_flits_per_switch_cycle=offered,
            accepted_flits_per_switch_cycle=accepted,
            avg_latency=self.latency_stats.mean,
            latency=self.latency_stats,
            total_latency=self.total_latency_stats,
            latency_percentiles=self.latency_samples.percentiles(),
            messages_completed=self.completed_in_window,
            messages_generated=self.generated,
            flits_consumed_measured=self.flits_consumed_measured,
            cycles_measured=measure,
            warmup_cycles=self.config.warmup_cycles,
            meta={
                "topology": self.topology.name,
                "routing": self.table.routing.name,
                "rate_msgs_per_host_cycle": self.rate,
                "adaptive": self.config.adaptive,
                "engine": self.ENGINE_NAME,
                **self.perf.meta_counters(),
            },
            perf=self.perf.wall_times(),
        )

    # ------------------------------------------------------------------ #
    # invariants (used by tests)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Verify conservation and exclusivity; raises ``AssertionError``."""
        seen: Dict[int, int] = {}
        for m in self.active:
            assert len(m.chain) == len(m.occupancy), m
            assert sum(m.occupancy) == m.in_network, m
            for cid in m.chain:
                assert self.owner[cid] is m, (m, cid)
                assert cid not in seen, f"channel {cid} in two chains"
                seen[cid] = m.mid
            for k, cid in enumerate(m.chain):
                assert 0 <= m.occupancy[k] <= self.config.buffer_flits
        for cid, own in enumerate(self.owner):
            if own is not None and own not in self.active:
                raise AssertionError(f"channel {cid} owned by inactive message")


__all__ = ["WormholeNetworkSimulator"]
