"""Estimating application communication requirements from observed traffic.

The paper's first future-work item: "the measurement of the communication
requirements of the applications running on the machine must be measured
or estimated".  This module implements the estimation half: given a
message trace (as recorded by the simulator with
``SimulationConfig(record_trace=True)``, or collected by any monitoring
layer), produce per-application requirement estimates —

- injection bandwidth per process (flits/cycle), the quantity
  :class:`repro.hetsched.integrated.IntegratedScheduler` consumes;
- the intracluster traffic fraction, which validates (or refutes) the
  paper's all-intracluster assumption for a given workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

TraceRecord = Tuple[int, int, int, int]  # (cycle, src_host, dst_host, flits)


@dataclass
class ClusterRequirement:
    """Measured communication demand of one application."""

    cluster: int
    processes: int
    messages: int
    flits: int
    flits_per_process_cycle: float
    intracluster_fraction: float


@dataclass
class RequirementEstimate:
    """Workload-wide requirement estimate from a traffic trace."""

    cycles_observed: int
    per_cluster: Dict[int, ClusterRequirement]
    total_flits: int

    @property
    def flits_per_process_cycle(self) -> float:
        """Mean injection demand per process — the integrated scheduler's
        ``flits_per_process_cycle`` input."""
        procs = sum(c.processes for c in self.per_cluster.values())
        if procs == 0 or self.cycles_observed == 0:
            return 0.0
        return self.total_flits / procs / self.cycles_observed

    @property
    def intracluster_fraction(self) -> float:
        """Traffic-weighted fraction of messages staying inside clusters."""
        total = sum(c.messages for c in self.per_cluster.values())
        if total == 0:
            return float("nan")
        intra = sum(
            c.messages * c.intracluster_fraction
            for c in self.per_cluster.values()
        )
        return intra / total


def estimate_requirements(
    trace: Iterable[TraceRecord],
    cluster_of_host: Mapping[int, int],
    cycles_observed: int,
) -> RequirementEstimate:
    """Aggregate a message trace into per-application requirements.

    Parameters
    ----------
    trace:
        ``(cycle, src_host, dst_host, flits)`` records; messages whose
        source host runs no known process are ignored (monitoring noise).
    cluster_of_host:
        host → logical-cluster index (e.g.
        :meth:`repro.core.mapping.ProcessMapping.cluster_of_host`).
    cycles_observed:
        Observation-window length; rates are normalized by it.
    """
    if cycles_observed <= 0:
        raise ValueError(f"cycles_observed must be > 0, got {cycles_observed}")
    messages: Dict[int, int] = {}
    flits: Dict[int, int] = {}
    intra: Dict[int, int] = {}
    for _cycle, src, dst, length in trace:
        c = cluster_of_host.get(src)
        if c is None:
            continue
        messages[c] = messages.get(c, 0) + 1
        flits[c] = flits.get(c, 0) + int(length)
        if cluster_of_host.get(dst) == c:
            intra[c] = intra.get(c, 0) + 1

    proc_count: Dict[int, int] = {}
    for _host, c in cluster_of_host.items():
        proc_count[c] = proc_count.get(c, 0) + 1

    per_cluster: Dict[int, ClusterRequirement] = {}
    for c, procs in sorted(proc_count.items()):
        msgs = messages.get(c, 0)
        fl = flits.get(c, 0)
        per_cluster[c] = ClusterRequirement(
            cluster=c,
            processes=procs,
            messages=msgs,
            flits=fl,
            flits_per_process_cycle=fl / procs / cycles_observed,
            intracluster_fraction=(intra.get(c, 0) / msgs) if msgs else
            float("nan"),
        )
    return RequirementEstimate(
        cycles_observed=cycles_observed,
        per_cluster=per_cluster,
        total_flits=sum(flits.values()),
    )


def probe_requirements(
    simulator,
    *,
    cluster_of_host: Mapping[int, int],
    cycles: Optional[int] = None,
) -> RequirementEstimate:
    """Run a (trace-recording) simulator and estimate requirements.

    ``simulator`` must have been built with
    ``SimulationConfig(record_trace=True)`` — either engine from
    :func:`repro.simulation.engine.make_simulator` works, and both record
    the identical trace for the same seed; it is run for its configured
    warmup + measurement window (or stepped ``cycles`` cycles when given)
    and the recorded arrivals are aggregated.
    """
    if not simulator.config.record_trace:
        raise ValueError(
            "simulator was built without record_trace=True; no trace to probe"
        )
    if cycles is None:
        simulator.run()
        observed = simulator.cycle
    else:
        for _ in range(cycles):
            simulator.step()
        observed = cycles
    return estimate_requirements(simulator.trace, cluster_of_host, observed)


__all__ = [
    "TraceRecord",
    "ClusterRequirement",
    "RequirementEstimate",
    "estimate_requirements",
    "probe_requirements",
]
