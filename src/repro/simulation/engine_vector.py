"""Numpy-vectorized many-replication engine (``engine="vector"``).

The batch kernel (:mod:`repro.simulation.engine_batch`) is bit-identical to
the reference, which pins the scalar RNG/arbitration draw order and caps it
near the fast engine's speed.  This module trades that contract for a
relaxed one — **statistical equivalence** — to unlock real vectorization:

- state is a flat struct-of-arrays arena with a leading replication axis
  (``gslot = rep * S + slot``, ``gchan = rep * C + cid``), and every phase
  of the wormhole cycle (arrivals, injection, arbitration, flit movement)
  advances *all live replications per numpy array op* instead of one busy
  replication per Python iteration;
- randomness comes from a counter-based per-replication stream: each draw
  is a SplitMix64-style hash of ``(stream key, cycle, purpose, index)``,
  so it vectorizes across replications, is deterministic given
  ``(seed, engine="vector")`` and is independent of batch composition —
  but it is **not** draw-order-identical to the reference engine;
- arbitration is vectorized: per-cycle random keys per requester and a
  group-max (lexsort) over contenders per channel replaces the reference's
  sequential ``rng.choice``/``rng.shuffle`` scan.  The *distributions* are
  identical (uniform winner among contenders, uniform free-candidate
  choice, uniform delivery subset); the individual coin flips are not.

The contract is shipped as code: :mod:`repro.simulation.equivalence`
checks mean latency and delivered throughput per (mapping, rate) point
across many seeds (Welch's t-test + confidence-interval overlap) plus
rank preservation of the paper's OP-vs-random mapping ordering, and
``tests/simulation/test_engine_equivalence.py`` enforces it in CI.

Cycle semantics (identical to the reference, per simulated cycle):
arrivals → injections → arbitration → flit movement.  For
``virtual_channels == 1`` (the paper's setting) the reference's physical
link budgets are no-ops and worms are decoupled within the move phase, so
phase-wise vectorization across worms is exact: drain-all, then a
head-first column shift, then source-feed-all, then cascading tail
release, then completion — the same per-worm order the reference's
backward scan produces.  Occupancy rows are **head-aligned** (column 0 is
the head channel, higher columns trail toward the tail); positions at or
beyond a worm's chain length always hold zero flits, so the dense column
ops need no per-worm masks.  Multi-VC configurations fall back to the
budgeted struct-of-arrays kernel under the vector name (bit-identical to
``fast``, hence trivially equivalent).
"""

from __future__ import annotations

import math
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.routing.base import Phase
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import EnginePerf, record_engine_metrics
from repro.simulation.engine_batch import check_batch_compatible
from repro.simulation.metrics import SimulationResult
from repro.simulation.traffic import (
    IntraClusterTraffic,
    TrafficPattern,
    UniformTraffic,
)
from repro.util.rng import derive_seed
from repro.util.stats import RunningStats

# --------------------------------------------------------------------- #
# counter-based RNG
# --------------------------------------------------------------------- #

_U64 = np.uint64
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)
_INV53 = 2.0 ** -53

# Draw purposes (kept < 16; packed into the low counter bits).
_P_GAP = 1      # geometric inter-arrival gap
_P_DEST = 2     # destination draw
_P_CHOOSE = 3   # free-candidate choice at arbitration
_P_WINKEY = 4   # contention key per channel request
_P_DELIV = 5    # delivery-subset key


def _mix(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, vectorized over uint64 arrays."""
    x = x + _GOLDEN
    x = x ^ (x >> _U64(30))
    x = x * _MIX1
    x = x ^ (x >> _U64(27))
    x = x * _MIX2
    x = x ^ (x >> _U64(31))
    return x


def _counter(cycles: np.ndarray, purpose: int, idx: np.ndarray) -> np.ndarray:
    """Injective uint64 counter for (cycle, purpose, index < 2**16)."""
    return ((cycles.astype(_U64) << _U64(20))
            + (idx.astype(_U64) << _U64(4)) + _U64(purpose))


def _u01(keys: np.ndarray, cycles: np.ndarray, purpose: int,
         idx: np.ndarray) -> np.ndarray:
    """Deterministic uniforms in [0, 1) from per-replication streams.

    ``keys`` are the uint64 stream keys of the events' replications;
    ``cycles``/``idx`` identify the event within the stream.  Each
    (key, cycle, purpose, idx) tuple maps to one fixed uniform — the
    counter-based analogue of a per-replication generator, but computable
    for a whole event batch in a handful of array ops.  The golden-ratio
    pre-multiply spreads the sequential counters across the uint64 space
    exactly as SplitMix64 does between finalizer calls, so one finalizer
    round suffices (this inner loop runs every simulated cycle).
    """
    x = _mix(keys + _counter(cycles, purpose, idx) * _GOLDEN)
    return (x >> _U64(11)).astype(np.float64) * _INV53


def _u01_pre(pre: np.ndarray, purpose_g: np.uint64,
             idx_g: np.ndarray) -> np.ndarray:
    """:func:`_u01` with the counter terms pre-multiplied.

    ``counter * GOLDEN`` distributes over the packed fields mod 2**64, so
    ``keys + ((cyc << 20) + (idx << 4) + p) * GOLDEN`` splits into a
    per-replication-per-cycle term (``pre``), a static per-index term
    (``idx_g``) and a purpose constant — bit-identical draws in two adds
    plus the finalizer instead of re-packing the counter per call.  The
    finalizer (:func:`_mix`) is inlined: this runs five times per
    simulated cycle, where one extra Python frame is measurable.
    """
    x = pre + idx_g + purpose_g + _GOLDEN
    x = x ^ (x >> _U64(30))
    x = x * _MIX1
    x = x ^ (x >> _U64(27))
    x = x * _MIX2
    x = x ^ (x >> _U64(31))
    return (x >> _U64(11)).astype(np.float64) * _INV53


def _ubits_pre(pre: np.ndarray, purpose_g: np.uint64,
               idx_g: np.ndarray) -> np.ndarray:
    """Raw 64-bit hash words of :func:`_u01_pre`'s draws.

    Arbitration needs *ordering* keys, not uniforms: the full word is a
    monotone refinement of the 53-bit float (equal floats can only come
    from equal high bits), so comparing words picks the same winner
    while skipping the float conversion.
    """
    x = pre + idx_g + purpose_g + _GOLDEN
    x = x ^ (x >> _U64(30))
    x = x * _MIX1
    x = x ^ (x >> _U64(27))
    x = x * _MIX2
    return x ^ (x >> _U64(31))


def _purpose_g(purpose: int) -> np.uint64:
    """``purpose * GOLDEN`` mod 2**64 (wraparound is the point)."""
    return _U64((purpose * int(_GOLDEN)) & 0xFFFFFFFFFFFFFFFF)


#: Purpose constants, pre-multiplied for :func:`_u01_pre`.
_PG_GAP = _purpose_g(_P_GAP)
_PG_DEST = _purpose_g(_P_DEST)
_PG_CHOOSE = _purpose_g(_P_CHOOSE)
_PG_WINKEY = _purpose_g(_P_WINKEY)
_PG_DELIV = _purpose_g(_P_DELIV)

_EMPTY_I = np.zeros(0, dtype=np.int64)

#: int32 "never" sentinel for arrival clocks (see _VectorCore.__init__).
_FAR32 = np.int32((1 << 31) - 8)


def _hash_int(key: int, cycle: int, purpose: int, idx: int) -> int:
    """Scalar counterpart of :func:`_u01`'s hash (seeds fallback draws)."""
    a = np.array([cycle], dtype=np.int64)
    b = np.array([idx], dtype=np.int64)
    return int(_mix(_U64(key) + _counter(a, purpose, b) * _GOLDEN)[0])


# --------------------------------------------------------------------- #
# the vectorized core
# --------------------------------------------------------------------- #


class _VectorCore:
    """Flattened multi-replication state + the vectorized lockstep kernel.

    All members share one routing table and ``virtual_channels == 1``
    (enforced by :func:`check_batch_compatible` plus the vcs gate in the
    entry points).  Seeds, rates, traffic patterns, message lengths,
    buffer depths and measurement windows may vary per member.
    """

    def __init__(self, table: RoutingTable,
                 members: Sequence[Tuple[TrafficPattern, float,
                                         SimulationConfig]]):
        self.table = table
        self.topology = topo = table.topology
        R = len(members)
        self.R = R

        # --- shared channel layout (identical cids to the reference) ----
        chan_of: Dict[Tuple[int, int], int] = {}
        n_chan = 0
        for u, v in topo.links:
            for a, b in ((u, v), (v, u)):
                chan_of[(a, b)] = n_chan
                n_chan += 1
        self.inj_base = n_chan
        self.NH = NH = topo.num_hosts
        self.NSW = NSW = topo.num_switches
        self.C = C = n_chan + NH
        # Worm slots per replication.  Every concurrent worm owns at
        # least one channel, so C + 1 slots always suffice — but typical
        # concurrency is far below that bound, and every dense per-slot
        # mask pays for the whole pool.  Start small and let
        # _grow_slots double the pool on demand; the growth discipline
        # keeps slot-id handout (hence every slot-keyed RNG draw)
        # bit-identical to a pool born at full size.
        self.S_cap = C + 1
        self.S = S = min(self.S_cap, 32)
        self.N = N = R * S
        self.host_switch = np.array(
            [topo.host_switch(h) for h in range(NH)], dtype=np.int64)
        self._initial_phase = int(table.routing.initial_phase())

        # Dense candidate tables, shared per table via the engine cache.
        (self.cand_cid, self.cand_sw, self.cand_ph, self.cand_n,
         self.K, max_dist, self.rev_cnt, self.rev_off,
         self.rev_flat) = _dense_candidates(table, chan_of)
        self.T = self.NSW * 2 * self.NSW
        # Chain length <= route length + 1 (injection channel); slack so
        # the overflow guard never fires on legal routes.
        self.W = W = max_dist + 3

        # --- per-slot worm state (position 0 = head channel) ------------
        # Row-per-worm layout: one worm's whole pipeline is a contiguous
        # W-element row, so per-worm gathers touch one cache line.  The
        # move phase streams these blocks every cycle, so the narrowest
        # safe dtype wins real bandwidth: occupancies are bounded by the
        # per-channel buffer depth, chain entries by the channel count.
        max_buf = max(cfg.buffer_flits for _t, _r, cfg in members)
        occ_dt = np.int8 if max_buf <= 127 else np.int16
        chain_dt = np.int16 if C <= 32000 else np.int32
        self.occ = np.zeros((N, W), dtype=occ_dt)
        self.chain = np.zeros((N, W), dtype=chain_dt)
        self.clen = np.zeros(N, dtype=np.int32)
        self.active = np.zeros(N, dtype=bool)
        self.draining = np.zeros(N, dtype=bool)
        self.to_inject = np.zeros(N, dtype=np.int32)
        self.consumed = np.zeros(N, dtype=np.int32)
        self.need = np.zeros(N, dtype=np.int32)
        self.head_sw = np.zeros(N, dtype=np.int64)
        self.dst_sw = np.zeros(N, dtype=np.int64)
        self.ckey = np.full(N, -1, dtype=np.int64)
        self.phase = np.zeros(N, dtype=np.int8)
        self.injected_at = np.zeros(N, dtype=np.int64)
        self.generated_at = np.zeros(N, dtype=np.int64)
        self.slot_local = np.tile(np.arange(S, dtype=np.int64), R)
        self.rep_slot = np.repeat(np.arange(R, dtype=np.int64), S)
        self._arangeK = np.arange(self.K, dtype=np.int64)[None, :]
        self._occ_flat = self.occ.reshape(-1)
        self._chain_flat = self.chain.reshape(-1)
        # Static pre-multiplied RNG index terms (see _u01_pre).
        self._slotg = (self.slot_local.astype(_U64) << _U64(4)) * _GOLDEN
        self._hostg = (np.arange(NH, dtype=_U64) << _U64(4)) * _GOLDEN
        # Bit weights for the move phase's word-packed pipeline shift:
        # the narrowest unsigned type that fits W - 1 boundary bits.
        bits = max(W - 1, 1)
        wdt = (np.uint8 if bits <= 8 else np.uint16 if bits <= 16
               else np.uint32 if bits <= 32 else np.uint64)
        self._bitw = (np.uint64(1) << np.arange(bits,
                                                dtype=np.uint64)).astype(wdt)
        caps = {cfg.buffer_flits for _t, _r, cfg in members}
        self._cap_all = caps.pop() if len(caps) == 1 else None

        # --- channels, delivery, hosts ----------------------------------
        # One sentinel column beyond the real channels, permanently
        # "owned": candidate-table padding points at it, so the owner
        # gather marks padded entries busy with no validity mask.
        self.CO = CO = C + 1
        self.owner = np.full((R, CO), -1, dtype=np.int64)
        self.owner[:, C] = N
        self.owner_flat = self.owner.reshape(-1)
        # Packed-argsort layout for arbitration: group id in the high
        # bits, winner-key hash bits below.  A single uint64 stable
        # argsort takes numpy's radix path, several times faster than
        # the equivalent two-key lexsort at per-cycle sizes.
        self._gbits_c = _U64((R * CO).bit_length())
        self._gshift_c = _U64(64) - self._gbits_c
        self._gbits_d = _U64((R * NSW).bit_length())
        self._gshift_d = _U64(64) - self._gbits_d
        self.avail_deliv = np.zeros((R, NSW), dtype=np.int32)
        self.avail_flat = self.avail_deliv.reshape(-1)

        # --- event-driven re-evaluation masks ---------------------------
        # A worm found with zero free candidate channels cannot contend,
        # and the only owned->free transition is the tail-release cascade
        # — so it stays ``parked`` until a released channel flags its
        # (replication, table-entry) wake bit.  Likewise a worm that lost
        # a delivery round left its switch with zero free delivery slots,
        # parking it until a completion there raises one.  The two park
        # reasons are disjoint (a worm is in channel *or* delivery phase)
        # and share one mask; the separate wake lists below remember
        # which event un-parks each worm.  ``settled`` worms had no flit
        # motion last cycle and no head/drain/feed event since, so the
        # pipelined shift can skip their rows.  All of it is pure
        # work-skipping: the skipped worms could not have changed any
        # state, and the counter-based RNG draws of the remaining
        # contenders do not depend on who else is evaluated, so results
        # are unchanged bit for bit.
        self.parked = np.zeros(N, dtype=bool)
        self.settled = np.zeros(N, dtype=bool)
        # ``eligible`` caches ``active & ~draining & ~parked`` — the
        # arbitration-requester superset — maintained incrementally at
        # the few sites that flip those flags, so the per-cycle
        # requester scan is one dense read instead of four.
        self.eligible = np.zeros(N, dtype=bool)
        self.wake_flat = np.zeros(R * self.T, dtype=bool)
        # Wake bits written since the last arbitration pass; clearing
        # exactly these beats a full-array memset every cycle.
        self._wake_hot: List[np.ndarray] = []
        self.dwake_flat = np.zeros(R * NSW, dtype=bool)
        self._wake_dirty = False
        self._dwake_dirty = False
        # Compact parked-slot indices so wake checks touch only parked
        # worms instead of scanning all N slots (stale entries — parked
        # worms of retired replications — are dropped lazily).  The
        # parallel ``*_key`` arrays carry each parked worm's wake-bit
        # index, computed once at park time.
        self._blocked_arr = np.zeros(0, dtype=np.int64)
        self._blocked_key = np.zeros(0, dtype=np.int64)
        self._dblocked_arr = np.zeros(0, dtype=np.int64)
        self._dblocked_key = np.zeros(0, dtype=np.int64)
        # Injection is trigger-driven: a host can only become injectable
        # when it enqueues a message (arrivals) or its injection channel
        # is released (tail cascade), so those events queue candidate
        # flat host indices instead of the dense (qlen, owner) scan.
        self._inj_try = _EMPTY_I
        self._arr_new = _EMPTY_I

        # --- steady-state drain fast-forward ----------------------------
        # A draining worm whose cycle was "drain one, shift every
        # boundary, feed one" sits at an occupancy fixed point: the same
        # decisions recur next cycle, and nothing outside the worm can
        # perturb it (it owns its channels exclusively, holds its
        # delivery slot, and makes no arbitration requests while
        # draining).  Such worms are advanced arithmetically for the
        # next ``to_inject - 1`` cycles — ``streaming`` rows leave the
        # dense move masks, a per-replication counter keeps the
        # delivered-flit accounting cycle-exact, and a calendar keyed by
        # iteration index re-materializes each worm one cycle before its
        # source runs dry.  Pure work-skipping: no draw order changes.
        self.streaming = np.zeros(N, dtype=bool)
        self._stream_start = np.zeros(N, dtype=np.int64)
        self.stream_cnt = np.zeros(R, dtype=np.int64)
        self._stream_cal: Dict[int, List[np.ndarray]] = {}
        self._n_stream = 0
        # mask[clen] has bits 0..clen-2 set: the packed-word signature of
        # "every boundary moved" for a chain of that length.
        self._stream_mask = np.array(
            [(1 << max(c - 1, 0)) - 1 for c in range(self.W + 1)],
            dtype=self._bitw.dtype)

        qcaps = [cfg.queue_capacity for _t, _r, cfg in members]
        self.QC = QC = max(qcaps)
        # Arrival clocks: int32 when every replication finishes below
        # the sentinel (always, in practice) — the dense due-compare is
        # the one per-cycle op that touches all R * NH host cells.
        # Gap draws land beyond the horizon clamp to the sentinel; they
        # could only have fired after ~2**31 stepped cycles.
        tmax = max(int(cfg.warmup_cycles + cfg.measure_cycles)
                   for _t, _r, cfg in members)
        if tmax < int(_FAR32) - 2:
            self._arr_far = int(_FAR32)
            arr_dt = np.int32
        else:
            self._arr_far = int(_FAR)
            arr_dt = np.int64
        self.next_arr = np.full((R, NH), self._arr_far, dtype=arr_dt)
        self.qlen = np.zeros((R, NH), dtype=np.int32)
        self.qhead = np.zeros((R, NH), dtype=np.int32)
        self.qdst = np.zeros((R, NH, QC), dtype=np.int32)
        self.qgen = np.zeros((R, NH, QC), dtype=np.int64)
        self.gap_denom = np.zeros((R, NH), dtype=np.float64)
        # Flat views: host events index with ri * NH + hi, which keeps
        # the hot phases on 1-D fancy indexing.
        self.next_arr_flat = self.next_arr.reshape(-1)
        self.qlen_flat = self.qlen.reshape(-1)
        self.qhead_flat = self.qhead.reshape(-1)
        self.qdst_flat = self.qdst.reshape(-1)
        self.qgen_flat = self.qgen.reshape(-1)

        # --- per-replication scalars ------------------------------------
        self.clock = np.zeros(R, dtype=np.int64)
        self.live = np.ones(R, dtype=bool)
        self.rep_key = np.zeros(R, dtype=np.uint64)
        self.length = np.zeros(R, dtype=np.int32)
        self.qcap = np.array(qcaps, dtype=np.int32)
        self.w0 = np.zeros(R, dtype=np.int64)
        self.w1 = np.zeros(R, dtype=np.int64)
        self.total = np.zeros(R, dtype=np.int64)
        self.adaptive = np.zeros(R, dtype=bool)
        self.record = np.zeros(R, dtype=bool)
        self.queued = np.zeros(R, dtype=np.int64)
        self.active_cnt = np.zeros(R, dtype=np.int64)
        self.free_top = np.full(R, S, dtype=np.int64)
        self.free_slots = np.tile(
            np.arange(S - 1, -1, -1, dtype=np.int64), (R, 1))
        self.executed = np.zeros(R, dtype=np.int64)
        self.skipped = np.zeros(R, dtype=np.int64)
        self.arb_req = np.zeros(R, dtype=np.int64)
        self.arb_conf = np.zeros(R, dtype=np.int64)
        self.deliv_conf = np.zeros(R, dtype=np.int64)
        self.generated_cnt = np.zeros(R, dtype=np.int64)
        self.consumed_measured = np.zeros(R, dtype=np.int64)
        self.completed_in_window = np.zeros(R, dtype=np.int64)
        self.offered = np.zeros(R, dtype=np.float64)

        self.traffics: List[TrafficPattern] = []
        self.configs: List[SimulationConfig] = []
        self.rates: List[float] = []
        self.traces: List[List[Tuple[int, int, int, int]]] = []
        self.perfs: List[EnginePerf] = []

        # Destination-draw modes: 0 = per-host peer table (pure
        # intracluster), 1 = uniform-minus-self, 2 = scalar dest_for
        # fallback (hotspots, intercluster mixes, custom patterns).
        self.dest_mode = np.full(R, 2, dtype=np.int8)
        self.uni_n = np.zeros(R, dtype=np.int64)
        dest_tabs: List[Optional[List[List[int]]]] = []

        init_events: List[Tuple[int, int, float]] = []   # (r, h, rate)
        any_rate1 = False
        for r, (traffic, rate, cfg) in enumerate(members):
            if rate < 0:
                raise ValueError(
                    f"injection_rate must be >= 0, got {rate}")
            self.traffics.append(traffic)
            self.configs.append(cfg)
            self.rates.append(rate)
            self.traces.append([])
            self.perfs.append(EnginePerf())
            self.rep_key[r] = _U64(derive_seed(cfg.seed, "vector-stream"))
            self.length[r] = cfg.message_length
            self.w0[r] = cfg.warmup_cycles
            self.w1[r] = cfg.warmup_cycles + cfg.measure_cycles
            self.total[r] = self.w1[r]
            self.adaptive[r] = cfg.adaptive
            self.record[r] = cfg.record_trace
            dc = (cfg.delivery_channels
                  if cfg.delivery_channels is not None
                  else max(1, topo.hosts_per_switch))
            self.avail_deliv[r, :] = dc

            offered = 0.0
            for h in traffic.active_hosts():
                hr = rate * traffic.rate_scale(h)
                if hr > 1.0:
                    raise ValueError(
                        f"host {h} injection rate {hr} exceeds "
                        f"1 message/cycle")
                offered += hr * cfg.message_length
                if hr > 0:
                    if hr < 1.0:
                        self.gap_denom[r, h] = math.log1p(-hr)
                    else:
                        any_rate1 = True
                    init_events.append((r, h, hr))
            self.offered[r] = offered / NSW

            dest_tab: Optional[List[List[int]]] = None
            if (type(traffic) is IntraClusterTraffic
                    and traffic.intercluster_fraction == 0.0):
                self.dest_mode[r] = 0
                dest_tab = [[] for _ in range(NH)]
                for h2, c2 in traffic.cluster_of.items():
                    dest_tab[h2] = [d for d in
                                    traffic.hosts_by_cluster[c2] if d != h2]
            elif type(traffic) is UniformTraffic:
                self.dest_mode[r] = 1
                self.uni_n[r] = traffic.topology.num_hosts
            dest_tabs.append(dest_tab)

        # Dense per-host peer tables for mode-0 replications.
        dmax = max((len(p) for tab in dest_tabs if tab is not None
                    for p in tab), default=1)
        self.dest_tab = np.zeros((R, NH, dmax), dtype=np.int32)
        self.dest_n = np.zeros((R, NH), dtype=np.int64)
        for r, tab in enumerate(dest_tabs):
            if tab is None:
                continue
            for h, peers in enumerate(tab):
                self.dest_n[r, h] = len(peers)
                self.dest_tab[r, h, :len(peers)] = peers

        # Per-slot broadcasts of per-replication config (rebuilt by
        # _grow_slots when the pool expands).
        self._buf_rep = np.array(
            [cfg.buffer_flits for _t, _r, cfg in members], dtype=occ_dt)
        self.cap_slot = np.repeat(self._buf_rep, S)
        self.adaptive_slot = np.repeat(self.adaptive, S)
        self._any_record = bool(self.record.any())
        self._any_rate1 = any_rate1
        self._all_adaptive = bool(self.adaptive.all())
        # Which destination-draw modes this batch actually uses; a
        # homogeneous batch takes a maskless fast path in _draw_dests.
        self._dest_modes = tuple(sorted(set(self.dest_mode.tolist())))
        # Per-replication RNG base for the current cycle (see _u01_pre);
        # refreshed at the top of every lockstep iteration.  The clock is
        # all zeros here, matching the init gap draws below.
        self._kc = self.rep_key + (
            self.clock.astype(_U64) << _U64(20)) * _GOLDEN

        # First arrivals: one gap draw per active host at cycle 0.
        if init_events:
            ri = np.array([e[0] for e in init_events], dtype=np.int64)
            hi = np.array([e[1] for e in init_events], dtype=np.int64)
            self.next_arr[ri, hi] = self._gap_draw(
                ri, hi, np.zeros(ri.size, dtype=np.int64))

        self.iterations = 0
        self._lat_chunks: List[Tuple[np.ndarray, np.ndarray,
                                     np.ndarray]] = []
        self._lat_cache = None
        self._t_arrivals = 0.0
        self._t_injection = 0.0
        self._t_arbitration = 0.0
        self._t_move = 0.0

    # ------------------------------------------------------------------ #
    # arrivals & injection
    # ------------------------------------------------------------------ #

    def _gap_draw(self, ri: np.ndarray, hi: np.ndarray,
                  cyc: np.ndarray) -> np.ndarray:
        """Geometric inter-arrival gaps (>= 1) for Bernoulli(rate) hosts."""
        u = _u01_pre(self._kc[ri], _PG_GAP, self._hostg[hi])
        denom = self.gap_denom[ri, hi]
        if not self._any_rate1:
            gap = np.ceil(
                np.log(np.maximum(u, 1e-300)) / denom).astype(np.int64)
            return np.minimum(cyc + np.maximum(gap, 1), self._arr_far)
        safe = np.where(denom < 0.0, denom, -1.0)
        gap = np.ceil(
            np.log(np.maximum(u, 1e-300)) / safe).astype(np.int64)
        gap = np.maximum(gap, 1)
        # denom == 0 flags rate >= 1: a message every cycle.
        return np.minimum(cyc + np.where(denom < 0.0, gap, 1),
                          self._arr_far)

    def _draw_dests(self, ri: np.ndarray, hi: np.ndarray,
                    cyc: np.ndarray) -> np.ndarray:
        u = _u01_pre(self._kc[ri], _PG_DEST, self._hostg[hi])
        if self._dest_modes == (1,):
            # Homogeneous uniform traffic: no mode masks needed.
            n = self.uni_n[ri] - 1
            d = np.minimum((u * n).astype(np.int64), n - 1)
            d += d >= hi
            return d
        if self._dest_modes == (0,):
            n = self.dest_n[ri, hi]
            k = np.minimum((u * n).astype(np.int64), n - 1)
            return self.dest_tab[ri, hi, k].astype(np.int64)
        dst = np.empty(ri.size, dtype=np.int64)
        mode = self.dest_mode[ri]
        m0 = mode == 0
        if m0.any():
            n = self.dest_n[ri[m0], hi[m0]]
            k = np.minimum((u[m0] * n).astype(np.int64), n - 1)
            dst[m0] = self.dest_tab[ri[m0], hi[m0], k]
        m1 = mode == 1
        if m1.any():
            n = self.uni_n[ri[m1]] - 1
            d = np.minimum((u[m1] * n).astype(np.int64), n - 1)
            d += d >= hi[m1]
            dst[m1] = d
        m2 = mode == 2
        if m2.any():
            # Scalar fallback: a fresh deterministic stream per event fed
            # through the pattern's own dest_for (same distribution as
            # the reference; different draws).
            for j in np.flatnonzero(m2):
                r = int(ri[j])
                seed = _hash_int(int(self.rep_key[r]), int(cyc[j]),
                                 _P_DEST, int(hi[j]))
                dst[j] = self.traffics[r].dest_for(
                    int(hi[j]), random.Random(seed))
        return dst

    def _arrivals_phase(self) -> None:
        self._arr_new = _EMPTY_I
        due = ((self.next_arr
                <= self.clock.astype(self.next_arr.dtype)[:, None])
               & self.live[:, None])
        idx = due.reshape(-1).nonzero()[0]
        if not idx.size:
            return
        NH = self.NH
        ri = idx // NH
        hi = idx - ri * NH
        cyc = self.clock[ri]
        full = self.qlen_flat[idx] >= self.qcap[ri]
        if full.any():
            # Queue full: retry next cycle without drawing (reference
            # defers the whole arrival, destination included).
            self.next_arr_flat[idx[full]] = cyc[full] + 1
            ok = ~full
            idx, ri, hi, cyc = idx[ok], ri[ok], hi[ok], cyc[ok]
            if not idx.size:
                return
        dst = self._draw_dests(ri, hi, cyc)
        pos = self.qhead_flat[idx] + self.qlen_flat[idx]
        pos -= np.where(pos >= self.QC, self.QC, 0)
        qpos = idx * self.QC + pos
        self.qdst_flat[qpos] = dst
        self.qgen_flat[qpos] = cyc
        self.qlen_flat[idx] += 1
        counts = np.bincount(ri, minlength=self.R)
        self.generated_cnt += counts
        self.queued += counts
        if self._any_record:
            rec = self.record[ri]
            for r, h, d, t in zip(ri[rec], hi[rec], dst[rec], cyc[rec]):
                self.traces[int(r)].append(
                    (int(t), int(h), int(d), int(self.length[int(r)])))
        self.next_arr_flat[idx] = self._gap_draw(ri, hi, cyc)
        self._arr_new = idx

    def _injection_phase(self) -> None:
        # A host can inject only if it holds a message (qlen > 0) and its
        # injection channel is free — a state reachable solely through an
        # enqueue (this cycle's arrivals) or an injection-channel release
        # (last cycle's tail cascade), so only those candidates need the
        # check instead of a dense (qlen, owner) scan.  Both sources are
        # duplicate-free; merged they may overlap, so unique() also
        # restores the ascending order the free-slot pop below relies on.
        arr, rel = self._arr_new, self._inj_try
        if rel.size:
            self._inj_try = _EMPTY_I
            cand = (np.unique(np.concatenate((rel, arr)))
                    if arr.size else np.sort(rel))
        else:
            cand = arr
        if not cand.size:
            return
        S, C = self.S, self.C
        NH = self.NH
        ri = cand // NH
        hi = cand - ri * NH
        ok = ((self.qlen_flat[cand] > 0)
              & (self.owner_flat[ri * self.CO + self.inj_base + hi] < 0)
              & self.live[ri])
        if not ok.all():
            cand, ri, hi = cand[ok], ri[ok], hi[ok]
            if not cand.size:
                return
        idx = cand
        pos = self.qhead_flat[idx]
        qpos = idx * self.QC + pos
        dst_h = self.qdst_flat[qpos].astype(np.int64)
        gen = self.qgen_flat[qpos]
        self.qhead_flat[idx] = (pos + 1) % self.QC
        self.qlen_flat[idx] -= 1
        counts = np.bincount(ri, minlength=self.R)
        self.queued -= counts
        if (counts > self.free_top).any():
            self._grow_slots(int((counts - self.free_top).max()))
            S = self.S
        # Pop one free slot per worm: rank within the (sorted) rep runs.
        rank = np.arange(ri.size) - np.searchsorted(ri, ri)
        sl = self.free_slots[ri, self.free_top[ri] - 1 - rank]
        self.free_top -= counts
        g = ri * S + sl
        cid = self.inj_base + hi
        hs = self.host_switch[hi]
        ds = self.host_switch[dst_h]
        self.occ[g] = 0
        self.chain[g, 0] = cid
        self.clen[g] = 1
        self.to_inject[g] = self.length[ri]
        self.need[g] = self.length[ri]
        self.consumed[g] = 0
        self.head_sw[g] = hs
        self.dst_sw[g] = ds
        self.phase[g] = self._initial_phase
        self.draining[g] = False
        self.active[g] = True
        self.settled[g] = False
        self.parked[g] = False
        self.eligible[g] = True
        self.injected_at[g] = self.clock[ri]
        self.generated_at[g] = gen
        self.ckey[g] = np.where(
            hs == ds, -1,
            (hs * 2 + self._initial_phase) * self.NSW + ds)
        self.owner_flat[ri * self.CO + cid] = g
        self.active_cnt += counts

    def _grow_slots(self, shortfall: int) -> None:
        """Expand every replication's worm-slot pool, bit-identically.

        The pool starts far below the C + 1 hard bound because dense
        per-slot masks pay for every slot whether occupied or not.  When
        an injection burst needs more free slots than some replication
        has left, the pool (at least) doubles.  Results are unchanged
        bit for bit: the new slots join the *bottom* of each free stack
        holding ``S_new-1 .. S_old`` in descending order — exactly the
        untouched deep region a stack born at ``S_new`` would still
        hold, since pops below ``S_old`` were impossible before now.
        The handed-out sequence of slot-local ids (which keys every
        per-worm RNG draw) is therefore identical to a static pool's.
        """
        R, W = self.R, self.W
        S_old = self.S
        S_new = min(self.S_cap, max(2 * S_old, S_old + shortfall))
        add = S_new - S_old

        for name in ("occ", "chain"):
            a = getattr(self, name)
            new = np.zeros((R * S_new, W), dtype=a.dtype)
            new.reshape(R, S_new, W)[:, :S_old] = a.reshape(R, S_old, W)
            setattr(self, name, new)
        self._occ_flat = self.occ.reshape(-1)
        self._chain_flat = self.chain.reshape(-1)
        for name in ("clen", "active", "draining", "to_inject",
                     "consumed", "need", "head_sw", "dst_sw", "ckey",
                     "phase", "injected_at", "generated_at", "parked",
                     "settled", "eligible", "streaming", "_stream_start"):
            a = getattr(self, name)
            new = np.zeros(R * S_new, dtype=a.dtype)
            new.reshape(R, S_new)[:, :S_old] = a.reshape(R, S_old)
            setattr(self, name, new)

        self.slot_local = np.tile(np.arange(S_new, dtype=np.int64), R)
        self.rep_slot = np.repeat(np.arange(R, dtype=np.int64), S_new)
        self._slotg = (self.slot_local.astype(_U64) << _U64(4)) * _GOLDEN
        self.cap_slot = np.repeat(self._buf_rep, S_new)
        self.adaptive_slot = np.repeat(self.adaptive, S_new)

        # Remap stored global slot ids (r * S_old + l -> r * S_new + l).
        # The parked-wake *keys* are replication-based and unaffected.
        def remap(g: np.ndarray) -> np.ndarray:
            r = g // S_old
            return r * S_new + (g - r * S_old)

        m = self.owner >= 0
        m[:, self.C] = False          # sentinel column is not a slot id
        mf = m.reshape(-1)
        self.owner_flat[mf] = remap(self.owner_flat[mf])
        self.owner[:, self.C] = R * S_new
        self._blocked_arr = remap(self._blocked_arr)
        self._dblocked_arr = remap(self._dblocked_arr)

        nfs = np.empty((R, S_new), dtype=np.int64)
        nfs[:, :add] = np.arange(S_new - 1, S_old - 1, -1,
                                 dtype=np.int64)[None, :]
        nfs[:, add:] = self.free_slots
        self.free_slots = nfs
        self.free_top += add
        for key, lst in self._stream_cal.items():
            self._stream_cal[key] = [remap(a) for a in lst]
        self.S = S_new
        self.N = R * S_new

    def _unstream(self, g: np.ndarray, as_of: int) -> None:
        """Fold a streamed worm's skipped cycles back into its state.

        ``as_of`` is the last iteration whose per-cycle drain has been
        accounted through ``stream_cnt`` — ``iterations - 1`` when
        called from the calendar pop (the current cycle runs normally),
        ``iterations`` when forcing materialization between cycles.
        Unstreaming early is semantically neutral: the worm re-enters
        the dense masks and re-derives the very cycles it would have
        skipped.
        """
        streamed = (as_of - self._stream_start[g]).astype(np.int32)
        self.consumed[g] += streamed
        self.to_inject[g] -= streamed
        self.streaming[g] = False
        self.stream_cnt -= np.bincount(self.rep_slot[g], minlength=self.R)
        self._n_stream -= g.size

    # ------------------------------------------------------------------ #
    # arbitration
    # ------------------------------------------------------------------ #

    def _arbitration_phase(self) -> None:
        if self._wake_dirty:
            lst, keys = self._blocked_arr, self._blocked_key
            if lst.size:
                alive = self.parked[lst]
                lst, keys = lst[alive], keys[alive]
                hit = self.wake_flat[keys]
                woken = lst[hit]
                self.parked[woken] = False
                self.eligible[woken] = True
                keep = ~hit
                self._blocked_arr = lst[keep]
                self._blocked_key = keys[keep]
            for hot in self._wake_hot:
                self.wake_flat[hot] = False
            self._wake_hot.clear()
            self._wake_dirty = False
        if self._dwake_dirty:
            lst, keys = self._dblocked_arr, self._dblocked_key
            if lst.size:
                alive = self.parked[lst]
                lst, keys = lst[alive], keys[alive]
                hit = self.dwake_flat[keys]
                woken = lst[hit]
                self.parked[woken] = False
                self.eligible[woken] = True
                keep = ~hit
                self._dblocked_arr = lst[keep]
                self._dblocked_key = keys[keep]
            self.dwake_flat[:] = False
            self._dwake_dirty = False
        # Requesters: active, un-parked, non-draining worms with a flit
        # at the head (the maintained ``eligible`` mask); the
        # head-occupancy and channel/delivery split run on the compact
        # candidate set (one contiguous worm row each) instead of dense
        # strided reads.
        cand = self.eligible.nonzero()[0]
        if not cand.size:
            return
        cand = cand[self.occ[cand, 0] > 0]
        if not cand.size:
            return
        cm = self.ckey[cand] >= 0
        req = cand[cm]
        if req.size:
            self._channel_requests(req)
        did = cand[~cm]
        if did.size:
            self._delivery_requests(did)

    def _channel_requests(self, req: np.ndarray) -> None:
        S, C = self.S, self.C
        ck = self.ckey[req]
        nc = self.cand_n[ck]
        if (nc == 0).any():
            bad = req[nc == 0][0]
            raise RuntimeError(
                f"no legal continuation toward switch "
                f"{int(self.dst_sw[bad])} at ({int(self.head_sw[bad])}, "
                f"{Phase(int(self.phase[bad])).name})")
        cc = self.cand_cid[ck]                                 # [k, K]
        rep = self.rep_slot[req]
        own = self.owner_flat[rep[:, None] * self.CO + cc]
        if self._all_adaptive:
            # Padded columns point at the sentinel channel (always
            # owned), so busy-filtering doubles as the validity mask.
            free = own < 0
        else:
            lim = np.where(self.adaptive_slot[req], self.K, 1)
            free = (self._arangeK < lim[:, None]) & (own < 0)
        nfree = free.sum(axis=1)
        has = nfree > 0
        if has.all():
            rq, rep_q, fr, nf, ckq = req, rep, free, nfree, ck
        else:
            # Fully owned candidate sets: park until a release wakes the
            # (replication, table-entry) pair.  Parked worms never drew
            # or contended, so skipping them is free of side effects.
            miss = ~has
            newly = req[miss]
            self.parked[newly] = True
            self.eligible[newly] = False
            self._blocked_arr = np.concatenate((self._blocked_arr, newly))
            self._blocked_key = np.concatenate(
                (self._blocked_key, rep[miss] * self.T + ck[miss]))
            if not has.any():
                return
            rows = has.nonzero()[0]
            rq = req[rows]
            rep_q = rep[rows]
            fr = free[rows]
            nf = nfree[rows]
            ckq = ck[rows]
        # Uniform choice among this worm's currently-free candidates.
        kc_q = self._kc[rep_q]
        slot_g = self._slotg[rq]
        u = _u01_pre(kc_q, _PG_CHOOSE, slot_g)
        sel = (u * nf).astype(np.int64)
        cum = np.cumsum(fr, axis=1)
        pick = np.argmax(fr & (cum == (sel + 1)[:, None]), axis=1)
        cid_q = self.cand_cid[ckq, pick]
        sw_q = self.cand_sw[ckq, pick].astype(np.int64)
        ph_q = self.cand_ph[ckq, pick].astype(np.int64)
        gcid = rep_q * self.CO + cid_q
        # One uniform winner per contended channel: random keys, group
        # max via lexsort (last entry of each gcid run wins).
        kb = _ubits_pre(kc_q, _PG_WINKEY, slot_g)
        order = np.argsort((gcid.astype(_U64) << self._gshift_c)
                           | (kb >> self._gbits_c), kind="stable")
        gs = gcid[order]
        last = np.empty(gs.size, dtype=bool)
        last[:-1] = gs[1:] != gs[:-1]
        last[-1] = True
        b_idx = last.nonzero()[0]
        sizes = np.diff(np.concatenate(([-1], b_idx)))
        rep_g = gs[last] // self.CO
        self.arb_req += np.bincount(rep_g, minlength=self.R)
        if (sizes > 1).any():
            self.arb_conf += np.bincount(rep_g[sizes > 1],
                                         minlength=self.R)
        win = order[last]
        w = rq[win]
        cidw = cid_q[win]
        sww = sw_q[win]
        phw = ph_q[win]
        # Grant: head-aligned row shift right, new head in position 0.
        # Fancy-indexed gathers copy, so the shifted block is read before
        # the overlapping write.
        mxc = int(self.clen[w].max())
        if mxc + 1 >= self.W:
            raise RuntimeError("worm chain overflow (route longer than "
                               "the routing table's distance bound)")
        self.occ[w, 1:mxc + 1] = self.occ[w, :mxc]
        self.chain[w, 1:mxc + 1] = self.chain[w, :mxc]
        self.occ[w, 0] = 0
        self.chain[w, 0] = cidw
        self.clen[w] += 1
        self.head_sw[w] = sww
        self.phase[w] = phw.astype(np.int8)
        self.owner_flat[gcid[win]] = w
        self.settled[w] = False
        self.ckey[w] = np.where(
            sww == self.dst_sw[w], -1,
            (sww * 2 + phw) * self.NSW + self.dst_sw[w])

    def _delivery_requests(self, didx: np.ndarray) -> None:
        rep = self.rep_slot[didx]
        gsw = rep * self.NSW + self.dst_sw[didx]
        kb = _ubits_pre(self._kc[rep], _PG_DELIV, self._slotg[didx])
        order = np.argsort((gsw.astype(_U64) << self._gshift_d)
                           | (kb >> self._gbits_d), kind="stable")
        gss = gsw[order]
        first = np.empty(gss.size, dtype=bool)
        first[0] = True
        first[1:] = gss[1:] != gss[:-1]
        grp_start = np.maximum.accumulate(
            np.where(first, np.arange(gss.size), 0))
        rank = np.arange(gss.size) - grp_start
        avail = self.avail_flat[gss]
        grant = rank < avail
        winners = didx[order[grant]]
        if winners.size:
            self.draining[winners] = True
            self.settled[winners] = False
            self.eligible[winners] = False
            np.add.at(self.avail_flat, gss[grant], -1)
        lose = ~grant
        losers = didx[order[lose]]
        if losers.size:
            # Losing a round means the switch ran out of delivery slots
            # (grant is rank < avail), so park until a completion there
            # raises avail again.
            self.parked[losers] = True
            self.eligible[losers] = False
            self._dblocked_arr = np.concatenate(
                (self._dblocked_arr, losers))
            self._dblocked_key = np.concatenate(
                (self._dblocked_key, gss[lose]))
        # Reference counts one conflict per (switch, cycle) round that
        # had to truncate — i.e. avail > 0 and more requesters than slots.
        f_idx = first.nonzero()[0]
        sizes = np.diff(np.concatenate((f_idx, [gss.size])))
        g_avail = avail[f_idx]
        over = (g_avail > 0) & (sizes > g_avail)
        if over.any():
            rep_over = gss[f_idx[over]] // self.NSW
            self.deliv_conf += np.bincount(rep_over, minlength=self.R)

    # ------------------------------------------------------------------ #
    # flit movement
    # ------------------------------------------------------------------ #

    def _move_phase(self, in_w: np.ndarray) -> None:
        N, S, C = self.N, self.S, self.C
        occ_flat = self._occ_flat
        # Re-materialize streamed worms whose skip window ends this
        # cycle, then account one delivered flit per still-streaming
        # worm (they each drain exactly one per skipped cycle).  Stale
        # calendar entries (worms unstreamed early by an invariant check
        # or a retirement freeze) drop out via the ``streaming`` mask.
        if self._stream_cal:
            ex = self._stream_cal.pop(self.iterations, None)
            if ex is not None:
                exa = np.concatenate(ex) if len(ex) > 1 else ex[0]
                exa = exa[self.streaming[exa]]
                if exa.size:
                    self._unstream(exa, self.iterations - 1)
        if self._n_stream:
            self.consumed_measured += self.stream_cnt * in_w
        # Flit motion is confined to unsettled worms: a worm that moved
        # nothing last cycle and saw no grant/drain/injection since has
        # the same occupancies, so every step below would be inert on it.
        msk = self.active & ~self.settled
        if self._n_stream:
            msk &= ~self.streaming
        act = msk.nonzero()[0]
        d_idx = _EMPTY_I
        if act.size:
            occ_a = self.occ[act]
            cv = self._cap_all
            cap_a = self.cap_slot[act] if cv is None else None
            # 1. drain one flit from every draining head with flits.
            drn = self.draining[act] & (occ_a[:, 0] > 0)
            occ_a[:, 0] -= drn
            d_idx = act[drn]
            if d_idx.size:
                self.consumed[d_idx] += 1
                dm = np.bincount(self.rep_slot[d_idx], minlength=self.R)
                self.consumed_measured += dm * in_w
            # A worm settles iff none of the three motion sources fired:
            # occupancies only change through drain, boundary crossings
            # and source feed, and any crossing chain with the drain idle
            # leaves a net +1 at its lowest boundary — so the signal
            # union equals occupancy-diff detection bit for bit, without
            # keeping a pre-image copy of the occupancy block.
            moved = drn.copy()
            # 2. head-first pipelined shift: one flit crosses boundary j
            #    (slot j into j-1) iff slot j has a flit and slot j-1 is
            #    below capacity *after* boundary j-1 moved — the
            #    recurrence mv_j = A_j & (B_{j-1} | mv_{j-1}).  That
            #    collapses to mv_j = A_j & (B_0 | ... | B_{j-1}): the
            #    two sides differ only when the chain is broken by a
            #    position with A = 0 and B = 0, and an empty position
            #    (A = 0) always has spare capacity (B = 1).  The
            #    prefix-OR runs bit-parallel: pack each worm's B row
            #    into one machine word (matmul with bit weights), OR in
            #    doubling shifts within the word, unpack once.  A zero
            #    packed mv word doubles as the per-worm "no motion"
            #    signal.  Positions at or beyond a worm's length hold
            #    zeros and stay inert.
            mx = int(self.clen[act].max())
            if mx > 1:
                m = mx - 1
                w = self._bitw[:m]
                B = (occ_a[:, :m] < cv if cv is not None
                     else occ_a[:, :m] < cap_a[:, None])
                pref = B @ w
                sh = 1
                while sh < m:
                    pref |= pref << sh
                    sh <<= 1
                mvb = ((occ_a[:, 1:mx] > 0) @ w) & pref
                mv = (mvb[:, None] & w) != 0
                occ_a[:, :m] += mv
                occ_a[:, 1:mx] -= mv
                moved |= mvb != 0
            # 3. source feed into the tail channel.
            ti = self.to_inject[act]
            fa = (ti > 0).nonzero()[0]
            fok = _EMPTY_I
            if fa.size:
                t = self.clen[act[fa]] - 1
                ok = (occ_a[fa, t] < cv if cv is not None
                      else occ_a[fa, t] < cap_a[fa])
                fok = fa[ok]
                occ_a[fok, t[ok]] += 1
                self.to_inject[act[fok]] -= 1
                ti[fok] -= 1
            self.occ[act] = occ_a
            moved[fok] = True
            self.settled[act] = ~moved
            # Steady-state detection: the occupancy row is unchanged iff
            # every position's net flow cancels, which (with the drain
            # live) forces drain, feed and all clen-1 boundary moves to
            # have fired — i.e. the packed move word equals the full
            # mask for the worm's length.  With >= 2 source flits left
            # the identical state recurs for the next to_inject - 1
            # cycles, so the worm skips them wholesale and returns with
            # one flit still to feed (hence it can neither release a
            # channel nor complete while streamed).
            st = drn & (ti >= 2)
            if st.any():
                fedm = np.zeros(act.size, dtype=bool)
                fedm[fok] = True
                st &= fedm
                if mx > 1:
                    st &= mvb == self._stream_mask[self.clen[act]]
                si = st.nonzero()[0]
                if si.size:
                    g = act[si]
                    k = ti[si].astype(np.int64) - 1
                    self.streaming[g] = True
                    self._stream_start[g] = self.iterations
                    self.stream_cnt += np.bincount(self.rep_slot[g],
                                                   minlength=self.R)
                    self._n_stream += si.size
                    cal = self._stream_cal
                    for kv in np.unique(k):
                        key = self.iterations + int(kv) + 1
                        cal.setdefault(key, []).append(g[k == kv])
        # 4. cascading tail release once the source is exhausted.  An
        # active exhausted worm always enters the cycle with a nonzero
        # tail (feed tops the tail up through the cycle that drains the
        # source, and the cascade below pops every hole it can reach),
        # so only this cycle's motion can empty one — the moved subset
        # covers all release candidates.
        chain_flat = self._chain_flat
        cand = act[moved & (ti == 0)] if act.size else act
        freed_rep: List[np.ndarray] = []
        freed_cid: List[np.ndarray] = []
        guard = 0
        W = self.W
        while cand.size:
            t = cand * W + (self.clen[cand] - 1)
            rel = cand[occ_flat[t] == 0]
            if not rel.size:
                break
            cidr = chain_flat[rel * W + (self.clen[rel] - 1)]
            rep_r = self.rep_slot[rel]
            self.owner_flat[rep_r * self.CO + cidr] = -1
            freed_rep.append(rep_r)
            freed_cid.append(cidr)
            self.clen[rel] -= 1
            self.settled[rel] = False
            cand = rel[self.clen[rel] > 0]
            guard += 1
            if guard > self.W:
                raise RuntimeError("tail-release cascade did not settle")
        if freed_rep:
            # Flag the (replication, table-entry) pairs that list a
            # released channel as a candidate, so parked worms there are
            # re-evaluated next cycle (injection channels appear in no
            # candidate set and need no wake — instead their hosts, if
            # they still queue messages, become injection candidates).
            fr = np.concatenate(freed_rep)
            fc = np.concatenate(freed_cid).astype(np.int64)
            inter = fc < self.inj_base
            if not inter.all():
                inj = ~inter
                hosts = fr[inj] * self.NH + (fc[inj] - self.inj_base)
                hosts = hosts[self.qlen_flat[hosts] > 0]
                if hosts.size:
                    self._inj_try = (np.concatenate((self._inj_try, hosts))
                                     if self._inj_try.size else hosts)
            if inter.any():
                fr, fc = fr[inter], fc[inter]
                cnt = self.rev_cnt[fc]
                tot = int(cnt.sum())
                if tot:
                    ends = np.cumsum(cnt)
                    pos = (np.arange(tot, dtype=np.int64)
                           - np.repeat(ends - cnt, cnt)
                           + np.repeat(self.rev_off[fc], cnt))
                    entries = (np.repeat(fr, cnt) * self.T
                               + self.rev_flat[pos])
                    self.wake_flat[entries] = True
                    self._wake_hot.append(entries)
                    self._wake_dirty = True
        # 5. completions.  A completing worm drained its last flit this
        #    phase, so it is draining and therefore never settled — the
        #    ``act`` subset covers every candidate.
        # Completion requires a drain this very cycle (``consumed`` only
        # advances there), so the drained subset covers every candidate.
        cidx = d_idx[self.consumed[d_idx] >= self.need[d_idx]]
        if cidx.size:
            rep_c = self.rep_slot[cidx]
            self.active[cidx] = False
            self.draining[cidx] = False
            self.settled[cidx] = True
            gsw_c = rep_c * self.NSW + self.dst_sw[cidx]
            np.add.at(self.avail_flat, gsw_c, 1)
            # A freed delivery slot can admit parked requesters at this
            # switch next cycle.
            self.dwake_flat[gsw_c] = True
            self._dwake_dirty = True
            counts = np.bincount(rep_c, minlength=self.R)
            self.active_cnt -= counts
            rank = np.arange(cidx.size) - np.searchsorted(rep_c, rep_c)
            self.free_slots[rep_c, self.free_top[rep_c] + rank] = \
                self.slot_local[cidx]
            self.free_top += counts
            inw = in_w[rep_c]
            if inw.any():
                cs = cidx[inw]
                rw = rep_c[inw]
                cw = self.clock[rw]
                self._lat_chunks.append(
                    (rw, cw - self.injected_at[cs],
                     cw - self.generated_at[cs]))
                self._lat_cache = None
                self.completed_in_window += np.bincount(
                    rw, minlength=self.R)

    # ------------------------------------------------------------------ #
    # the lockstep loop
    # ------------------------------------------------------------------ #

    def advance(self, *, allow_skip: bool = True,
                max_iterations: Optional[int] = None) -> None:
        """Advance every live replication one busy cycle per iteration.

        Idle replications (no worms, empty queues) jump their clock to
        the next arrival when ``allow_skip``; finished ones retire via
        the live mask, so a heterogeneous batch costs array ops only for
        replications that still have work.
        """
        iters = 0
        while self.live.any():
            if max_iterations is not None and iters >= max_iterations:
                break
            iters += 1
            self.iterations += 1
            in_w = ((self.clock >= self.w0) & (self.clock < self.w1)
                    & self.live)
            self._kc = self.rep_key + (
                self.clock.astype(_U64) << _U64(20)) * _GOLDEN
            t0 = time.perf_counter()
            self._arrivals_phase()
            t1 = time.perf_counter()
            self._injection_phase()
            t2 = time.perf_counter()
            self._arbitration_phase()
            t3 = time.perf_counter()
            self._move_phase(in_w)
            t4 = time.perf_counter()
            self._t_arrivals += t1 - t0
            self._t_injection += t2 - t1
            self._t_arbitration += t3 - t2
            self._t_move += t4 - t3

            self.executed += self.live
            self.clock += self.live
            if allow_skip:
                idle = (self.live & (self.active_cnt == 0)
                        & (self.queued == 0))
                ii = np.flatnonzero(idle)
                if ii.size:
                    target = np.minimum(self.next_arr[ii].min(axis=1),
                                        self.total[ii])
                    target = np.maximum(target, self.clock[ii])
                    self.skipped[ii] += target - self.clock[ii]
                    self.clock[ii] = target
            done = self.live & (self.clock >= self.total)
            if done.any():
                self.live &= ~done
                if self.R > 1:
                    # Freeze retired members: clearing their worm rows
                    # removes them from every dense mask and keeps the
                    # occupancy columns inert.  (Skipped for a batch of
                    # one so step() can resume past total.)
                    S = self.S
                    self.active.reshape(self.R, S)[done] = False
                    self.draining.reshape(self.R, S)[done] = False
                    self.parked.reshape(self.R, S)[done] = False
                    self.eligible.reshape(self.R, S)[done] = False
                    self.settled.reshape(self.R, S)[done] = True
                    strm = self.streaming.reshape(self.R, S)[done]
                    if strm.any():
                        self._n_stream -= int(strm.sum())
                        self.streaming.reshape(self.R, S)[done] = False
                        self.stream_cnt[done] = 0
                    self.active_cnt[done] = 0
                    for r in np.flatnonzero(done):
                        lo = int(r) * S
                        self.occ[lo:lo + S] = 0
                        self.clen[lo:lo + S] = 0

    # ------------------------------------------------------------------ #
    # results, perf, invariants
    # ------------------------------------------------------------------ #

    def _lat_arrays(self, r: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._lat_cache is None:
            if self._lat_chunks:
                reps = np.concatenate([c[0] for c in self._lat_chunks])
                lats = np.concatenate([c[1] for c in self._lat_chunks])
                tots = np.concatenate([c[2] for c in self._lat_chunks])
                order = np.argsort(reps, kind="stable")
                reps = reps[order]
                bounds = np.searchsorted(reps, np.arange(self.R + 1))
                self._lat_cache = (lats[order], tots[order], bounds)
            else:
                empty = np.zeros(0, dtype=np.int64)
                self._lat_cache = (empty, empty,
                                   np.zeros(self.R + 1, dtype=np.int64))
        lats, tots, bounds = self._lat_cache
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        return lats[lo:hi], tots[lo:hi]

    @staticmethod
    def _running_stats(arr: np.ndarray) -> RunningStats:
        st = RunningStats()
        if arr.size:
            mean = float(arr.mean())
            st.count = int(arr.size)
            st._mean = mean
            st._m2 = float(((arr - mean) ** 2).sum())
            st._min = int(arr.min())
            st._max = int(arr.max())
        return st

    def fill_perf(self, r: int) -> EnginePerf:
        perf = self.perfs[r]
        share = 1.0 / self.R
        perf.arrivals_seconds = self._t_arrivals * share
        perf.injection_seconds = self._t_injection * share
        perf.arbitration_seconds = self._t_arbitration * share
        perf.flit_move_seconds = self._t_move * share
        perf.cycles_executed = int(self.executed[r])
        perf.cycles_skipped = int(self.skipped[r])
        perf.arb_requests = int(self.arb_req[r])
        perf.arb_conflicts = int(self.arb_conf[r])
        perf.delivery_conflicts = int(self.deliv_conf[r])
        return perf

    def result(self, r: int) -> SimulationResult:
        cfg = self.configs[r]
        measure = cfg.measure_cycles
        perf = self.fill_perf(r)
        lats, tots = self._lat_arrays(r)
        lat_stats = self._running_stats(lats)
        if lats.size:
            pcts = {f"p{q}": float(np.percentile(lats, q))
                    for q in (50, 95, 99)}
        else:
            # Explicit empty result — mirrors ReservoirSampler.percentiles()
            # so the scalar engines and the vector engine keep identical
            # payload shapes when a run delivers no messages.
            pcts = {}
        return SimulationResult(
            offered_flits_per_switch_cycle=float(self.offered[r]),
            accepted_flits_per_switch_cycle=(
                float(self.consumed_measured[r]) / measure / self.NSW),
            avg_latency=lat_stats.mean,
            latency=lat_stats,
            total_latency=self._running_stats(tots),
            latency_percentiles=pcts,
            messages_completed=int(self.completed_in_window[r]),
            messages_generated=int(self.generated_cnt[r]),
            flits_consumed_measured=int(self.consumed_measured[r]),
            cycles_measured=measure,
            warmup_cycles=cfg.warmup_cycles,
            meta={
                "topology": self.topology.name,
                "routing": self.table.routing.name,
                "rate_msgs_per_host_cycle": self.rates[r],
                "adaptive": cfg.adaptive,
                "engine": "vector",
                **perf.meta_counters(),
            },
            perf=perf.wall_times(),
        )

    def check_invariants(self, r: int) -> None:
        """Conservation/exclusivity checks for one member's worm state."""
        S, C, N = self.S, self.C, self.N
        lo = r * S
        strm = self.streaming[lo:lo + S]
        if strm.any():
            # Fold streamed (skipped) cycles into consumed/to_inject so
            # the conservation sums below see materialized state; the
            # worms then simply resume per-cycle processing.
            self._unstream(np.flatnonzero(strm) + lo, self.iterations)
        occ_flat = self.occ.reshape(-1)
        chain_flat = self.chain.reshape(-1)
        seen: Dict[int, int] = {}
        for g in np.flatnonzero(self.active[lo:lo + S]) + lo:
            g = int(g)
            clen = int(self.clen[g])
            assert clen >= 1, g
            row = [int(occ_flat[g * self.W + j]) for j in range(self.W)]
            in_network = int(self.need[g] - self.to_inject[g]
                             - self.consumed[g])
            assert sum(row[:clen]) == in_network, g
            assert all(v == 0 for v in row[clen:]), g
            for j in range(clen):
                cid = int(chain_flat[g * self.W + j])
                assert int(self.owner_flat[r * self.CO + cid]) == g, (g, cid)
                assert cid not in seen, f"channel {cid} in two chains"
                seen[cid] = g
                assert 0 <= row[j] <= int(self.cap_slot[g])
        active = {int(g) for g in
                  np.flatnonzero(self.active[lo:lo + S]) + lo}
        for cid in range(C):
            own = int(self.owner_flat[r * self.CO + cid])
            if own >= 0 and own not in active:
                raise AssertionError(
                    f"channel {cid} owned by inactive slot {own}")


#: "Never" sentinel for hosts that do not inject.
_FAR = np.int64(1) << np.int64(62)


def _dense_candidates(table: RoutingTable,
                      chan_of: Dict[Tuple[int, int], int]):
    """Dense (head*2+phase)*NSW+dst → padded candidate tables (memoized).

    Built once per routing table per process and shared by every vector
    core via :meth:`RoutingTable.engine_cache` — the vectorized analogue
    of the scalar engines' shared :meth:`RoutingTable.candidate_cache`.
    """
    cache = table.engine_cache(("vector-dense-candidates",))
    tables = cache.get("tables")
    if tables is not None:
        return tables
    nsw = table.topology.num_switches
    keys: List[List[Tuple[int, int, int]]] = []
    kmax = 1
    for s in range(nsw):
        for p in (0, 1):
            for d in range(nsw):
                cands: List[Tuple[int, int, int]] = []
                if s != d:
                    for w, ph in table.hops(s, Phase(p), d):
                        cands.append((chan_of[(s, w)], w, int(ph)))
                keys.append(cands)
                kmax = max(kmax, len(cands))
    t = len(keys)
    # Padding entries hold the sentinel channel id (one past the real
    # channels): the vector core keeps that owner cell permanently busy,
    # so padded candidates drop out of the free mask on their own.
    n_hosts = table.topology.num_hosts
    pad_cid = (max(chan_of.values()) + 1 if chan_of else 0) + n_hosts
    cand_cid = np.full((t, kmax), pad_cid, dtype=np.int64)
    cand_sw = np.zeros((t, kmax), dtype=np.int32)
    cand_ph = np.zeros((t, kmax), dtype=np.int8)
    cand_n = np.zeros(t, dtype=np.int64)
    for i, cands in enumerate(keys):
        cand_n[i] = len(cands)
        for j, (cid, w, ph) in enumerate(cands):
            cand_cid[i, j] = cid
            cand_sw[i, j] = w
            cand_ph[i, j] = ph
    dist = table.routing.distances()
    finite = np.asarray(dist, dtype=float)
    max_dist = int(np.nanmax(np.where(np.isfinite(finite), finite, 0.0)))
    # Reverse map channel -> table entries containing it (CSR layout),
    # for the blocked-worm wake lists: when a channel is released, only
    # the (replication, entry) pairs listed here can gain a free
    # candidate, so only their blocked worms need re-evaluation.
    n_chan = max(chan_of.values()) + 1 if chan_of else 0
    rev_lists: List[List[int]] = [[] for _ in range(n_chan)]
    for i, cands in enumerate(keys):
        for cid, _w, _ph in cands:
            rev_lists[cid].append(i)
    rev_cnt = np.array([len(x) for x in rev_lists], dtype=np.int64)
    rev_off = np.zeros(n_chan + 1, dtype=np.int64)
    np.cumsum(rev_cnt, out=rev_off[1:])
    rev_flat = np.array([i for x in rev_lists for i in x], dtype=np.int64)
    tables = (cand_cid, cand_sw, cand_ph, cand_n, kmax, max_dist,
              rev_cnt, rev_off, rev_flat)
    cache["tables"] = tables
    return tables


# --------------------------------------------------------------------- #
# engine seam: solo wrapper, factory, bulk API
# --------------------------------------------------------------------- #


class VectorWormholeNetworkSimulator:
    """Single-replication :class:`NetworkEngine` view over a vector core.

    The drop-in ``engine="vector"`` object built by ``make_simulator``: a
    batch of one, so solo callers (probes, stepwise tests, the CLI) use
    the vectorized kernel through the ordinary engine seam.  Results are
    deterministic for a given seed but only *statistically equivalent* to
    the bit-identical engines — see the module docstring.  For real
    vector wins hand many compatible jobs to :func:`simulate_batch_vector`.
    """

    ENGINE_NAME = "vector"

    def __init__(self, routing_table: RoutingTable, traffic: TrafficPattern,
                 injection_rate: float,
                 config: SimulationConfig = SimulationConfig()):
        if config.virtual_channels != 1:
            raise ValueError(
                "VectorWormholeNetworkSimulator requires virtual_channels"
                " == 1; build via make_simulator, which falls back to the"
                " budgeted kernel for multi-VC configs"
            )
        self.table = routing_table
        self.topology = routing_table.topology
        self.traffic = traffic
        self.rate = injection_rate
        self.config = config
        self._core = _VectorCore(routing_table,
                                 [(traffic, injection_rate, config)])

    @property
    def cycle(self) -> int:
        return int(self._core.clock[0])

    @property
    def generated(self) -> int:
        return int(self._core.generated_cnt[0])

    @property
    def trace(self) -> List[Tuple[int, int, int, int]]:
        return self._core.traces[0]

    @property
    def perf(self) -> EnginePerf:
        return self._core.fill_perf(0)

    def step(self) -> None:
        """Advance exactly one cycle (no quiescence skipping)."""
        core = self._core
        target = int(core.clock[0]) + 1
        saved = int(core.total[0])
        if target > saved:
            core.total[0] = target
        core.live[0] = core.clock[0] < core.total[0]
        # Stepping may revive a replication that already ran past its
        # total, whose queued-host injection triggers were dropped while
        # it was dead — re-seed them (batch of one, so the scan is tiny).
        pending = np.flatnonzero(core.qlen_flat > 0)
        if pending.size:
            core._inj_try = np.union1d(core._inj_try, pending)
        core.advance(allow_skip=False, max_iterations=1)
        core.total[0] = max(saved, int(core.clock[0]))
        core.live[0] = core.clock[0] < core.total[0]

    def run(self) -> SimulationResult:
        """Run warmup + measurement and return the measured point."""
        core = self._core
        total = self.config.warmup_cycles + self.config.measure_cycles
        with _trace.span("engine.run", engine=self.ENGINE_NAME,
                         rate=self.rate, cycles=total) as sp:
            core.advance(allow_skip=True)
            result = core.result(0)
            sp.set(accepted=result.accepted_flits_per_switch_cycle,
                   avg_latency=result.avg_latency)
        _record_vector_metrics(core)
        record_engine_metrics(result)
        return result

    def _result(self) -> SimulationResult:
        return self._core.result(0)

    def check_invariants(self) -> None:
        """Run the core's conservation/exclusivity checks on this member."""
        self._core.check_invariants(0)


def build_vector_simulator(routing_table: RoutingTable,
                           traffic: TrafficPattern,
                           injection_rate: float,
                           config: SimulationConfig):
    """The ``engine="vector"`` factory used by ``make_simulator``.

    ``virtual_channels == 1`` (the paper's setting) gets the vectorized
    kernel; multi-VC configurations use the budgeted struct-of-arrays
    kernel relabelled as the vector engine (bit-identical to ``fast``,
    hence trivially statistically equivalent).
    """
    if config.virtual_channels == 1:
        return VectorWormholeNetworkSimulator(routing_table, traffic,
                                              injection_rate, config)
    return _BudgetedVectorFallback(routing_table, traffic, injection_rate,
                                   config)


def _make_fallback():
    # Deferred import: engine_vector and engine_fast share the engine
    # module; import at call time keeps module import order flexible.
    from repro.simulation.engine_fast import FastWormholeNetworkSimulator

    class _BudgetedVectorFallback(FastWormholeNetworkSimulator):
        """Multi-VC fallback: the budgeted kernel under the vector label."""

        ENGINE_NAME = "vector"

    return _BudgetedVectorFallback


_BudgetedVectorFallback = _make_fallback()


def _record_vector_metrics(core: _VectorCore) -> None:
    """Vector-specific observability counters (no-op when telemetry off)."""
    if _metrics.current_registry() is None:
        return
    _metrics.inc("engine.vector.cycles", float(core.iterations))
    _metrics.observe("engine.vector.batch_reps", float(core.R))
    if core.iterations:
        # Mean array-op batch size: live replications per lockstep cycle.
        _metrics.observe("engine.vector.live_reps_per_cycle",
                         float(core.executed.sum()) / core.iterations)


def simulate_batch_vector(
    jobs: Sequence[Tuple[RoutingTable, TrafficPattern, float,
                         SimulationConfig]],
) -> List[SimulationResult]:
    """Simulate every ``(table, traffic, rate, config)`` job as one
    vectorized batch.

    Returns one :class:`SimulationResult` per job, in order.  Each
    member's result is deterministic given its seed and independent of
    the batch composition (per-replication counter RNG streams, disjoint
    state partitions), but only statistically equivalent to the
    bit-identical engines.  Compatibility rules match
    :func:`repro.simulation.engine_batch.simulate_batch`: one shared
    routing-table object, one ``virtual_channels`` value.
    """
    jobs = list(jobs)
    check_batch_compatible(jobs)
    table = jobs[0][0]
    vcs = jobs[0][3].virtual_channels
    with _trace.span("engine.vector", engine="vector", members=len(jobs),
                     vcs=vcs) as sp:
        if vcs == 1:
            core = _VectorCore(table, [(traffic, rate, cfg)
                                       for _t, traffic, rate, cfg in jobs])
            core.advance(allow_skip=True)
            results = [core.result(r) for r in range(core.R)]
            _record_vector_metrics(core)
        else:
            results = [
                _BudgetedVectorFallback(table, traffic, rate, cfg).run()
                for _t, traffic, rate, cfg in jobs
            ]
        sp.set(completed=sum(res.messages_completed for res in results))
    for res in results:
        record_engine_metrics(res)
    return results


__all__ = [
    "VectorWormholeNetworkSimulator",
    "build_vector_simulator",
    "simulate_batch_vector",
]
