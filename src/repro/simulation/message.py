"""The in-flight message (worm) record of the reference engine.

A message is a contiguous worm of flits spread over the chain of channels
it currently holds.  ``chain[k]`` is the k-th held channel id (tail side
first); ``occupancy[k]`` is how many of its flits sit in that channel's
buffer.  Both are deques so tail release (``popleft``) is O(1) — a worm
of an L-flit message over a long path used to pay O(L) per released
channel with ``list.pop(0)``.  The engine maintains the invariants:

- ``sum(occupancy) + to_inject + consumed == length``;
- channels in ``chain`` are owned exclusively by this message;
- the head flit is in ``chain[-1]`` whenever ``occupancy[-1] > 0``.

The fast engine (:mod:`repro.simulation.engine_fast`) does not use this
class at all: it keeps the same per-worm state in preallocated flat
arrays indexed by worm slot.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.routing.base import Phase


class Message:
    """One message travelling through the network."""

    __slots__ = (
        "mid", "src_host", "dst_host", "src_switch", "dst_switch", "length",
        "generated_at", "injected_at", "completed_at",
        "chain", "occupancy", "to_inject", "consumed",
        "head_switch", "phase", "draining", "hops",
    )

    def __init__(self, mid: int, src_host: int, dst_host: int,
                 src_switch: int, dst_switch: int, length: int,
                 generated_at: int):
        self.mid = mid
        self.src_host = src_host
        self.dst_host = dst_host
        self.src_switch = src_switch
        self.dst_switch = dst_switch
        self.length = length
        self.generated_at = generated_at
        self.injected_at: Optional[int] = None
        self.completed_at: Optional[int] = None

        self.chain: Deque[int] = deque()      # held channel ids, tail first
        self.occupancy: Deque[int] = deque()  # flits per held channel
        self.to_inject = length          # flits still at the source
        self.consumed = 0                # flits delivered
        self.head_switch = src_switch    # switch the header has reached
        self.phase = Phase.UP
        self.draining = False            # delivery channel acquired
        self.hops = 0                    # inter-switch channels acquired

    @property
    def in_network(self) -> int:
        """Flits currently buffered in the network."""
        return self.length - self.to_inject - self.consumed

    @property
    def done(self) -> bool:
        return self.consumed >= self.length

    def latency(self) -> int:
        """Network latency: injection of the header → delivery of the tail."""
        if self.injected_at is None or self.completed_at is None:
            raise ValueError(f"message {self.mid} has not completed")
        return self.completed_at - self.injected_at

    def total_latency(self) -> int:
        """Source-queue wait plus network latency."""
        if self.completed_at is None:
            raise ValueError(f"message {self.mid} has not completed")
        return self.completed_at - self.generated_at

    def __repr__(self) -> str:
        return (
            f"Message(mid={self.mid}, {self.src_host}->{self.dst_host}, "
            f"sw {self.src_switch}->{self.dst_switch}, head@{self.head_switch}, "
            f"inj={self.to_inject} net={self.in_network} cons={self.consumed})"
        )


__all__ = ["Message"]
