"""The vectorized many-seed batch engine.

:func:`simulate_batch` runs a whole *batch* of replications (seeds ×
injection rates × traffic patterns over one routing table) through a
single lockstep kernel, and is **bit-identical** per member to the
reference engine (:mod:`repro.simulation.network`): every member owns its
own ``random.Random(config.seed)`` stream, consumed in exactly the
reference order, so the per-seed :class:`SimulationResult` payloads match
the reference and the fast engine for every seed (the three-way parity
suite ``tests/simulation/test_engine_parity.py`` enforces this).

Why a third engine — what batching buys that ``engine_fast`` cannot:

- **Struct of arrays with a replication axis.**  All per-worm state
  (chain rows, occupancy rows, head/destination switches, credits) lives
  in flat arrays indexed by *global slot* ``gslot = rep * slots_per_rep
  + slot`` — the 2-D ``[replication, slot]`` layout flattened — and all
  per-host / per-channel / per-switch state is likewise flattened with a
  leading replication axis.  One iteration of the main loop advances
  *every* live replication one (busy) cycle; the loop machinery, local
  hoisting and phase dispatch are paid once per iteration instead of
  once per replication per cycle.

- **Replication-level event skipping.**  ``engine_fast`` executes every
  cycle while any worm is in flight, even when every worm is dormant.
  Dormant worms are frozen until one of three *scheduled* events: a
  message arrival (the arrival heap), a sealed-drain channel release
  (the release-event calendar) or a sealed-worm completion (the
  completion heap).  When a replication has zero awake worms and no
  ready injection, the kernel jumps its clock straight to the earliest
  of those deadlines — sound because nothing else can change state, and
  provably identical to executing the intervening no-op cycles.  At low
  and mid loads this removes the majority of executed cycles.

- **An active-mask over replications.**  Members finish independently
  (heterogeneous warmup/measure windows are allowed); finished members
  retire from the iteration set and stop costing anything.

- **Shared immutable tables.**  The channel layout, the routing
  candidate cache and the per-``(switch, phase, destination)`` free-list
  construction are shared across the whole batch instead of rebuilt per
  replication.

The RNG-coupled phases (arrival draws, arbitration draws, conflict
shuffles) are inherently scalar — bit-identity pins them to each
member's own Mersenne stream in reference order — so they run per
member, per cycle, exactly as the fast engine runs them.  Dormancy,
sealed drains and arrival parking are inherited from
:mod:`repro.simulation.engine_fast` unchanged (see that module's
docstring for the semantics argument); this kernel is the
``virtual_channels == 1`` path only.  Configurations with
``virtual_channels > 1`` fall back to the budgeted struct-of-arrays
kernel per member (still bit-identical, no lockstep win).

Batch compatibility rules (checked by :func:`simulate_batch`):

- all members must share one :class:`~repro.routing.tables.RoutingTable`
  object (same topology, same routing) — batching across topologies is
  a planning concern, not an engine concern;
- all members must agree on ``virtual_channels``;
- everything else may vary per member: seed, injection rate, traffic
  pattern, message length, buffer depth, queue capacity, warmup/measure
  windows, adaptivity, delivery channels, trace recording.

Construct a single-member view via
:func:`repro.simulation.engine.make_simulator` with
``SimulationConfig(engine="batch")``; callers holding ≥ 2 compatible
pending replications should prefer :func:`simulate_batch`.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import trace as _trace
from repro.routing.base import Phase
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import EnginePerf, record_engine_metrics
from repro.simulation.metrics import SimulationResult
from repro.simulation.traffic import (IntraClusterTraffic, TrafficPattern,
                                      UniformTraffic)
from repro.util.stats import ReservoirSampler, RunningStats

_INF = float("inf")


class BatchCompatibilityError(ValueError):
    """Raised when a set of replications cannot share one batch kernel."""


def check_batch_compatible(jobs: Sequence[Tuple[RoutingTable, TrafficPattern,
                                                float, SimulationConfig]]) -> None:
    """Validate that ``jobs`` may run as one batch; raise a clear error.

    ``jobs`` are ``(table, traffic, rate, config)`` tuples.  The rules are
    the module-level compatibility rules: one shared routing-table object
    and one ``virtual_channels`` value.
    """
    if not jobs:
        raise BatchCompatibilityError("simulate_batch needs at least one job")
    table0 = jobs[0][0]
    vcs0 = jobs[0][3].virtual_channels
    for i, (table, _traffic, _rate, cfg) in enumerate(jobs):
        if table is not table0:
            raise BatchCompatibilityError(
                f"job {i} uses a different routing table/topology than job 0 "
                f"({table.topology.name!r} vs {table0.topology.name!r}); "
                "batched replications must share one RoutingTable object — "
                "split the batch by topology first"
            )
        if cfg.virtual_channels != vcs0:
            raise BatchCompatibilityError(
                f"job {i} has virtual_channels={cfg.virtual_channels} but "
                f"job 0 has {vcs0}; a batch must agree on virtual_channels"
            )


class _BatchCore:
    """Flattened multi-replication state + the lockstep kernel.

    All members share one routing table and ``virtual_channels == 1``.
    State arrays are the fast engine's struct-of-arrays layout with the
    replication axis flattened in front (``gslot = rep * S + slot``,
    ``gchan = rep * C + cid`` and so on).
    """

    def __init__(self, table: RoutingTable,
                 members: Sequence[Tuple[TrafficPattern, float,
                                         SimulationConfig]]):
        self.table = table
        self.topology = topo = table.topology
        R = len(members)
        self.R = R

        # --- shared channel layout (identical cids to the reference) ----
        self.chan_of: Dict[Tuple[int, int], List[int]] = {}
        n_chan = 0
        for u, v in topo.links:
            for a, b in ((u, v), (v, u)):
                self.chan_of[(a, b)] = [n_chan]
                n_chan += 1
        self.inj_base = n_chan
        self._host_switch = [topo.host_switch(h)
                             for h in range(topo.num_hosts)]
        self.C = C = n_chan + topo.num_hosts
        self.S = S = C + 1            # worm slots per replication
        self.W = W = topo.num_switches + 4
        self.NH = NH = topo.num_hosts
        self.NSW = NSW = topo.num_switches
        self._initial_phase = table.routing.initial_phase()
        # Candidate caches shared across the batch — and, via the routing
        # table, across every engine instance on this table (one store per
        # (vcs, adaptive); the batch kernel is vcs == 1 only).
        self._cand_cache: Dict[bool, Dict[Tuple[int, Phase, int],
                                          Tuple[Tuple[int, int, Phase],
                                                ...]]] = \
            {True: table.candidate_cache(1, True),
             False: table.candidate_cache(1, False)}

        # --- flattened per-replication state ----------------------------
        self.owner = [-1] * (R * C)           # gchan -> owning gslot
        self.chain = [0] * (R * S * W)
        self.occ = [0] * (R * S * W)
        self.tcol = [0] * (R * S)             # absolute index into chain/occ
        self.clen = [0] * (R * S)
        self.to_inject = [0] * (R * S)
        self.consumed = [0] * (R * S)
        self.head_sw = [0] * (R * S)
        self.dst_sw = [0] * (R * S)
        self.phase: List[Phase] = [Phase.UP] * (R * S)
        self.draining = [False] * (R * S)
        self.injected_at = [0] * (R * S)
        self.generated_at = [0] * (R * S)
        self.awake = [False] * (R * S)
        self.epoch = [0] * (R * S)
        self.arb_blocked = [0] * (R * S)
        self.sealed = [False] * (R * S)
        self.slot_cands: List[Tuple[Tuple[int, int, Phase], ...]] = \
            [()] * (R * S)
        self.avail_delivery = [0] * (R * NSW)
        self.queue_list: List[Optional[deque]] = [None] * (R * NH)
        self.parked = [False] * (R * NH)
        self.gap_denom = [0.0] * (R * NH)
        self.chan_watch: List[List[Tuple[int, int]]] = \
            [[] for _ in range(R * C)]
        self.deliv_watch: List[List[Tuple[int, int]]] = \
            [[] for _ in range(R * NSW)]

        # --- per-replication containers and scalars ---------------------
        self.rngs: List[random.Random] = []
        self.traffics: List[TrafficPattern] = []
        self.configs: List[SimulationConfig] = []
        self.rates: List[float] = []
        self.host_rate: List[Dict[int, float]] = []
        self.arrivals: List[List[Tuple[int, int]]] = []   # per-rep heaps
        self.orders: List[List[int]] = []                 # gslots
        # Awake worms per rep, slot -> injection sequence number.  The
        # reference arbitration order is active-list (injection) order
        # filtered by completions, so sorting the awake set by a sequence
        # number stamped at injection reproduces it exactly — no per-cycle
        # scan of the full active list.
        self.awake_ds: List[Dict[int, int]] = []
        self.seq_arr = [0] * (R * S)          # gslot -> injection seq
        self.seq_ctr = [0] * R
        self.host_pos_d: List[Dict[int, int]] = []
        # Per-host destination-draw specialization (None -> dest_for call).
        self._dest_tab: List[Optional[List[Optional[List[int]]]]] = []
        self._uni_nh = [0] * R
        self.free_slots: List[List[int]] = []             # gslots
        self.events: List[Dict[int, List[int]]] = []      # cycle -> [cid]
        self.rel_heaps: List[List[int]] = []              # event cycles
        self.comp_dues: List[List[Tuple[int, int]]] = []  # (cycle, gslot)
        self.final_cids: List[Dict[int, List[int]]] = []  # gslot -> [cid]
        self.traces: List[List[Tuple[int, int, int, int]]] = []
        self.lat_stats: List[RunningStats] = []
        self.tot_stats: List[RunningStats] = []
        self.samplers: List[ReservoirSampler] = []
        self.perfs: List[EnginePerf] = []

        self.cycle_l = [0] * R
        self.total_l = [0] * R
        self.queued_total = [0] * R
        self.next_mid = [0] * R
        self.generated = [0] * R
        self.consumed_measured = [0] * R
        self.completed_in_window = [0] * R
        self.inj_readys: List[set] = [set() for _ in range(R)]
        # Config flats hoisted for the hot loop.
        self.length_l = [0] * R
        self.cap_l = [0] * R
        self.qcap_l = [0] * R
        self.record_l = [False] * R
        self.w0_l = [0] * R
        self.w1_l = [0] * R
        self.adaptive_l = [True] * R
        self.executed_l = [0] * R
        self.skipped_l = [0] * R
        self.arb_req_l = [0] * R
        self.arb_conf_l = [0] * R
        self.deliv_conf_l = [0] * R

        for r, (traffic, rate, cfg) in enumerate(members):
            if rate < 0:
                raise ValueError(f"injection_rate must be >= 0, got {rate}")
            rng = random.Random(cfg.seed)
            self.rngs.append(rng)
            self.traffics.append(traffic)
            self.configs.append(cfg)
            self.rates.append(rate)
            self.length_l[r] = cfg.message_length
            self.cap_l[r] = cfg.buffer_flits
            self.qcap_l[r] = cfg.queue_capacity
            self.record_l[r] = cfg.record_trace
            self.w0_l[r] = cfg.warmup_cycles
            self.w1_l[r] = cfg.warmup_cycles + cfg.measure_cycles
            self.total_l[r] = self.w1_l[r]
            self.adaptive_l[r] = cfg.adaptive

            dc = (cfg.delivery_channels if cfg.delivery_channels is not None
                  else max(1, topo.hosts_per_switch))
            sw_off = r * NSW
            for sw in range(NSW):
                self.avail_delivery[sw_off + sw] = dc

            # Arrival process: same construction-time draw order as the
            # reference engine (one gap draw per active host, host order).
            rates_r: Dict[int, float] = {}
            heap: List[Tuple[int, int]] = []
            q_off = r * NH
            hp: Dict[int, int] = {}
            for pos, h in enumerate(traffic.active_hosts()):
                hp[h] = pos
                hr = rate * traffic.rate_scale(h)
                if hr > 1.0:
                    raise ValueError(
                        f"host {h} injection rate {hr} exceeds 1 message/cycle"
                    )
                self.queue_list[q_off + h] = deque()
                rates_r[h] = hr
                if hr > 0:
                    if hr < 1.0:
                        self.gap_denom[q_off + h] = math.log1p(-hr)
                        u = rng.random()
                        gap = max(1, math.ceil(
                            math.log(max(u, 1e-300)) / math.log1p(-hr)))
                    else:
                        rng.random()
                        gap = 1
                    heapq.heappush(heap, (gap, h))
            self.host_rate.append(rates_r)
            self.arrivals.append(heap)
            self.host_pos_d.append(hp)
            # Destination-draw fast paths: same draws as dest_for, with
            # the dynamic dispatch resolved once.  Anything with extra
            # pre-draw logic (hotspots, intercluster mixing, custom
            # patterns) keeps the virtual call.
            dest_tab: Optional[List[Optional[List[int]]]] = None
            if type(traffic) is IntraClusterTraffic and \
                    traffic.intercluster_fraction == 0.0:
                dest_tab = [None] * NH
                for h2, c2 in traffic.cluster_of.items():
                    dest_tab[h2] = traffic.hosts_by_cluster[c2]
            self._dest_tab.append(dest_tab)
            if type(traffic) is UniformTraffic:
                self._uni_nh[r] = traffic.topology.num_hosts

            g_off = r * S
            self.free_slots.append(
                list(range(g_off + S - 1, g_off - 1, -1)))
            self.orders.append([])
            self.awake_ds.append({})
            self.events.append({})
            self.rel_heaps.append([])
            self.comp_dues.append([])
            self.final_cids.append({})
            self.traces.append([])
            self.lat_stats.append(RunningStats())
            self.tot_stats.append(RunningStats())
            self.samplers.append(ReservoirSampler(seed=cfg.seed))
            self.perfs.append(EnginePerf())

    # ------------------------------------------------------------------ #
    # routing candidates (shared across the batch)
    # ------------------------------------------------------------------ #

    def _candidates(self, adaptive: bool, head_sw: int, phase: Phase,
                    dst_sw: int) -> Tuple[Tuple[int, int, Phase], ...]:
        cache = self._cand_cache[adaptive]
        key = (head_sw, phase, dst_sw)
        cands = cache.get(key)
        if cands is None:
            hops = self.table.hops(head_sw, phase, dst_sw)
            if not hops:
                raise RuntimeError(
                    f"no legal continuation toward switch {dst_sw} at "
                    f"({head_sw}, {phase.name})"
                )
            if not adaptive:
                hops = hops[:1]
            cands = tuple(
                (self.chan_of[(head_sw, w)][0], w, ph) for w, ph in hops
            )
            cache[key] = cands
        return cands

    # ------------------------------------------------------------------ #
    # the lockstep kernel
    # ------------------------------------------------------------------ #

    def advance(self, reps: Sequence[int], *, allow_skip: bool,
                max_iterations: Optional[int] = None) -> None:
        """Advance every replication in ``reps`` to its target cycle.

        Each loop iteration runs one *busy* cycle for every still-live
        replication (phase by phase, so regular work stays batched), then
        jumps each replication's clock to its next event deadline when
        nothing is awake.  With ``allow_skip=False`` clocks advance one
        cycle per iteration (the ``step()`` contract: never skip).
        ``max_iterations`` bounds the loop for single-step execution.
        """
        # ---- hoisted flats (shared by every iteration) ------------------
        perf_counter = time.perf_counter
        heappush = heapq.heappush
        heappop = heapq.heappop
        ceil = math.ceil
        log = math.log

        owner = self.owner
        chain = self.chain
        occ = self.occ
        tcol = self.tcol
        clen = self.clen
        to_inject = self.to_inject
        consumed = self.consumed
        head_sw = self.head_sw
        dst_sw = self.dst_sw
        phase = self.phase
        draining = self.draining
        injected_at = self.injected_at
        generated_at = self.generated_at
        awake = self.awake
        epoch = self.epoch
        arb_blocked = self.arb_blocked
        sealed = self.sealed
        slot_cands = self.slot_cands
        avail_delivery = self.avail_delivery
        queue_list = self.queue_list
        parked = self.parked
        gap_denom = self.gap_denom
        chan_watch = self.chan_watch
        deliv_watch = self.deliv_watch
        host_switch = self._host_switch
        cand_caches = self._cand_cache

        rngs = self.rngs
        traffics = self.traffics
        arrivals_l = self.arrivals
        orders = self.orders
        awake_ds = self.awake_ds
        seq_arr = self.seq_arr
        seq_ctr = self.seq_ctr
        host_pos_ds = self.host_pos_d
        dest_tabs = self._dest_tab
        uni_nh_l = self._uni_nh
        free_slots_l = self.free_slots
        events_l = self.events
        rel_heaps = self.rel_heaps
        comp_dues = self.comp_dues
        final_cids_l = self.final_cids
        traces = self.traces
        inj_readys = self.inj_readys

        cycle_l = self.cycle_l
        total_l = self.total_l
        queued_total = self.queued_total
        next_mid_l = self.next_mid
        generated_l = self.generated
        consumed_measured = self.consumed_measured
        length_l = self.length_l
        cap_l = self.cap_l
        qcap_l = self.qcap_l
        record_l = self.record_l
        w0_l = self.w0_l
        w1_l = self.w1_l
        adaptive_l = self.adaptive_l
        executed_l = self.executed_l
        skipped_l = self.skipped_l
        arb_req_l = self.arb_req_l
        arb_conf_l = self.arb_conf_l
        deliv_conf_l = self.deliv_conf_l

        C = self.C
        S = self.S
        W = self.W
        NH = self.NH
        NSW = self.NSW
        inj_base = self.inj_base

        live_reps = [r for r in reps if cycle_l[r] < total_l[r]]
        awake_lists: Dict[int, List[int]] = {}
        t_arr = t_inj = t_arb = t_mov = 0.0
        iterations = 0

        while live_reps:
            iterations += 1
            t0 = perf_counter()

            # ---- phase 1: sealed releases due + arrivals ----------------
            for r in live_reps:
                cycle = cycle_l[r]
                q_off = r * NH
                o_off = r * C

                events = events_l[r]
                if events:
                    rel = events.pop(cycle, None)
                    if rel is not None:
                        ad = awake_ds[r]
                        for cid in rel:
                            gc = o_off + cid
                            owner[gc] = -1
                            wl = chan_watch[gc]
                            if wl:
                                for s2, e2 in wl:
                                    if epoch[s2] == e2:
                                        awake[s2] = True
                                        epoch[s2] = e2 + 1
                                        ad[s2] = seq_arr[s2]
                                wl.clear()
                            if cid >= inj_base and \
                                    queue_list[q_off + cid - inj_base]:
                                inj_readys[r].add(cid - inj_base)

                arrivals = arrivals_l[r]
                if arrivals and arrivals[0][0] <= cycle:
                    rng = rngs[r]
                    rng_random = rng.random
                    rng_randbelow = rng._randbelow
                    dest_tab = dest_tabs[r]
                    uni_nh = uni_nh_l[r]
                    dest_for = traffics[r].dest_for
                    qcap = qcap_l[r]
                    length = length_l[r]
                    record = record_l[r]
                    trace = traces[r]
                    inj_ready = inj_readys[r]
                    qt = queued_total[r]
                    nm = next_mid_l[r]
                    gen = generated_l[r]
                    while arrivals and arrivals[0][0] <= cycle:
                        h = heappop(arrivals)[1]
                        q = queue_list[q_off + h]
                        if len(q) >= qcap:
                            parked[q_off + h] = True
                            continue
                        # Same draws as dest_for, dispatch pre-resolved.
                        if dest_tab is not None:
                            lst = dest_tab[h]
                            while True:
                                dst = lst[rng_randbelow(len(lst))]
                                if dst != h:
                                    break
                        elif uni_nh:
                            dst = rng_randbelow(uni_nh - 1)
                            if dst >= h:
                                dst += 1
                        else:
                            dst = dest_for(h, rng)
                        nm += 1
                        gen += 1
                        if record:
                            trace.append((cycle, h, dst, length))
                        q.append((nm - 1, dst, cycle))
                        qt += 1
                        if owner[o_off + inj_base + h] < 0:
                            inj_ready.add(h)
                        u = rng_random()
                        d = gap_denom[q_off + h]
                        if d:
                            gap = ceil(log(u if u > 1e-300 else 1e-300) / d)
                            if gap < 1:
                                gap = 1
                        else:
                            gap = 1
                        heappush(arrivals, (cycle + gap, h))
                    queued_total[r] = qt
                    next_mid_l[r] = nm
                    generated_l[r] = gen

            t1 = perf_counter()

            # ---- phase 2: injections ------------------------------------
            for r in live_reps:
                inj_ready = inj_readys[r]
                if not inj_ready:
                    continue
                cycle = cycle_l[r]
                q_off = r * NH
                o_off = r * C
                order = orders[r]
                ad = awake_ds[r]
                sc = seq_ctr[r]
                free_slots = free_slots_l[r]
                arrivals = arrivals_l[r]
                length = length_l[r]
                adaptive = adaptive_l[r]
                cand_cache = cand_caches[adaptive]
                initial_phase = self._initial_phase
                if len(inj_ready) == 1:
                    ready = inj_ready
                else:
                    ready = sorted(inj_ready,
                                   key=host_pos_ds[r].__getitem__)
                for h in ready:
                    q = queue_list[q_off + h]
                    cid = inj_base + h
                    mid, dst, gen_at = q.popleft()
                    queued_total[r] -= 1
                    if parked[q_off + h]:
                        parked[q_off + h] = False
                        heappush(arrivals, (cycle + 1, h))
                    slot = free_slots.pop()
                    base = slot * W
                    chain[base] = cid
                    occ[base] = 0
                    tcol[slot] = base
                    clen[slot] = 1
                    to_inject[slot] = length
                    consumed[slot] = 0
                    hs_i = host_switch[h]
                    ds_i = host_switch[dst]
                    head_sw[slot] = hs_i
                    dst_sw[slot] = ds_i
                    phase[slot] = initial_phase
                    if hs_i != ds_i:
                        nc = cand_cache.get((hs_i, initial_phase, ds_i))
                        slot_cands[slot] = (
                            nc if nc is not None
                            else self._candidates(adaptive, hs_i,
                                                  initial_phase, ds_i))
                    draining[slot] = False
                    injected_at[slot] = cycle
                    generated_at[slot] = gen_at
                    awake[slot] = True
                    arb_blocked[slot] = 0
                    owner[o_off + cid] = slot
                    order.append(slot)
                    sc += 1
                    seq_arr[slot] = sc
                    ad[slot] = sc
                seq_ctr[r] = sc
                inj_ready.clear()

            t2 = perf_counter()

            # ---- phase 3: arbitration -----------------------------------
            awake_lists.clear()
            for r in live_reps:
                ad = awake_ds[r]
                if not ad:
                    continue
                # The reference scan order: injection sequence, completed
                # worms absent — exactly how the awake dict is keyed.
                awake_list = (sorted(ad, key=ad.__getitem__)
                              if len(ad) > 1 else list(ad))
                awake_lists[r] = awake_list
                o_off = r * C
                sw_off = r * NSW
                rng = rngs[r]
                # randrange(n) is exactly _randbelow(n) for a positive int
                # stop; binding the internal avoids argument validation on
                # the hottest draw sites while consuming identical bits.
                rng_randbelow = rng._randbelow
                adaptive = adaptive_l[r]
                cand_cache = cand_caches[adaptive]
                requests: Dict[int, List[Tuple[int, int, Phase]]] = {}
                delivery_requests: Dict[int, List[int]] = {}

                for slot in awake_list:
                    c = clen[slot]
                    if draining[slot] or c == 0 or occ[tcol[slot] + c - 1] == 0:
                        continue
                    hs = head_sw[slot]
                    ds = dst_sw[slot]
                    arb_blocked[slot] = 0
                    if hs == ds:
                        dr = delivery_requests.get(hs)
                        if dr is None:
                            delivery_requests[hs] = [slot]
                        else:
                            dr.append(slot)
                        continue
                    cands = slot_cands[slot]
                    if len(cands) == 1:
                        cand = cands[0]
                        if owner[o_off + cand[0]] >= 0:
                            arb_blocked[slot] = 1
                            continue
                        cid, w, ph = cand
                    else:
                        free = [cand for cand in cands
                                if owner[o_off + cand[0]] < 0]
                        if not free:
                            arb_blocked[slot] = 1
                            continue
                        cid, w, ph = (free[rng_randbelow(len(free))]
                                      if len(free) > 1 else free[0])
                    rq = requests.get(cid)
                    if rq is None:
                        requests[cid] = [(slot, w, ph)]
                    else:
                        rq.append((slot, w, ph))

                for cid, reqs in requests.items():
                    arb_req_l[r] += 1
                    if len(reqs) > 1:
                        arb_conf_l[r] += 1
                        slot, w, ph = reqs[rng_randbelow(len(reqs))]
                    else:
                        slot, w, ph = reqs[0]
                    owner[o_off + cid] = slot
                    j = tcol[slot] + clen[slot]
                    if j >= (slot + 1) * W:  # pragma: no cover - guard
                        raise AssertionError(
                            f"chain row overflow for slot {slot}"
                        )
                    chain[j] = cid
                    occ[j] = 0
                    clen[slot] += 1
                    head_sw[slot] = w
                    phase[slot] = ph
                    ds = dst_sw[slot]
                    if w != ds:
                        key = (w, ph, ds)
                        nc = cand_cache.get(key)
                        slot_cands[slot] = (
                            nc if nc is not None
                            else self._candidates(adaptive, w, ph, ds))

                for sw, reqs in delivery_requests.items():
                    avail = avail_delivery[sw_off + sw]
                    if avail <= 0:
                        for slot in reqs:
                            arb_blocked[slot] = 2
                        continue
                    if len(reqs) > avail:
                        deliv_conf_l[r] += 1
                        rng.shuffle(reqs)
                        reqs = reqs[:avail]
                    for slot in reqs:
                        draining[slot] = True
                        avail_delivery[sw_off + sw] -= 1

            t3 = perf_counter()

            # ---- phase 4: movement, seals, completions ------------------
            for r in live_reps:
                cycle = cycle_l[r]
                awake_list = awake_lists.get(r)
                comp_due = comp_dues[r]
                comp_ready = comp_due and comp_due[0][0] <= cycle
                if awake_list is None and not comp_ready:
                    continue
                q_off = r * NH
                o_off = r * C
                sw_off = r * NSW
                order = orders[r]
                ad = awake_ds[r]
                events = events_l[r]
                rel_heap = rel_heaps[r]
                final_cids = final_cids_l[r]
                inj_ready = inj_readys[r]
                w0 = w0_l[r]
                w1 = w1_l[r]
                cap = cap_l[r]

                for slot in awake_list or ():
                    if draining[slot]:
                        # Delivery granted this cycle: seal the worm — the
                        # remainder of its life is deterministic.  Common
                        # case inline: a bubble-free pipe has a closed-form
                        # schedule (see _seal for the derivation and the
                        # bubbled fallback).
                        t = tcol[slot]
                        c = clen[slot]
                        row = occ[t:t + c]
                        if 0 in row:
                            self._seal(r, slot, cycle)
                            continue
                        s_acc = to_inject[slot]
                        comp_c = cycle + s_acc + sum(row) - 1
                        lo = cycle if cycle > w0 else w0
                        hi = comp_c if comp_c < w1 - 1 else w1 - 1
                        if hi >= lo:
                            consumed_measured[r] += hi - lo + 1
                        fin: List[int] = []
                        for j in range(c):
                            s_acc += row[j]
                            rel_c = cycle + s_acc - 1
                            if rel_c < comp_c:
                                el = events.get(rel_c + 1)
                                if el is None:
                                    events[rel_c + 1] = [chain[t + j]]
                                    heappush(rel_heap, rel_c + 1)
                                else:
                                    el.append(chain[t + j])
                            else:
                                fin.append(chain[t + j])
                        final_cids[slot] = fin
                        heappush(comp_due, (comp_c, slot))
                        sealed[slot] = True
                        awake[slot] = False
                        epoch[slot] += 1
                        del ad[slot]
                        continue
                    t = tcol[slot]
                    c = clen[slot]
                    moved = False

                    if c > 1:
                        for i in range(t + c - 1, t, -1):
                            if occ[i - 1] > 0 and occ[i] < cap:
                                occ[i - 1] -= 1
                                occ[i] += 1
                                moved = True

                    ti = to_inject[slot]
                    if ti > 0 and occ[t] < cap:
                        occ[t] += 1
                        ti -= 1
                        to_inject[slot] = ti
                        moved = True

                    while c and ti == 0 and occ[t] == 0:
                        cid = chain[t]
                        gc = o_off + cid
                        owner[gc] = -1
                        wl = chan_watch[gc]
                        if wl:
                            for s2, e2 in wl:
                                if epoch[s2] == e2:
                                    awake[s2] = True
                                    epoch[s2] = e2 + 1
                                    ad[s2] = seq_arr[s2]
                            wl.clear()
                        if cid >= inj_base and \
                                queue_list[q_off + cid - inj_base]:
                            inj_ready.add(cid - inj_base)
                        t += 1
                        c -= 1
                        moved = True
                    tcol[slot] = t
                    clen[slot] = c

                    if moved:
                        continue
                    ab = arb_blocked[slot]
                    if ab == 2:
                        ds2 = dst_sw[slot]
                        if avail_delivery[sw_off + ds2] == 0:
                            awake[slot] = False
                            del ad[slot]
                            deliv_watch[sw_off + ds2].append(
                                (slot, epoch[slot]))
                    elif ab:
                        cands = slot_cands[slot]
                        for cand in cands:
                            if owner[o_off + cand[0]] < 0:
                                break
                        else:
                            awake[slot] = False
                            del ad[slot]
                            e2 = epoch[slot]
                            for cand in cands:
                                chan_watch[o_off + cand[0]].append((slot, e2))

                # Sealed-worm completions due this cycle.
                if comp_due and comp_due[0][0] <= cycle:
                    n_active = len(order)
                    start = cycle % n_active if n_active else 0
                    completions: List[Tuple[int, int, int]] = []
                    while comp_due and comp_due[0][0] <= cycle:
                        slot = heappop(comp_due)[1]
                        for cid in final_cids.pop(slot):
                            gc = o_off + cid
                            owner[gc] = -1
                            wl = chan_watch[gc]
                            if wl:
                                for s2, e2 in wl:
                                    if epoch[s2] == e2:
                                        awake[s2] = True
                                        epoch[s2] = e2 + 1
                                        ad[s2] = seq_arr[s2]
                                wl.clear()
                            if cid >= inj_base and \
                                    queue_list[q_off + cid - inj_base]:
                                inj_ready.add(cid - inj_base)
                        ds = dst_sw[slot]
                        avail_delivery[sw_off + ds] += 1
                        wl = deliv_watch[sw_off + ds]
                        if wl:
                            for s2, e2 in wl:
                                if epoch[s2] == e2:
                                    awake[s2] = True
                                    epoch[s2] = e2 + 1
                                    ad[s2] = seq_arr[s2]
                            wl.clear()
                        idx = order.index(slot)
                        completions.append(((idx - start) % n_active,
                                            slot, idx))
                    self._finish_completions(r, completions,
                                             w0 <= cycle < w1, cycle)

            t4 = perf_counter()
            t_arr += t1 - t0
            t_inj += t2 - t1
            t_arb += t3 - t2
            t_mov += t4 - t3

            # ---- clock advance / event skip / active-mask ---------------
            retired = False
            for i, r in enumerate(live_reps):
                cycle = cycle_l[r]
                executed_l[r] += 1
                target = total_l[r]
                if allow_skip and not awake_ds[r] and not inj_readys[r]:
                    arrivals = arrivals_l[r]
                    nxt = arrivals[0][0] if arrivals else _INF
                    rel_heap = rel_heaps[r]
                    while rel_heap and rel_heap[0] <= cycle:
                        heappop(rel_heap)
                    if rel_heap and rel_heap[0] < nxt:
                        nxt = rel_heap[0]
                    comp_due = comp_dues[r]
                    if comp_due and comp_due[0][0] < nxt:
                        nxt = comp_due[0][0]
                    if nxt > target:
                        nxt = target
                    if nxt > cycle + 1:
                        skipped_l[r] += nxt - cycle - 1
                        cycle_l[r] = nxt
                    else:
                        cycle_l[r] = cycle + 1
                else:
                    cycle_l[r] = cycle + 1
                if cycle_l[r] >= target:
                    live_reps[i] = -1
                    retired = True
            if retired:
                live_reps = [r for r in live_reps if r >= 0]
            if max_iterations is not None and iterations >= max_iterations:
                break

        # Coarse wall-time attribution: the batch-level phase totals,
        # apportioned by executed cycles (wall times are excluded from
        # result equality; this keeps `repro report` breakdowns summing
        # to the true batch cost).  Deterministic counters are exact.
        exec_total = sum(executed_l[r] for r in reps) or 1
        for r in reps:
            share = executed_l[r] / exec_total
            perf = self.perfs[r]
            perf.arrivals_seconds += t_arr * share
            perf.injection_seconds += t_inj * share
            perf.arbitration_seconds += t_arb * share
            perf.flit_move_seconds += t_mov * share

    # ------------------------------------------------------------------ #
    # sealing and completion bookkeeping (ports of the fast engine's)
    # ------------------------------------------------------------------ #

    def _seal(self, r: int, slot: int, cycle: int) -> None:
        """Replay a draining worm's deterministic remainder (bubbled path).

        Identical semantics to ``engine_fast._seal``; see that docstring.
        Operates on the flattened arrays; ``slot`` is a global slot.
        """
        t = self.tcol[slot]
        c = self.clen[slot]
        chain = self.chain
        locc = self.occ[t:t + c]
        ti = self.to_inject[slot]
        cons = self.consumed[slot]
        cap = self.cap_l[r]
        length = self.length_l[r]
        w0 = self.w0_l[r]
        w1 = self.w1_l[r]
        events = self.events[r]
        rel_heap = self.rel_heaps[r]

        meas = 0
        releases: List[Tuple[int, int]] = []
        tl = 0
        hl = c - 1
        k = cycle
        limit = cycle + (c + 2) * length + 8
        while True:
            if locc[hl] > 0:
                locc[hl] -= 1
                cons += 1
                if w0 <= k < w1:
                    meas += 1
            for i in range(hl, tl, -1):
                if locc[i - 1] > 0 and locc[i] < cap:
                    locc[i - 1] -= 1
                    locc[i] += 1
            if ti > 0 and locc[tl] < cap:
                locc[tl] += 1
                ti -= 1
            while tl <= hl and ti == 0 and locc[tl] == 0:
                releases.append((k, chain[t + tl]))
                tl += 1
            if cons >= length:
                break
            k += 1
            if k > limit:  # pragma: no cover - progress guard
                raise AssertionError(f"sealed worm {slot} failed to drain")
        if tl != hl + 1:  # pragma: no cover - invariant guard
            raise AssertionError(
                f"sealed worm {slot} completed still holding channels"
            )
        self.consumed_measured[r] += meas
        final: List[int] = []
        for rel_c, cid in releases:
            if rel_c < k:
                el = events.get(rel_c + 1)
                if el is None:
                    events[rel_c + 1] = [cid]
                    heapq.heappush(rel_heap, rel_c + 1)
                else:
                    el.append(cid)
            else:
                final.append(cid)
        self.final_cids[r][slot] = final
        heapq.heappush(self.comp_dues[r], (k, slot))
        self.sealed[slot] = True
        self.awake[slot] = False
        self.epoch[slot] += 1
        del self.awake_ds[r][slot]

    def _finish_completions(self, r: int,
                            completions: List[Tuple[int, int, int]],
                            measuring: bool, cycle: int) -> None:
        """Record stats in reference rotation order, recycle slots."""
        completions.sort()
        if measuring:
            ls = self.lat_stats[r]
            ts = self.tot_stats[r]
            res = self.samplers[r]
            sample = res._sample
            rcap = res.capacity
            res_rand = res._rng.randrange
            injected_at = self.injected_at
            generated_at = self.generated_at
            self.completed_in_window[r] += len(completions)
            for _, slot, _ in completions:
                lat = cycle - injected_at[slot]
                n = ls.count + 1
                ls.count = n
                delta = lat - ls._mean
                m = ls._mean + delta / n
                ls._mean = m
                ls._m2 += delta * (lat - m)
                if lat < ls._min:
                    ls._min = lat
                if lat > ls._max:
                    ls._max = lat
                tot = cycle - generated_at[slot]
                n = ts.count + 1
                ts.count = n
                delta = tot - ts._mean
                m = ts._mean + delta / n
                ts._mean = m
                ts._m2 += delta * (tot - m)
                if tot < ts._min:
                    ts._min = tot
                if tot > ts._max:
                    ts._max = tot
                rc = res.count + 1
                res.count = rc
                if len(sample) < rcap:
                    sample.append(lat)
                else:
                    j = res_rand(rc)
                    if j < rcap:
                        sample[j] = lat
        order = self.orders[r]
        free_slots = self.free_slots[r]
        for _, slot, _ in completions:
            self.awake[slot] = False
            self.sealed[slot] = False
            self.draining[slot] = False
            self.epoch[slot] += 1
            free_slots.append(slot)
        if len(completions) == 1:
            del order[completions[0][2]]
        else:
            for idx in sorted((comp[2] for comp in completions),
                              reverse=True):
                del order[idx]

    # ------------------------------------------------------------------ #
    # results, perf, invariants
    # ------------------------------------------------------------------ #

    def result(self, r: int) -> SimulationResult:
        cfg = self.configs[r]
        n_sw = self.NSW
        measure = cfg.measure_cycles
        host_rate = self.host_rate[r]
        offered = sum(
            host_rate[h] * cfg.message_length for h in host_rate
        ) / n_sw
        perf = self.perfs[r]
        perf.cycles_executed = self.executed_l[r]
        perf.cycles_skipped = self.skipped_l[r]
        perf.arb_requests = self.arb_req_l[r]
        perf.arb_conflicts = self.arb_conf_l[r]
        perf.delivery_conflicts = self.deliv_conf_l[r]
        accepted = self.consumed_measured[r] / measure / n_sw
        return SimulationResult(
            offered_flits_per_switch_cycle=offered,
            accepted_flits_per_switch_cycle=accepted,
            avg_latency=self.lat_stats[r].mean,
            latency=self.lat_stats[r],
            total_latency=self.tot_stats[r],
            latency_percentiles=self.samplers[r].percentiles(),
            messages_completed=self.completed_in_window[r],
            messages_generated=self.generated[r],
            flits_consumed_measured=self.consumed_measured[r],
            cycles_measured=measure,
            warmup_cycles=cfg.warmup_cycles,
            meta={
                "topology": self.topology.name,
                "routing": self.table.routing.name,
                "rate_msgs_per_host_cycle": self.rates[r],
                "adaptive": cfg.adaptive,
                "engine": "batch",
                **perf.meta_counters(),
            },
            perf=perf.wall_times(),
        )

    def check_invariants(self, r: int) -> None:
        """Port of the fast engine's conservation/exclusivity checks."""
        length = self.length_l[r]
        sealed = self.sealed
        o_off = r * self.C
        seen: Dict[int, int] = {}
        for slot in self.orders[r]:
            if sealed[slot]:
                continue
            t = self.tcol[slot]
            c = self.clen[slot]
            in_network = length - self.to_inject[slot] - self.consumed[slot]
            assert sum(self.occ[t:t + c]) == in_network, slot
            for j in range(t, t + c):
                cid = self.chain[j]
                assert self.owner[o_off + cid] == slot, (slot, cid)
                assert cid not in seen, f"channel {cid} in two chains"
                seen[cid] = slot
                assert 0 <= self.occ[j] <= self.cap_l[r]
        active = set(self.orders[r])
        for cid in range(self.C):
            own = self.owner[o_off + cid]
            if own >= 0 and own not in active:
                raise AssertionError(f"channel {cid} owned by inactive slot")
        sw_off = r * self.NSW
        for slot in self.orders[r]:
            if self.awake[slot] or sealed[slot]:
                continue
            assert not self.draining[slot], slot
            if self.arb_blocked[slot] == 1:
                cands = self._candidates(self.adaptive_l[r],
                                         self.head_sw[slot],
                                         self.phase[slot],
                                         self.dst_sw[slot])
                assert all(self.owner[o_off + cc[0]] >= 0
                           for cc in cands), slot
            elif self.arb_blocked[slot] == 2:
                assert self.avail_delivery[sw_off + self.dst_sw[slot]] == 0, \
                    slot


class BatchWormholeNetworkSimulator:
    """Single-replication :class:`NetworkEngine` view over a batch core.

    The drop-in ``engine="batch"`` object built by ``make_simulator``: a
    batch of one, so solo callers (probes, stepwise tests, the CLI) get
    the batch kernel through the ordinary engine seam.  For real batch
    wins, hand ≥ 2 compatible configurations to :func:`simulate_batch`.
    """

    ENGINE_NAME = "batch"

    def __init__(self, routing_table: RoutingTable, traffic: TrafficPattern,
                 injection_rate: float,
                 config: SimulationConfig = SimulationConfig()):
        if config.virtual_channels != 1:
            raise ValueError(
                "BatchWormholeNetworkSimulator requires virtual_channels == 1;"
                " build via make_simulator, which falls back to the budgeted"
                " kernel for multi-VC configs"
            )
        self.table = routing_table
        self.topology = routing_table.topology
        self.traffic = traffic
        self.rate = injection_rate
        self.config = config
        self._core = _BatchCore(routing_table, [(traffic, injection_rate,
                                                 config)])

    # -- NetworkEngine surface ----------------------------------------- #

    @property
    def cycle(self) -> int:
        return self._core.cycle_l[0]

    @property
    def generated(self) -> int:
        return self._core.generated[0]

    @property
    def trace(self) -> List[Tuple[int, int, int, int]]:
        return self._core.traces[0]

    @property
    def perf(self) -> EnginePerf:
        perf = self._core.perfs[0]
        perf.cycles_executed = self._core.executed_l[0]
        perf.cycles_skipped = self._core.skipped_l[0]
        perf.arb_requests = self._core.arb_req_l[0]
        perf.arb_conflicts = self._core.arb_conf_l[0]
        perf.delivery_conflicts = self._core.deliv_conf_l[0]
        return perf

    @property
    def rng(self) -> random.Random:
        return self._core.rngs[0]

    @rng.setter
    def rng(self, value: random.Random) -> None:
        self._core.rngs[0] = value

    def step(self) -> None:
        """Advance exactly one cycle (no event skipping)."""
        core = self._core
        target = core.cycle_l[0] + 1
        saved = core.total_l[0]
        if target > saved:
            core.total_l[0] = target
        core.advance([0], allow_skip=False, max_iterations=1)
        core.total_l[0] = max(saved, core.cycle_l[0])

    def run(self) -> SimulationResult:
        """Run warmup + measurement and return the measured point."""
        core = self._core
        total = self.config.warmup_cycles + self.config.measure_cycles
        with _trace.span("engine.run", engine=self.ENGINE_NAME,
                         rate=self.rate, cycles=total) as sp:
            core.advance([0], allow_skip=True)
            result = core.result(0)
            sp.set(accepted=result.accepted_flits_per_switch_cycle,
                   avg_latency=result.avg_latency)
        record_engine_metrics(result)
        return result

    def _result(self) -> SimulationResult:
        return self._core.result(0)

    def check_invariants(self) -> None:
        """Run the core's conservation/exclusivity checks on this member."""
        self._core.check_invariants(0)


def build_batch_simulator(routing_table: RoutingTable,
                          traffic: TrafficPattern,
                          injection_rate: float,
                          config: SimulationConfig):
    """The ``engine="batch"`` factory used by ``make_simulator``.

    ``virtual_channels == 1`` (the paper's setting) gets the lockstep
    batch kernel; multi-VC configurations use the budgeted
    struct-of-arrays kernel (shared link budgets couple worms, so the
    batch kernel's dormancy/seal machinery does not apply) relabelled as
    the batch engine — results are bit-identical either way.
    """
    if config.virtual_channels == 1:
        return BatchWormholeNetworkSimulator(routing_table, traffic,
                                             injection_rate, config)
    return _BudgetedBatchFallback(routing_table, traffic, injection_rate,
                                  config)


def _make_fallback():
    # Deferred import so engine_batch does not hard-depend on engine_fast
    # at import time (they import the shared engine module in common).
    from repro.simulation.engine_fast import FastWormholeNetworkSimulator

    class _BudgetedBatchFallback(FastWormholeNetworkSimulator):
        """Multi-VC fallback: the budgeted kernel under the batch label."""

        ENGINE_NAME = "batch"

    return _BudgetedBatchFallback


_BudgetedBatchFallback = _make_fallback()


def simulate_batch(
    jobs: Sequence[Tuple[RoutingTable, TrafficPattern, float,
                         SimulationConfig]],
) -> List[SimulationResult]:
    """Simulate every ``(table, traffic, rate, config)`` job as one batch.

    Returns one :class:`SimulationResult` per job, in order, each
    bit-identical (same RNG draw order, same canonical payload) to
    running that job alone on any engine.  Raises
    :class:`BatchCompatibilityError` if the jobs cannot share a kernel
    (different routing tables / topologies, or mixed
    ``virtual_channels``).

    Composition-invariant: splitting a batch, reordering it, or running
    members solo cannot change any member's result — each member owns
    its own RNG stream and state partition, so this is structural, and
    the batch-composition property test pins it.

    Dispatch: when every job's ``config.engine`` is ``"vector"`` the
    batch runs on the numpy-vectorized kernel
    (:func:`repro.simulation.engine_vector.simulate_batch_vector`),
    which keeps per-member determinism and composition invariance but
    relaxes bit-identity to statistical equivalence.  Any other mix of
    engine names uses the bit-identical batch kernel.
    """
    jobs = list(jobs)
    check_batch_compatible(jobs)
    if all(cfg.engine == "vector" for _t, _tr, _r, cfg in jobs):
        from repro.simulation.engine_vector import simulate_batch_vector

        return simulate_batch_vector(jobs)
    table = jobs[0][0]
    vcs = jobs[0][3].virtual_channels
    with _trace.span("engine.batch", engine="batch", members=len(jobs),
                     vcs=vcs) as sp:
        if vcs == 1:
            core = _BatchCore(table, [(traffic, rate, cfg)
                                      for _t, traffic, rate, cfg in jobs])
            core.advance(list(range(core.R)), allow_skip=True)
            results = [core.result(r) for r in range(core.R)]
        else:
            results = [
                _BudgetedBatchFallback(table, traffic, rate, cfg).run()
                for _t, traffic, rate, cfg in jobs
            ]
        sp.set(completed=sum(res.messages_completed for res in results))
    for res in results:
        record_engine_metrics(res)
    return results


__all__ = [
    "BatchCompatibilityError",
    "BatchWormholeNetworkSimulator",
    "build_batch_simulator",
    "check_batch_compatible",
    "simulate_batch",
]
