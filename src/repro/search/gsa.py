"""Genetic Simulated Annealing (Chen/Flann/Watson; Shroff et al.).

The hybrid the paper lists among its comparators: a population evolves via
crossover and mutation like a GA, but each offspring replaces its parent
according to the Metropolis criterion at a global temperature that cools
every generation — combining the GA's recombination with SA's controlled
acceptance of worse solutions.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.mapping import Partition
from repro.parallel import WorkersLike
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective
from repro.search.genetic import decode_permutation, order_crossover

_EPS = 1e-12


class GeneticSimulatedAnnealing(SearchMethod):
    """Population-based annealing over permutation-encoded partitions.

    ``restarts`` evolves that many independent populations (one RNG stream
    each, best kept), optionally on a ``workers``-wide process pool.
    """

    name = "gsa"

    def __init__(self, *, population: int = 20, generations: int = 80,
                 initial_temperature: float = 0.5, cooling: float = 0.93,
                 crossover_rate: float = 0.6,
                 restarts: int = 1, workers: WorkersLike = None):
        if population < 2:
            raise ValueError(f"population must be >= 2, got {population}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be > 0")
        if not (0 < cooling < 1):
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        if not (0 <= crossover_rate <= 1):
            raise ValueError("crossover_rate must be a probability")
        self._init_multistart(restarts, workers)
        self.population = population
        self.generations = generations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.crossover_rate = crossover_rate

    def _run_single(self, objective: SimilarityObjective,
                    rng: np.random.Generator,
                    initial: Optional[Partition]) -> SearchResult:
        n_assigned = sum(objective.sizes)
        base = np.arange(objective.num_switches)

        def evaluate(perm: np.ndarray) -> float:
            return objective.value(
                decode_permutation(perm, objective.sizes, objective.num_switches)
            )

        pop: List[np.ndarray] = []
        if initial is not None:
            pop.append(np.concatenate(
                [np.array(c) for c in initial.clusters()]).astype(np.int64))
        while len(pop) < self.population:
            perm = rng.permutation(base)
            pop.append(perm[:n_assigned] if n_assigned < base.size else perm)
        fitness = [evaluate(p) for p in pop]
        evals = len(pop)

        best_i = int(np.argmin(fitness))
        best_value = fitness[best_i]
        best_perm = pop[best_i].copy()
        trace = [best_value]
        temp = self.initial_temperature

        for _gen in range(self.generations):
            for i in range(self.population):
                # Offspring: crossover with a random mate, else pure mutation.
                if rng.random() < self.crossover_rate:
                    mate = pop[int(rng.integers(self.population))]
                    child = order_crossover(pop[i], mate, rng)
                else:
                    child = pop[i].copy()
                a, b = rng.integers(0, child.size, size=2)
                child[a], child[b] = child[b], child[a]

                child_fit = evaluate(child)
                evals += 1
                delta = child_fit - fitness[i]
                if delta < _EPS or (temp > 0 and
                                    rng.random() < math.exp(-delta / temp)):
                    pop[i] = child
                    fitness[i] = child_fit
                    if child_fit < best_value - _EPS:
                        best_value = child_fit
                        best_perm = child.copy()
            temp *= self.cooling
            trace.append(best_value)

        return SearchResult(
            best_partition=decode_permutation(best_perm, objective.sizes,
                                              objective.num_switches),
            best_value=best_value,
            method=self.name,
            iterations=self.generations,
            evaluations=evals,
            trace=trace,
            meta={"final_temperature": temp},
        )


__all__ = ["GeneticSimulatedAnnealing"]
