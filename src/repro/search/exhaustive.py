"""Exhaustive (branch-and-bound) enumeration of fixed-size partitions.

The optimality yardstick of Section 4.2: "for small size networks (up to 16
switches) the minimum obtained by [Tabu] was the same value ... obtained
with an exhaustive search".  Enumeration breaks the label-permutation
symmetry between equal-size clusters (so each set partition is visited
once) and prunes on the partial intracluster cost, which is monotone
non-decreasing as switches are assigned.
"""

from __future__ import annotations

from math import comb, factorial
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.mapping import Partition
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective
from repro.util.rng import SeedLike


def count_partitions(sizes: Sequence[int], num_switches: int) -> int:
    """Number of distinct partitions of ``num_switches`` ids into clusters of
    the given sizes (unordered among equal-size clusters)."""
    total = 1
    remaining = num_switches
    for s in sizes:
        total *= comb(remaining, s)
        remaining -= s
    from collections import Counter

    for _size, times in Counter(sizes).items():
        total //= factorial(times)
    return total


def enumerate_partitions(sizes: Sequence[int],
                         num_switches: int) -> Iterator[Partition]:
    """Yield every fixed-size partition exactly once.

    Symmetry breaking: the lowest unassigned switch id is always placed
    into the lowest-indexed *open* cluster among those of each size class
    that are still empty, which canonicalizes label order.
    """
    sizes = [int(s) for s in sizes]
    labels = np.full(num_switches, -2, dtype=np.int64)  # -2 = undecided
    remaining = list(sizes)
    n_unassigned_slots = sum(sizes)

    def rec(next_switch: int, slots_left: int) -> Iterator[Partition]:
        if slots_left == 0:
            final = np.where(labels == -2, -1, labels)
            yield Partition(final)
            return
        if num_switches - next_switch < slots_left:
            return  # not enough switches left to fill the clusters
        s = next_switch
        # Option 1: leave s unassigned (only allowed when the machine is
        # bigger than the workload).
        if num_switches - s > slots_left:
            labels[s] = -1
            yield from rec(s + 1, slots_left)
            labels[s] = -2
        # Option 2: assign s to a cluster with capacity; among empty
        # clusters of equal size only the first is allowed.
        seen_empty_sizes = set()
        for c, cap in enumerate(remaining):
            if cap == 0:
                continue
            if cap == sizes[c]:  # cluster still empty
                if sizes[c] in seen_empty_sizes:
                    continue
                seen_empty_sizes.add(sizes[c])
            labels[s] = c
            remaining[c] -= 1
            yield from rec(s + 1, slots_left - 1)
            remaining[c] += 1
            labels[s] = -2

    yield from rec(0, n_unassigned_slots)


class ExhaustiveSearch(SearchMethod):
    """Branch-and-bound over all fixed-size partitions.

    Exact, with cost-based pruning: a partial assignment's intracluster sum
    only grows, so any prefix already at or above the incumbent is cut.
    ``max_nodes`` guards against accidental use on large instances (the
    16-switch, 4×4 space has ~2.6M partitions; beyond that the paper itself
    gave up on exhaustive search).
    """

    name = "exhaustive"

    def __init__(self, *, max_nodes: Optional[int] = 50_000_000):
        self.max_nodes = max_nodes

    def run(self, objective: SimilarityObjective, seed: SeedLike = None,
            initial: Optional[Partition] = None) -> SearchResult:
        sizes = objective.sizes
        n = objective.num_switches
        sq = objective.evaluator.sq
        pairs = sum(x * (x - 1) // 2 for x in sizes)
        scale = pairs * objective.evaluator.norm

        best_raw = float("inf")
        best_labels: Optional[np.ndarray] = None
        if initial is not None:
            best_labels = np.array(initial.labels)
            best_raw = objective.evaluator.intracluster_sum(initial)

        labels = np.full(n, -2, dtype=np.int64)
        remaining = list(sizes)
        members: List[List[int]] = [[] for _ in sizes]
        nodes_visited = 0
        slots_total = sum(sizes)

        def rec(s: int, slots_left: int, raw: float) -> None:
            nonlocal best_raw, best_labels, nodes_visited
            nodes_visited += 1
            if self.max_nodes is not None and nodes_visited > self.max_nodes:
                raise RuntimeError(
                    f"exhaustive search exceeded max_nodes={self.max_nodes}; "
                    "use a heuristic method for this instance size"
                )
            if raw >= best_raw:
                return  # prune: cost can only grow
            if slots_left == 0:
                best_raw = raw
                best_labels = np.where(labels == -2, -1, labels).copy()
                return
            if n - s < slots_left:
                return
            if n - s > slots_left:
                labels[s] = -1
                rec(s + 1, slots_left, raw)
                labels[s] = -2
            seen_empty_sizes = set()
            for c, cap in enumerate(remaining):
                if cap == 0:
                    continue
                if cap == sizes[c]:
                    if sizes[c] in seen_empty_sizes:
                        continue
                    seen_empty_sizes.add(sizes[c])
                added = sum(sq[s, x] for x in members[c])
                labels[s] = c
                remaining[c] -= 1
                members[c].append(s)
                rec(s + 1, slots_left - 1, raw + added)
                members[c].pop()
                remaining[c] += 1
                labels[s] = -2

        rec(0, slots_total, 0.0)
        if best_labels is None:
            raise RuntimeError("exhaustive search found no feasible partition")
        best_partition = Partition(best_labels)
        return SearchResult(
            best_partition=best_partition,
            best_value=best_raw / scale,
            method=self.name,
            iterations=nodes_visited,
            evaluations=nodes_visited,
            optimal=True,
            meta={"nodes_visited": nodes_visited},
        )


__all__ = ["ExhaustiveSearch", "enumerate_partitions", "count_partitions"]
