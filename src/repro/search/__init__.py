"""Heuristic search methods over fixed-size switch partitions.

The paper's scheduling technique is the multi-start Tabu search of
Section 4.2; the other methods here are the comparators it was selected
against (Section 2): simulated annealing, genetic algorithm, genetic
simulated annealing, A* tree search — plus exhaustive enumeration (the
optimality yardstick on small networks) and random sampling (the null
baseline).

All methods share one representation: a :class:`~repro.search.state.PartitionState`
holding the labels, the incremental cluster-load matrix and the running
``F_G`` value, so a swap is evaluated in O(1) and applied in O(N).
"""

from repro.search.base import SearchMethod, SearchResult, SimilarityObjective
from repro.search.state import PartitionState
from repro.search.tabu import TabuSearch
from repro.search.annealing import SimulatedAnnealing
from repro.search.genetic import GeneticAlgorithm
from repro.search.gsa import GeneticSimulatedAnnealing
from repro.search.astar import AStarSearch
from repro.search.exhaustive import ExhaustiveSearch, enumerate_partitions, count_partitions
from repro.search.random_search import RandomSearch
from repro.search.process_local import (
    ProcessMappingOptimizer,
    ProcessSearchResult,
    default_weights,
    random_process_mapping,
)

__all__ = [
    "SearchMethod",
    "SearchResult",
    "SimilarityObjective",
    "PartitionState",
    "TabuSearch",
    "SimulatedAnnealing",
    "GeneticAlgorithm",
    "GeneticSimulatedAnnealing",
    "AStarSearch",
    "ExhaustiveSearch",
    "enumerate_partitions",
    "count_partitions",
    "RandomSearch",
    "ProcessMappingOptimizer",
    "ProcessSearchResult",
    "default_weights",
    "random_process_mapping",
]
