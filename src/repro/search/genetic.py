"""Genetic algorithm over fixed-size partitions.

Chromosomes are permutations of the assigned switches; decoding fills the
clusters in order (first ``x_0`` genes → cluster 0, next ``x_1`` → cluster
1, ...), so every chromosome is a feasible partition by construction.
Crossover is order crossover (OX1); mutation is a gene transposition, which
corresponds exactly to the swap neighbourhood of the other methods.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.mapping import Partition
from repro.parallel import WorkersLike
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective

_EPS = 1e-12


def decode_permutation(perm: np.ndarray, sizes: Sequence[int],
                       num_switches: int) -> Partition:
    """Permutation of assigned switches → partition with the given sizes."""
    labels = np.full(num_switches, -1, dtype=np.int64)
    pos = 0
    for c, size in enumerate(sizes):
        for s in perm[pos:pos + size]:
            labels[int(s)] = c
        pos += size
    return Partition(labels)


def order_crossover(p1: np.ndarray, p2: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
    """OX1: copy a slice of ``p1``, fill the rest in ``p2`` order."""
    n = p1.size
    child = np.full(n, -1, dtype=p1.dtype)
    i, j = sorted(rng.integers(0, n, size=2))
    child[i:j + 1] = p1[i:j + 1]
    used = set(int(x) for x in child[i:j + 1])
    fill = [int(x) for x in p2 if int(x) not in used]
    k = 0
    for idx in range(n):
        if child[idx] == -1:
            child[idx] = fill[k]
            k += 1
    return child


class GeneticAlgorithm(SearchMethod):
    """Permutation-encoded GA minimizing ``F_G``.

    Parameters mirror the classic scheme: tournament selection, OX1
    crossover, transposition mutation, elitist replacement.  ``restarts``
    runs that many independent populations (each from its own RNG stream,
    optionally on a ``workers``-wide process pool) and keeps the best.
    """

    name = "genetic"

    def __init__(self, *, population: int = 40, generations: int = 60,
                 crossover_rate: float = 0.9, mutation_rate: float = 0.3,
                 tournament: int = 3, elite: int = 2,
                 restarts: int = 1, workers: WorkersLike = None):
        if population < 2:
            raise ValueError(f"population must be >= 2, got {population}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if not (0 <= crossover_rate <= 1 and 0 <= mutation_rate <= 1):
            raise ValueError("rates must be probabilities")
        if tournament < 1:
            raise ValueError(f"tournament must be >= 1, got {tournament}")
        if not (0 <= elite <= population):
            raise ValueError(f"elite must be in [0, population], got {elite}")
        self._init_multistart(restarts, workers)
        self.population = population
        self.generations = generations
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.tournament = tournament
        self.elite = elite

    def _evaluate(self, objective: SimilarityObjective, perm: np.ndarray) -> float:
        part = decode_permutation(perm, objective.sizes, objective.num_switches)
        return objective.value(part)

    def _run_single(self, objective: SimilarityObjective,
                    rng: np.random.Generator,
                    initial: Optional[Partition]) -> SearchResult:
        n_assigned = sum(objective.sizes)
        base = np.arange(objective.num_switches)

        pop: List[np.ndarray] = []
        if initial is not None:
            perm = np.concatenate([np.array(c) for c in initial.clusters()])
            pop.append(perm.astype(np.int64))
        while len(pop) < self.population:
            pop.append(rng.permutation(base)[:n_assigned]
                       if n_assigned < base.size else rng.permutation(base))

        fitness = np.array([self._evaluate(objective, p) for p in pop])
        evals = len(pop)
        best_idx = int(np.argmin(fitness))
        best_value = float(fitness[best_idx])
        best_perm = pop[best_idx].copy()
        trace = [best_value]

        for _gen in range(self.generations):
            order = np.argsort(fitness)
            new_pop = [pop[i].copy() for i in order[:self.elite]]
            while len(new_pop) < self.population:
                p1 = self._tournament_pick(pop, fitness, rng)
                if rng.random() < self.crossover_rate:
                    p2 = self._tournament_pick(pop, fitness, rng)
                    child = order_crossover(p1, p2, rng)
                else:
                    child = p1.copy()
                if rng.random() < self.mutation_rate:
                    i, j = rng.integers(0, child.size, size=2)
                    child[i], child[j] = child[j], child[i]
                new_pop.append(child)
            pop = new_pop
            fitness = np.array([self._evaluate(objective, p) for p in pop])
            evals += len(pop)
            gen_best = int(np.argmin(fitness))
            if fitness[gen_best] < best_value - _EPS:
                best_value = float(fitness[gen_best])
                best_perm = pop[gen_best].copy()
            trace.append(best_value)

        best_partition = decode_permutation(best_perm, objective.sizes,
                                            objective.num_switches)
        return SearchResult(
            best_partition=best_partition,
            best_value=best_value,
            method=self.name,
            iterations=self.generations,
            evaluations=evals,
            trace=trace,
        )

    def _tournament_pick(self, pop: List[np.ndarray], fitness: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
        idx = rng.integers(0, len(pop), size=self.tournament)
        winner = idx[np.argmin(fitness[idx])]
        return pop[int(winner)]


__all__ = ["GeneticAlgorithm", "decode_permutation", "order_crossover"]
