"""Random sampling baseline.

The paper's null hypothesis: mappings drawn uniformly at random (this is
exactly what its "randomly generated mappings" are).  As a search method it
keeps the best of ``samples`` draws; with ``samples=1`` it produces one
random mapping for the simulator comparisons.
"""

from __future__ import annotations

from typing import Optional

from repro.core.mapping import Partition
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective
from repro.util.rng import SeedLike, as_rng

_EPS = 1e-12


class RandomSearch(SearchMethod):
    """Keep the best of ``samples`` uniformly random partitions."""

    name = "random"

    def __init__(self, *, samples: int = 100):
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.samples = samples

    def run(self, objective: SimilarityObjective, seed: SeedLike = None,
            initial: Optional[Partition] = None) -> SearchResult:
        rng = as_rng(seed)
        best_partition = initial
        best_value = objective.value(initial) if initial is not None else float("inf")
        trace = [] if initial is None else [best_value]
        for _ in range(self.samples):
            state = objective.random_state(rng)
            v = state.value()
            trace.append(v)
            if v < best_value - _EPS:
                best_value = v
                best_partition = state.partition()
        assert best_partition is not None
        return SearchResult(
            best_partition=best_partition,
            best_value=best_value,
            method=self.name,
            iterations=self.samples,
            evaluations=self.samples,
            trace=trace,
        )


__all__ = ["RandomSearch"]
