"""Random sampling baseline.

The paper's null hypothesis: mappings drawn uniformly at random (this is
exactly what its "randomly generated mappings" are).  As a search method it
keeps the best of ``samples`` draws; with ``samples=1`` it produces one
random mapping for the simulator comparisons.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.mapping import Partition
from repro.parallel import WorkersLike
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective

_EPS = 1e-12


class RandomSearch(SearchMethod):
    """Keep the best of ``samples`` uniformly random partitions.

    ``restarts`` draws ``samples`` per restart from independent RNG streams
    (the parallel unit for the process pool), keeping the best overall.
    """

    name = "random"

    def __init__(self, *, samples: int = 100, restarts: int = 1,
                 workers: WorkersLike = None):
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self._init_multistart(restarts, workers)
        self.samples = samples

    def _run_single(self, objective: SimilarityObjective,
                    rng: np.random.Generator,
                    initial: Optional[Partition]) -> SearchResult:
        best_partition = initial
        best_value = objective.value(initial) if initial is not None else float("inf")
        trace = [] if initial is None else [best_value]
        for _ in range(self.samples):
            state = objective.random_state(rng)
            v = state.value()
            trace.append(v)
            if v < best_value - _EPS:
                best_value = v
                best_partition = state.partition()
        assert best_partition is not None
        return SearchResult(
            best_partition=best_partition,
            best_value=best_value,
            method=self.name,
            iterations=self.samples,
            evaluations=self.samples,
            trace=trace,
        )


__all__ = ["RandomSearch"]
