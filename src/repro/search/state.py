"""Incremental partition state shared by every search method.

A state is a partition with fixed cluster sizes plus the bookkeeping needed
to evaluate a swap of two switches in O(1):

- ``labels``   — cluster index per switch (−1 = unassigned);
- ``g``        — the cluster-load matrix ``G[s, c] = Σ_{x∈c} T[s,x]²``;
- ``raw``      — the current ``Σ_i F_{A_i}`` (unnormalized similarity sum).

``F_G = raw / (intracluster_pairs · norm)`` — the scale factor is constant
for fixed sizes, so searches may rank moves by raw delta and only convert
to ``F_G`` for reporting.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core.mapping import Partition
from repro.core.quality import QualityEvaluator


class PartitionState:
    """Mutable search state over a fixed distance table and cluster sizes."""

    def __init__(self, evaluator: QualityEvaluator, partition: Partition):
        sizes = partition.sizes()
        pairs = sum(x * (x - 1) // 2 for x in sizes)
        if pairs == 0:
            raise ValueError("search objective undefined: no intracluster pairs")
        self.evaluator = evaluator
        self.labels = np.array(partition.labels, dtype=np.int64)
        self.g = evaluator.cluster_load_matrix(partition)
        self.raw = evaluator.intracluster_sum(partition)
        self.scale = pairs * evaluator.norm
        self._assigned = np.nonzero(self.labels >= 0)[0]

    # -- value ------------------------------------------------------------ #

    def value(self) -> float:
        """Current ``F_G``."""
        return self.raw / self.scale

    def partition(self) -> Partition:
        """Snapshot of the current labels as an immutable Partition."""
        return Partition(self.labels)

    @property
    def assigned(self) -> np.ndarray:
        """Switch ids that belong to some cluster (stable across swaps)."""
        return self._assigned

    # -- moves ------------------------------------------------------------ #

    def swap_delta(self, a: int, b: int) -> float:
        """``F_G`` change if switches ``a`` and ``b`` exchanged clusters. O(1)."""
        return self.evaluator.swap_delta_raw(self.labels, self.g, a, b) / self.scale

    def apply_swap(self, a: int, b: int) -> None:
        """Apply the swap, keeping ``raw``/``g`` consistent. O(N)."""
        delta = self.evaluator.swap_delta_raw(self.labels, self.g, a, b)
        self.evaluator.apply_swap(self.labels, self.g, a, b)
        self.raw += delta

    def candidate_swaps(self) -> Iterator[Tuple[int, int]]:
        """All unordered pairs of assigned switches in different clusters."""
        assigned = self._assigned
        labels = self.labels
        for i in range(assigned.size):
            a = int(assigned[i])
            la = labels[a]
            for j in range(i + 1, assigned.size):
                b = int(assigned[j])
                if labels[b] != la:
                    yield (a, b)

    def best_swap(
        self, forbidden: "set[Tuple[int, int]] | None" = None,
        aspiration_below: float = float("-inf"),
    ) -> Tuple[Tuple[int, int], float] | Tuple[None, float]:
        """The swap with the most negative (or least positive) ``F_G`` delta.

        ``forbidden`` holds tabu pairs; a tabu swap is still considered when
        it would drop the value strictly below ``aspiration_below`` (the
        classical aspiration criterion).  Returns ``(None, 0.0)`` when no
        candidate exists at all.
        """
        pair, delta, _ = self.best_swaps(forbidden, aspiration_below)
        return pair, delta

    def best_swaps(
        self, forbidden: "set[Tuple[int, int]] | None" = None,
        aspiration_below: float = float("-inf"),
    ) -> Tuple[Tuple[int, int] | None, float, float]:
        """One neighbourhood pass: allowed best *and* unrestricted best.

        Returns ``(pair, delta, free_delta)`` where ``pair``/``delta`` are
        the best swap honouring ``forbidden``/aspiration (``(None, 0.0)``
        when every candidate is excluded or none exists) and ``free_delta``
        is the best delta over the *whole* neighbourhood, tabu ignored.
        ``free_delta >= 0`` identifies a genuine local minimum even when the
        tabu list masks the improving move; ``free_delta`` is ``inf`` when
        the neighbourhood is empty.
        """
        best_pair = None
        best_delta = float("inf")
        free_delta = float("inf")
        current = self.value()
        for pair in self.candidate_swaps():
            delta = self.swap_delta(*pair)
            if delta < free_delta:
                free_delta = delta
            if forbidden and pair in forbidden:
                if not (current + delta < aspiration_below):
                    continue
            if delta < best_delta:
                best_delta = delta
                best_pair = pair
        if best_pair is None:
            return None, 0.0, free_delta
        return best_pair, best_delta, free_delta

    # -- misc --------------------------------------------------------------#

    def copy(self) -> "PartitionState":
        """Independent deep copy (labels and bookkeeping)."""
        clone = object.__new__(PartitionState)
        clone.evaluator = self.evaluator
        clone.labels = self.labels.copy()
        clone.g = self.g.copy()
        clone.raw = self.raw
        clone.scale = self.scale
        clone._assigned = self._assigned
        return clone

    def recompute(self) -> None:
        """Rebuild ``g``/``raw`` from scratch (defensive; used by tests)."""
        part = self.partition()
        self.g = self.evaluator.cluster_load_matrix(part)
        self.raw = self.evaluator.intracluster_sum(part)


__all__ = ["PartitionState"]
