"""Search interfaces and the similarity objective.

Every method optimizes the same thing: minimize ``F_G`` over partitions of
the switches into clusters of fixed sizes (Section 4.2 — minimizing the
similarity function maximizes the clustering coefficient for fixed sizes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.mapping import Partition, random_partition
from repro.core.quality import QualityEvaluator, TableLike
from repro.search.state import PartitionState
from repro.util.rng import SeedLike


class SimilarityObjective:
    """Minimize ``F_G`` over partitions with fixed cluster sizes.

    Parameters
    ----------
    table:
        A :class:`~repro.distance.table.DistanceTable` or raw matrix.
    sizes:
        Switches per cluster (the paper: equal sizes ``N / M``).
    num_switches:
        Defaults to the table size; may be larger only in tests.
    """

    def __init__(self, table: TableLike, sizes: Sequence[int],
                 num_switches: Optional[int] = None):
        self.evaluator = QualityEvaluator(table)
        self.sizes = [int(s) for s in sizes]
        if any(s <= 0 for s in self.sizes):
            raise ValueError(f"cluster sizes must be positive, got {self.sizes}")
        self.num_switches = num_switches or self.evaluator.n
        if sum(self.sizes) > self.num_switches:
            raise ValueError(
                f"sizes sum to {sum(self.sizes)} > {self.num_switches} switches"
            )
        if self.num_switches != self.evaluator.n:
            raise ValueError(
                f"table covers {self.evaluator.n} switches, topology has "
                f"{self.num_switches}"
            )

    def random_state(self, seed: SeedLike = None) -> PartitionState:
        """A search state over a uniformly random fixed-size partition."""
        part = random_partition(self.sizes, self.num_switches, seed)
        return PartitionState(self.evaluator, part)

    def state_from(self, partition: Partition) -> PartitionState:
        """Wrap an existing partition (warm start); sizes must match."""
        if partition.sizes() != self.sizes:
            raise ValueError(
                f"partition sizes {partition.sizes()} do not match objective "
                f"sizes {self.sizes}"
            )
        return PartitionState(self.evaluator, partition)

    def value(self, partition: Partition) -> float:
        """``F_G`` of a partition under this objective's table."""
        return self.evaluator.similarity(partition)


@dataclass
class SearchResult:
    """Outcome of one search run.

    ``trace`` records the objective value after every iteration (for Tabu,
    exactly the ``F(P_i)`` series of Figure 1); ``restart_indices`` marks
    where each seed's segment starts within the trace.
    """

    best_partition: Partition
    best_value: float
    method: str
    iterations: int = 0
    evaluations: int = 0
    trace: List[float] = field(default_factory=list)
    restart_indices: List[int] = field(default_factory=list)
    optimal: Optional[bool] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not np.isfinite(self.best_value):
            raise ValueError(f"non-finite best value {self.best_value}")


class SearchMethod(ABC):
    """A strategy that minimizes a :class:`SimilarityObjective`."""

    name: str = "search"

    @abstractmethod
    def run(self, objective: SimilarityObjective, seed: SeedLike = None,
            initial: Optional[Partition] = None) -> SearchResult:
        """Run the search and return the best partition found.

        ``initial`` lets callers warm-start from a known partition; methods
        that are population- or enumeration-based may ignore it.
        """


__all__ = ["SimilarityObjective", "SearchResult", "SearchMethod"]
