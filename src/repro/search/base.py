"""Search interfaces and the similarity objective.

Every method optimizes the same thing: minimize ``F_G`` over partitions of
the switches into clusters of fixed sizes (Section 4.2 — minimizing the
similarity function maximizes the clustering coefficient for fixed sizes).
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.mapping import Partition, random_partition
from repro.core.quality import QualityEvaluator, TableLike
from repro.obs import trace as _trace
from repro.parallel import WorkersLike, parallel_map
from repro.search.state import PartitionState
from repro.util.rng import SeedLike, as_rng, spawn_rngs

_EPS = 1e-12


class SimilarityObjective:
    """Minimize ``F_G`` over partitions with fixed cluster sizes.

    Parameters
    ----------
    table:
        A :class:`~repro.distance.table.DistanceTable` or raw matrix.
    sizes:
        Switches per cluster (the paper: equal sizes ``N / M``).
    num_switches:
        Defaults to the table size; may be larger only in tests.
    """

    def __init__(self, table: TableLike, sizes: Sequence[int],
                 num_switches: Optional[int] = None):
        self.evaluator = QualityEvaluator(table)
        self.sizes = [int(s) for s in sizes]
        if any(s <= 0 for s in self.sizes):
            raise ValueError(f"cluster sizes must be positive, got {self.sizes}")
        self.num_switches = num_switches or self.evaluator.n
        if sum(self.sizes) > self.num_switches:
            raise ValueError(
                f"sizes sum to {sum(self.sizes)} > {self.num_switches} switches"
            )
        if self.num_switches != self.evaluator.n:
            raise ValueError(
                f"table covers {self.evaluator.n} switches, topology has "
                f"{self.num_switches}"
            )

    def random_state(self, seed: SeedLike = None) -> PartitionState:
        """A search state over a uniformly random fixed-size partition."""
        part = random_partition(self.sizes, self.num_switches, seed)
        return PartitionState(self.evaluator, part)

    def state_from(self, partition: Partition) -> PartitionState:
        """Wrap an existing partition (warm start); sizes must match."""
        if partition.sizes() != self.sizes:
            raise ValueError(
                f"partition sizes {partition.sizes()} do not match objective "
                f"sizes {self.sizes}"
            )
        return PartitionState(self.evaluator, partition)

    def value(self, partition: Partition) -> float:
        """``F_G`` of a partition under this objective's table."""
        return self.evaluator.similarity(partition)


@dataclass
class SearchResult:
    """Outcome of one search run.

    ``trace`` records the objective value after every iteration (for Tabu,
    exactly the ``F(P_i)`` series of Figure 1); ``restart_indices`` marks
    where each seed's segment starts within the trace.
    """

    best_partition: Partition
    best_value: float
    method: str
    iterations: int = 0
    evaluations: int = 0
    trace: List[float] = field(default_factory=list)
    restart_indices: List[int] = field(default_factory=list)
    optimal: Optional[bool] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not np.isfinite(self.best_value):
            raise ValueError(f"non-finite best value {self.best_value}")


def _execute_start(job: tuple) -> "SearchResult":
    """Top-level restart worker (must be picklable for process pools)."""
    method, objective, index, rng, initial = job
    return method._run_single(objective, rng, initial if index == 0 else None)


class SearchMethod(ABC):
    """A strategy that minimizes a :class:`SimilarityObjective`.

    Multi-start execution is shared here: subclasses implement
    :meth:`_run_single` (one independent start from one RNG stream) and the
    base :meth:`run` fans the configured ``restarts`` out over pre-derived
    streams (:func:`~repro.util.rng.spawn_rngs`), optionally on a process
    pool (``workers``), and merges the per-start results in start order.
    Because stream derivation and merging are independent of *where* each
    start ran, parallel results are bit-identical to serial ones.

    Enumeration-style methods (exhaustive, A*) override :meth:`run`
    directly instead.
    """

    name: str = "search"
    restarts: int = 1
    workers: WorkersLike = None

    def _init_multistart(self, restarts: int, workers: WorkersLike) -> None:
        """Validate and store the shared multi-start knobs (ctor helper)."""
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.restarts = int(restarts)
        self.workers = workers

    def run(self, objective: SimilarityObjective, seed: SeedLike = None,
            initial: Optional[Partition] = None) -> SearchResult:
        """Run the search and return the best partition found.

        ``initial`` lets callers warm-start from a known partition (it is
        given to the first start only); methods that are population- or
        enumeration-based may ignore it.

        When telemetry is active the whole run is wrapped in a
        ``search.<name>`` span and one ``search.restart`` event is emitted
        per start (from the parent process, so serial and pooled runs
        trace identically).  Telemetry never touches the RNG streams.
        """
        with _trace.span(f"search.{self.name}",
                         restarts=self.restarts) as sp:
            if self.restarts <= 1:
                result = self._run_single(objective, as_rng(seed), initial)
                self._emit_restart_events([result])
            else:
                rngs = spawn_rngs(seed, self.restarts)
                jobs = [(self, objective, i, rng, initial)
                        for i, rng in enumerate(rngs)]
                starts = parallel_map(_execute_start, jobs,
                                      workers=self.workers)
                self._emit_restart_events(starts)
                result = self._merge_starts(starts)
            sp.set(best_value=result.best_value,
                   iterations=result.iterations,
                   evaluations=result.evaluations)
            return result

    _RESTART_META_KEYS = ("accepted", "uphill", "tabu_masked",
                          "local_min_visits")

    def _emit_restart_events(self, starts: Sequence["SearchResult"]) -> None:
        """Emit one ``search.restart`` event per start (telemetry only).

        Runs in the parent even when the starts executed on a process
        pool — workers have no tracer installed — so serial and parallel
        runs produce the same event stream.  A no-op without a tracer.
        """
        if _trace.current_tracer() is None:
            return
        for index, res in enumerate(starts):
            extras = {k: res.meta[k] for k in self._RESTART_META_KEYS
                      if k in res.meta}
            _trace.event("search.restart", index=index, method=res.method,
                         best_value=res.best_value,
                         iterations=res.iterations,
                         evaluations=res.evaluations,
                         trace=list(res.trace), **extras)

    def _run_single(self, objective: SimilarityObjective,
                    rng: np.random.Generator,
                    initial: Optional[Partition]) -> SearchResult:
        """One independent start from one RNG stream (subclass hook)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _run_single or override run"
        )

    def _merge_starts(self, starts: Sequence[SearchResult]) -> SearchResult:
        """Combine per-start results deterministically.

        The winner is chosen by ``(value, start index)``: a later start
        only displaces the incumbent by improving on it beyond ``_EPS`` —
        the same rule the serial loop applies — so the merged result does
        not depend on completion order.
        """
        winner = starts[0]
        for candidate in starts[1:]:
            if candidate.best_value < winner.best_value - _EPS:
                winner = candidate
        trace: List[float] = []
        restart_indices: List[int] = []
        iterations = evaluations = 0
        for res in starts:
            restart_indices.append(len(trace))
            trace.extend(res.trace)
            iterations += res.iterations
            evaluations += res.evaluations
        return SearchResult(
            best_partition=winner.best_partition,
            best_value=winner.best_value,
            method=self.name,
            iterations=iterations,
            evaluations=evaluations,
            trace=trace,
            restart_indices=restart_indices,
            meta=self._merge_meta([res.meta for res in starts]),
        )

    def _merge_meta(self, metas: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Merged-result ``meta`` (subclass hook; per-start metas given)."""
        return {"restarts": self.restarts}


__all__ = ["SimilarityObjective", "SearchResult", "SearchMethod"]

