"""Process-level mapping refinement (beyond the paper's assumptions).

The paper simplifies to one process per processor with every logical
cluster filling whole switches, which collapses scheduling to a switch
partition.  Its future work lifts those assumptions; this module provides
the corresponding optimizer:

- the objective is the *weighted* quadratic communication cost of
  :func:`repro.core.quality.weighted_mapping_cost` — arbitrary symmetric
  process×process intensity matrices, arbitrary cluster sizes;
- the search state is a full process→host assignment (one process per
  host, hosts may be left empty);
- moves are process-pair host swaps and moves onto free hosts, evaluated
  in O(1) via an incremental gain matrix, applied via steepest descent
  with multi-start (the same design philosophy as the paper's Tabu, on
  the finer-grained space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.mapping import ProcessMapping, Workload
from repro.core.quality import TableLike, _as_squared
from repro.topology.graph import Topology
from repro.util.rng import SeedLike, as_rng, spawn_rngs

_EPS = 1e-12


def default_weights(workload: Workload) -> np.ndarray:
    """The paper's implicit weight matrix, generalized.

    ``W[p, q] = w_p * w_q`` for processes in the same logical cluster
    (each cluster's ``comm_weight``), 0 across clusters; zero diagonal.
    """
    cluster_ids = []
    wvec = []
    for ci, c in enumerate(workload.clusters):
        cluster_ids += [ci] * c.num_processes
        wvec += [c.comm_weight] * c.num_processes
    ids = np.asarray(cluster_ids)
    w = np.asarray(wvec, dtype=float)
    same = ids[:, None] == ids[None, :]
    weights = np.where(same, w[:, None] * w[None, :], 0.0)
    np.fill_diagonal(weights, 0.0)
    return weights


def random_process_mapping(workload: Workload, topology: Topology,
                           seed: SeedLike = None) -> ProcessMapping:
    """A uniformly random one-process-per-host assignment.

    Unlike :func:`repro.core.mapping.partition_to_mapping` this does *not*
    require switch purity or cluster sizes divisible by the hosts per
    switch — it is the natural starting point for process-level search.
    """
    total = workload.total_processes
    if total > topology.num_hosts:
        raise ValueError(
            f"workload has {total} processes, machine only "
            f"{topology.num_hosts} hosts"
        )
    rng = as_rng(seed)
    hosts = rng.permutation(topology.num_hosts)[:total]
    mapping = ProcessMapping(workload, topology)
    k = 0
    for ci, c in enumerate(workload.clusters):
        for pi in range(c.num_processes):
            mapping.host_of[(ci, pi)] = int(hosts[k])
            k += 1
    mapping.validate()
    return mapping


@dataclass
class ProcessSearchResult:
    """Outcome of a process-level optimization run."""

    mapping: ProcessMapping
    cost: float
    initial_cost: float
    iterations: int
    evaluations: int

    @property
    def improvement(self) -> float:
        return self.initial_cost - self.cost


class ProcessMappingOptimizer:
    """Steepest-descent refinement of a process→host mapping.

    Parameters
    ----------
    table:
        Switch-level distance table (the cost uses ``T²``).
    workload, topology:
        Define the process set and the machine.
    weights:
        Symmetric process×process intensity matrix; defaults to the
        intracluster product weights of :func:`default_weights`.
    """

    def __init__(self, table: TableLike, workload: Workload,
                 topology: Topology,
                 weights: Optional[np.ndarray] = None):
        self.sq = _as_squared(table)
        if self.sq.shape[0] != topology.num_switches:
            raise ValueError(
                f"table covers {self.sq.shape[0]} switches, topology has "
                f"{topology.num_switches}"
            )
        self.workload = workload
        self.topology = topology
        self.num_processes = workload.total_processes
        w = default_weights(workload) if weights is None else \
            np.asarray(weights, dtype=float)
        if w.shape != (self.num_processes, self.num_processes):
            raise ValueError(
                f"weights must be {self.num_processes}x{self.num_processes}, "
                f"got {w.shape}"
            )
        if not np.allclose(w, w.T):
            raise ValueError("weights must be symmetric")
        self.weights = w.copy()
        np.fill_diagonal(self.weights, 0.0)
        self._proc_keys = [
            (ci, pi)
            for ci, c in enumerate(workload.clusters)
            for pi in range(c.num_processes)
        ]

    # ------------------------------------------------------------------ #

    def cost_of(self, mapping: ProcessMapping) -> float:
        """Weighted quadratic cost of a mapping (brute-force reference)."""
        s = self._switch_vector(mapping)
        return 0.5 * float(
            np.einsum("pq,pq->", self.weights, self.sq[np.ix_(s, s)])
        )

    def optimize(self, initial: Optional[ProcessMapping] = None,
                 *, seed: SeedLike = None, restarts: int = 3,
                 max_iterations: int = 400) -> ProcessSearchResult:
        """Multi-start steepest descent; returns the best mapping found."""
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        rngs = spawn_rngs(seed, restarts)
        best: Optional[Tuple[float, np.ndarray, np.ndarray]] = None
        initial_cost = None
        total_iter = 0
        total_evals = 0

        for r, rng in enumerate(rngs):
            if r == 0 and initial is not None:
                mapping = initial
            else:
                mapping = random_process_mapping(
                    self.workload, self.topology,
                    seed=int(rng.integers(1 << 31)),
                )
            hosts = np.array(
                [mapping.host_of[k] for k in self._proc_keys], dtype=int
            )
            cost, iters, evals = self._descend(hosts, max_iterations)
            total_iter += iters
            total_evals += evals
            if initial_cost is None:
                initial_cost = self.cost_of(mapping)
            if best is None or cost < best[0] - _EPS:
                best = (cost, hosts.copy(), None)

        assert best is not None and initial_cost is not None
        out = ProcessMapping(self.workload, self.topology)
        for k, h in zip(self._proc_keys, best[1]):
            out.host_of[k] = int(h)
        out.validate()
        return ProcessSearchResult(
            mapping=out,
            cost=best[0],
            initial_cost=initial_cost,
            iterations=total_iter,
            evaluations=total_evals,
        )

    # ------------------------------------------------------------------ #

    def _switch_vector(self, mapping: ProcessMapping) -> np.ndarray:
        return np.array(
            [self.topology.host_switch(mapping.host_of[k])
             for k in self._proc_keys],
            dtype=int,
        )

    def _descend(self, hosts: np.ndarray,
                 max_iterations: int) -> Tuple[float, int, int]:
        """In-place steepest descent on the ``hosts`` vector."""
        topo = self.topology
        sq = self.sq
        w = self.weights
        p_count = hosts.size
        switches = np.array([topo.host_switch(int(h)) for h in hosts])
        # gain[p, s] = sum_q W[p,q] * sq[s, switch(q)]
        gain = w @ sq[:, switches].T          # (P, N)
        cost = 0.5 * float(np.einsum(
            "pq,pq->", w, sq[np.ix_(switches, switches)]
        ))
        used = set(int(h) for h in hosts)
        free_hosts = [h for h in range(topo.num_hosts) if h not in used]
        evals = 0

        for iteration in range(max_iterations):
            # Steepest swap between two processes.
            cur = gain[np.arange(p_count), switches]       # (P,)
            best_delta = 0.0
            best_move: Optional[Tuple[str, int, int]] = None

            # Vectorized swap deltas: D[p1, p2] for all pairs.
            g_here = cur[:, None]
            g_there = gain[:, switches]                     # gain[p1, s(p2)]
            pair_sq = sq[np.ix_(switches, switches)]
            deltas = (g_there - g_here) + (g_there.T - g_here.T) \
                + 2.0 * w * pair_sq
            np.fill_diagonal(deltas, 0.0)
            evals += p_count * p_count
            idx = int(np.argmin(deltas))
            p1, p2 = divmod(idx, p_count)
            if deltas[p1, p2] < best_delta - _EPS and \
                    switches[p1] != switches[p2]:
                best_delta = float(deltas[p1, p2])
                best_move = ("swap", p1, p2)

            # Moves to free hosts.
            if free_hosts:
                free_sw = np.array(
                    [topo.host_switch(h) for h in free_hosts]
                )
                move_deltas = gain[:, free_sw] - cur[:, None]  # (P, F)
                evals += move_deltas.size
                mi = int(np.argmin(move_deltas))
                mp, mf = divmod(mi, len(free_hosts))
                if move_deltas[mp, mf] < best_delta - _EPS:
                    best_delta = float(move_deltas[mp, mf])
                    best_move = ("move", mp, mf)

            if best_move is None:
                return cost, iteration, evals

            kind, a, b = best_move
            if kind == "swap":
                s1, s2 = int(switches[a]), int(switches[b])
                hosts[a], hosts[b] = hosts[b], hosts[a]
                switches[a], switches[b] = s2, s1
                # Rebuild the gain matrix; at P<=hosts it is cheap
                # (P^2 * N multiply) relative to the delta scan above.
                gain = w @ sq[:, switches].T
            else:
                old_h = int(hosts[a])
                new_h = free_hosts[b]
                s_old, s_new = int(switches[a]), topo.host_switch(new_h)
                hosts[a] = new_h
                switches[a] = s_new
                free_hosts[b] = old_h
                gain = w @ sq[:, switches].T
            cost += best_delta

        return cost, max_iterations, evals


__all__ = [
    "ProcessMappingOptimizer",
    "ProcessSearchResult",
    "default_weights",
    "random_process_mapping",
]
