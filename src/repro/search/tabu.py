"""The paper's Tabu search variant (Section 4.2).

Per seed (random initial mapping):

1. take the swap of two switches in different clusters with the greatest
   decrease of ``F``; if no decrease exists (local minimum), take the swap
   with the *smallest increase* instead;
2. forbid the inverse of the applied swap for ``tenure`` iterations (the
   "Tabu movements"); a tabu swap may still be taken if it would improve on
   the best value seen so far (aspiration — standard, and consistent with
   the paper's "the search must end when F reaches its minimum value");
3. stop the seed when the same local minimum has been visited three times,
   or after 20 iterations.

The whole procedure restarts from 10 random seeds and keeps the best
partition overall.  On networks small enough for exhaustive enumeration the
paper reports (and our tests verify) that this finds the global optimum.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Tuple

from repro.core.mapping import Partition
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective
from repro.util.rng import SeedLike, spawn_rngs

_EPS = 1e-12


class TabuSearch(SearchMethod):
    """Multi-start Tabu search minimizing ``F_G``.

    Parameters
    ----------
    restarts:
        Random seeds to try (paper: 10).
    max_iterations:
        Swap iterations per seed (paper: 20).
    local_min_repeats:
        Stop a seed once one local minimum is reached this many times
        (paper: 3).
    tenure:
        Iterations an applied swap's inverse stays forbidden.  The paper
        leaves ``h`` unspecified; 5 reproduces its qualitative behaviour on
        16–24-switch networks.
    aspiration:
        Allow tabu moves that beat the best value seen so far.
    """

    name = "tabu"

    def __init__(self, *, restarts: int = 10, max_iterations: int = 20,
                 local_min_repeats: int = 3, tenure: int = 5,
                 aspiration: bool = True):
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if local_min_repeats < 1:
            raise ValueError(f"local_min_repeats must be >= 1, got {local_min_repeats}")
        if tenure < 0:
            raise ValueError(f"tenure must be >= 0, got {tenure}")
        self.restarts = restarts
        self.max_iterations = max_iterations
        self.local_min_repeats = local_min_repeats
        self.tenure = tenure
        self.aspiration = aspiration

    def run(self, objective: SimilarityObjective, seed: SeedLike = None,
            initial: Optional[Partition] = None) -> SearchResult:
        rngs = spawn_rngs(seed, self.restarts)
        best_partition: Optional[Partition] = None
        best_value = float("inf")
        trace = []
        restart_indices = []
        total_iter = 0
        total_evals = 0

        for r, rng in enumerate(rngs):
            if r == 0 and initial is not None:
                state = objective.state_from(initial)
            else:
                state = objective.random_state(rng)
            restart_indices.append(len(trace))
            trace.append(state.value())

            # Cross-cluster pair count is invariant under swaps (fixed sizes).
            n_assigned = state.assigned.size
            n_candidates = n_assigned * (n_assigned - 1) // 2 - sum(
                x * (x - 1) // 2 for x in objective.sizes
            )

            tabu_until: Dict[Tuple[int, int], int] = {}
            local_min_counts: Counter = Counter()
            if state.value() < best_value - _EPS:
                best_value = state.value()
                best_partition = state.partition()

            for it in range(self.max_iterations):
                forbidden = {p for p, until in tabu_until.items() if until > it}
                aspiration_level = best_value if self.aspiration else float("-inf")
                pair, delta = state.best_swap(forbidden, aspiration_level)
                total_evals += n_candidates
                if pair is None:
                    break  # no moves at all (degenerate objective)

                if delta >= -_EPS:
                    # Local minimum: count the visit before escaping uphill.
                    key = state.partition().canonical_key()
                    local_min_counts[key] += 1
                    if local_min_counts[key] >= self.local_min_repeats:
                        break

                state.apply_swap(*pair)
                total_iter += 1
                tabu_until[pair] = it + 1 + self.tenure
                trace.append(state.value())

                if state.value() < best_value - _EPS:
                    best_value = state.value()
                    best_partition = state.partition()

        assert best_partition is not None
        return SearchResult(
            best_partition=best_partition,
            best_value=best_value,
            method=self.name,
            iterations=total_iter,
            evaluations=total_evals,
            trace=trace,
            restart_indices=restart_indices,
            meta={
                "restarts": self.restarts,
                "max_iterations": self.max_iterations,
                "tenure": self.tenure,
                "local_min_repeats": self.local_min_repeats,
            },
        )


__all__ = ["TabuSearch"]
