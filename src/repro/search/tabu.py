"""The paper's Tabu search variant (Section 4.2).

Per seed (random initial mapping):

1. take the swap of two switches in different clusters with the greatest
   decrease of ``F``; if no decrease exists (local minimum), take the swap
   with the *smallest increase* instead;
2. forbid the inverse of the applied swap for ``tenure`` iterations (the
   "Tabu movements"); a tabu swap may still be taken if it would improve on
   the best value seen so far (aspiration — standard, and consistent with
   the paper's "the search must end when F reaches its minimum value");
3. stop the seed when the same local minimum has been visited three times,
   or after 20 iterations.

The whole procedure restarts from 10 random seeds and keeps the best
partition overall.  Restarts are fully independent — each runs from its own
:func:`~repro.util.rng.spawn_rngs` stream with its own tabu list and
aspiration level — so they can execute on a process pool
(``workers=...``) with results bit-identical to the serial order (see
:meth:`repro.search.base.SearchMethod.run`).  On networks small enough for
exhaustive enumeration the paper reports (and our tests verify) that this
finds the global optimum.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mapping import Partition
from repro.parallel import WorkersLike
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective

_EPS = 1e-12


class TabuSearch(SearchMethod):
    """Multi-start Tabu search minimizing ``F_G``.

    Parameters
    ----------
    restarts:
        Random seeds to try (paper: 10).
    max_iterations:
        Swap iterations per seed (paper: 20).
    local_min_repeats:
        Stop a seed once one local minimum is reached this many times
        (paper: 3).
    tenure:
        Iterations an applied swap's inverse stays forbidden.  The paper
        leaves ``h`` unspecified; 5 reproduces its qualitative behaviour on
        16–24-switch networks.
    aspiration:
        Allow tabu moves that beat the best value seen so far.
    workers:
        Process-pool size for the restarts (``None`` = ``$REPRO_WORKERS``
        or serial, ``0``/``"auto"`` = all CPUs).
    """

    name = "tabu"

    def __init__(self, *, restarts: int = 10, max_iterations: int = 20,
                 local_min_repeats: int = 3, tenure: int = 5,
                 aspiration: bool = True, workers: WorkersLike = None):
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if local_min_repeats < 1:
            raise ValueError(f"local_min_repeats must be >= 1, got {local_min_repeats}")
        if tenure < 0:
            raise ValueError(f"tenure must be >= 0, got {tenure}")
        self._init_multistart(restarts, workers)
        self.max_iterations = max_iterations
        self.local_min_repeats = local_min_repeats
        self.tenure = tenure
        self.aspiration = aspiration

    def _run_single(self, objective: SimilarityObjective,
                    rng: np.random.Generator,
                    initial: Optional[Partition]) -> SearchResult:
        """One seed: steepest-descent swaps with tabu escape."""
        if initial is not None:
            state = objective.state_from(initial)
        else:
            state = objective.random_state(rng)
        best_value = state.value()
        best_partition = state.partition()
        trace = [best_value]

        # Cross-cluster pair count is invariant under swaps (fixed sizes).
        n_assigned = state.assigned.size
        n_candidates = n_assigned * (n_assigned - 1) // 2 - sum(
            x * (x - 1) // 2 for x in objective.sizes
        )

        tabu_until: Dict[Tuple[int, int], int] = {}
        local_min_counts: Counter = Counter()
        iterations = 0
        evaluations = 0
        accepted = 0
        uphill = 0
        tabu_masked = 0

        for it in range(self.max_iterations):
            forbidden = {p for p, until in tabu_until.items() if until > it}
            aspiration_level = best_value if self.aspiration else float("-inf")
            pair, _delta, free_delta = state.best_swaps(forbidden,
                                                        aspiration_level)
            evaluations += n_candidates
            if pair is None:
                break  # every move excluded (degenerate objective)
            if free_delta < _delta - _EPS:
                # The unrestricted best move was strictly better than the
                # best allowed one: the tabu list was binding this iteration.
                tabu_masked += 1

            if free_delta >= -_EPS:
                # Genuine local minimum of the *unrestricted* neighbourhood.
                # Judging by the tabu-filtered delta instead would also count
                # states whose improving escape is merely tabu-masked —
                # ticking the visit counter on iterations that are not local
                # minima and ending seeds early.
                key = state.partition().canonical_key()
                local_min_counts[key] += 1
                if local_min_counts[key] >= self.local_min_repeats:
                    break

            if _delta < -_EPS:
                accepted += 1
            else:
                uphill += 1
            state.apply_swap(*pair)
            iterations += 1
            tabu_until[pair] = it + 1 + self.tenure
            trace.append(state.value())

            if state.value() < best_value - _EPS:
                best_value = state.value()
                best_partition = state.partition()

        return SearchResult(
            best_partition=best_partition,
            best_value=best_value,
            method=self.name,
            iterations=iterations,
            evaluations=evaluations,
            trace=trace,
            restart_indices=[0],
            meta=self._params_meta(
                local_min_visits=sum(local_min_counts.values()),
                local_min_keys=list(local_min_counts),
                accepted=accepted,
                uphill=uphill,
                tabu_masked=tabu_masked,
            ),
        )

    def _merge_meta(self, metas: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        keys: List[tuple] = []
        for m in metas:
            keys.extend(m.get("local_min_keys", ()))
        return self._params_meta(
            local_min_visits=sum(m.get("local_min_visits", 0) for m in metas),
            local_min_keys=keys,
            accepted=sum(m.get("accepted", 0) for m in metas),
            uphill=sum(m.get("uphill", 0) for m in metas),
            tabu_masked=sum(m.get("tabu_masked", 0) for m in metas),
        )

    def _params_meta(self, **extra: Any) -> Dict[str, Any]:
        meta: Dict[str, Any] = {
            "restarts": self.restarts,
            "max_iterations": self.max_iterations,
            "tenure": self.tenure,
            "local_min_repeats": self.local_min_repeats,
        }
        meta.update(extra)
        return meta


__all__ = ["TabuSearch"]
