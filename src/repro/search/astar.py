"""A* tree search over partition assignments.

The paper's third comparator: "a tree search method that prunes the tree
according to a cost function, until a leaf (mapping) is reached".  States
assign switches ``0..k`` to clusters with remaining capacity; ``g`` is the
exact intracluster cost of the prefix and ``h`` a cheap admissible lower
bound on the cost the unassigned switches must still add, so the first
goal popped is optimal (when the node budget suffices).
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.core.mapping import Partition
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective
from repro.util.rng import SeedLike


class AStarSearch(SearchMethod):
    """Best-first assignment search with an admissible heuristic.

    Parameters
    ----------
    max_expansions:
        Node budget.  When exhausted the search completes its incumbent
        greedily and reports ``optimal=False`` (matching how the paper used
        A* only on small instances).
    """

    name = "astar"

    def __init__(self, *, max_expansions: int = 200_000):
        if max_expansions < 1:
            raise ValueError(f"max_expansions must be >= 1, got {max_expansions}")
        self.max_expansions = max_expansions

    def run(self, objective: SimilarityObjective, seed: SeedLike = None,
            initial: Optional[Partition] = None) -> SearchResult:
        sizes = objective.sizes
        n = objective.num_switches
        sq = objective.evaluator.sq
        pairs_total = sum(x * (x - 1) // 2 for x in sizes)
        scale = pairs_total * objective.evaluator.norm
        slots_total = sum(sizes)

        # Admissible lower bound per future intracluster pair: the smallest
        # off-diagonal squared distance in the whole table.
        offdiag = sq[~np.eye(n, dtype=bool)]
        min_sq = float(offdiag.min())

        def pairs_remaining(remaining: Tuple[int, ...]) -> int:
            filled = [sizes[c] - r for c, r in enumerate(remaining)]
            done = sum(f * (f - 1) // 2 for f in filled)
            return pairs_total - done

        # Heap entries: (f, tie, s_next, labels_tuple, remaining, g)
        counter = itertools.count()
        start = (min_sq * pairs_total, next(counter), 0, (), tuple(sizes), 0.0)
        heap = [start]
        expansions = 0
        best_goal: Optional[Tuple[float, Tuple[int, ...]]] = None
        proven_optimal = False

        while heap:
            f, _tie, s, labels, remaining, g = heapq.heappop(heap)
            if s == n or sum(remaining) == 0:
                # Goal: fill any trailing unassigned switches with -1.
                if sum(remaining) != 0:
                    continue  # ran out of switches without filling clusters
                best_goal = (g, labels + (-1,) * (n - s))
                proven_optimal = True
                break
            expansions += 1
            if expansions > self.max_expansions:
                break
            slots_left = sum(remaining)
            if n - s < slots_left:
                continue
            # Leave switch s unassigned when the machine exceeds the workload.
            if n - s > slots_left:
                h = min_sq * pairs_remaining(remaining)
                heapq.heappush(
                    heap, (g + h, next(counter), s + 1, labels + (-1,), remaining, g)
                )
            seen_empty = set()
            members_by_cluster: List[List[int]] = [[] for _ in sizes]
            for idx, lab in enumerate(labels):
                if lab >= 0:
                    members_by_cluster[lab].append(idx)
            for c, cap in enumerate(remaining):
                if cap == 0:
                    continue
                if cap == sizes[c]:
                    if sizes[c] in seen_empty:
                        continue
                    seen_empty.add(sizes[c])
                added = float(sq[s, members_by_cluster[c]].sum()) if members_by_cluster[c] else 0.0
                new_remaining = tuple(
                    r - 1 if i == c else r for i, r in enumerate(remaining)
                )
                new_g = g + added
                h = min_sq * pairs_remaining(new_remaining)
                heapq.heappush(
                    heap,
                    (new_g + h, next(counter), s + 1, labels + (c,), new_remaining, new_g),
                )

        if best_goal is None:
            # Budget exhausted: greedily complete the most promising frontier
            # node so the method still returns a feasible mapping.
            if not heap:
                raise RuntimeError("A* frontier exhausted without reaching a goal")
            _f, _tie, s, labels, remaining, g = heapq.heappop(heap)
            labels = list(labels)
            remaining = list(remaining)
            members_by_cluster = [[] for _ in sizes]
            for idx, lab in enumerate(labels):
                if lab >= 0:
                    members_by_cluster[lab].append(idx)
            for t in range(s, n):
                slots_left = sum(remaining)
                can_skip = n - t > slots_left
                best_c, best_added = None, float("inf")
                for c, cap in enumerate(remaining):
                    if cap == 0:
                        continue
                    added = float(sq[t, members_by_cluster[c]].sum()) \
                        if members_by_cluster[c] else 0.0
                    if added < best_added:
                        best_c, best_added = c, added
                if can_skip and (best_c is None or best_added > 0.0):
                    labels.append(-1)  # skipping is free and feasibility holds
                    continue
                if best_c is None:
                    labels.append(-1)
                    continue
                labels.append(best_c)
                remaining[best_c] -= 1
                members_by_cluster[best_c].append(t)
                g += best_added
            best_goal = (g, tuple(labels))
            proven_optimal = False

        g, labels = best_goal
        partition = Partition(np.asarray(labels, dtype=np.int64))
        return SearchResult(
            best_partition=partition,
            best_value=g / scale,
            method=self.name,
            iterations=expansions,
            evaluations=expansions,
            optimal=proven_optimal,
            meta={"expansions": expansions},
        )


__all__ = ["AStarSearch"]
