"""Simulated annealing over the swap neighbourhood.

One of the comparators the paper tried before settling on Tabu search
(Section 2): a single-solution iterative method that accepts worsening
swaps with probability ``exp(-Δ/T)`` under a geometric cooling schedule.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.mapping import Partition
from repro.parallel import WorkersLike
from repro.search.base import SearchMethod, SearchResult, SimilarityObjective

_EPS = 1e-12


class SimulatedAnnealing(SearchMethod):
    """Swap-neighbourhood simulated annealing minimizing ``F_G``.

    Parameters
    ----------
    iterations:
        Proposed swaps in total.
    initial_temperature:
        Starting temperature in units of ``F_G``.  ``None`` calibrates it
        from a short random-walk sample so that ~80 % of uphill moves are
        initially accepted (standard practice).
    cooling:
        Geometric factor applied every ``steps_per_temperature`` proposals.
    restarts / workers:
        Independent annealing chains (one RNG stream each, best kept),
        optionally executed on a process pool.
    """

    name = "annealing"

    def __init__(self, *, iterations: int = 2000,
                 initial_temperature: Optional[float] = None,
                 cooling: float = 0.95, steps_per_temperature: int = 50,
                 restarts: int = 1, workers: WorkersLike = None):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if not (0 < cooling < 1):
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        if steps_per_temperature < 1:
            raise ValueError(
                f"steps_per_temperature must be >= 1, got {steps_per_temperature}"
            )
        self._init_multistart(restarts, workers)
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.steps_per_temperature = steps_per_temperature

    def _calibrate_temperature(self, state, rng: np.random.Generator) -> float:
        """Pick T0 so a typical uphill move is accepted with ~80 % probability."""
        deltas = []
        pairs = list(state.candidate_swaps())
        if not pairs:
            return 1.0
        for _ in range(min(100, 5 * len(pairs))):
            a, b = pairs[rng.integers(len(pairs))]
            d = state.swap_delta(a, b)
            if d > 0:
                deltas.append(d)
        if not deltas:
            return 1.0
        mean_up = float(np.mean(deltas))
        return mean_up / math.log(1.0 / 0.8)

    def _run_single(self, objective: SimilarityObjective,
                    rng: np.random.Generator,
                    initial: Optional[Partition]) -> SearchResult:
        state = (objective.state_from(initial) if initial is not None
                 else objective.random_state(rng))
        if not any(True for _ in state.candidate_swaps()):
            part = state.partition()
            return SearchResult(part, state.value(), self.name)
        assigned = state.assigned

        temp = (self.initial_temperature
                if self.initial_temperature is not None
                else self._calibrate_temperature(state, rng))
        best_partition = state.partition()
        best_value = state.value()
        trace = [best_value]
        evals = 0

        for step in range(self.iterations):
            # Sample a cross-cluster pair; membership drifts as swaps land,
            # so sample switches fresh each step instead of caching pairs.
            a = int(assigned[rng.integers(assigned.size)])
            b = int(assigned[rng.integers(assigned.size)])
            if state.labels[a] == state.labels[b]:
                continue
            delta = state.swap_delta(a, b)
            evals += 1
            accept = delta < _EPS or (
                temp > 0 and rng.random() < math.exp(-delta / temp)
            )
            if accept:
                state.apply_swap(a, b)
                trace.append(state.value())
                if state.value() < best_value - _EPS:
                    best_value = state.value()
                    best_partition = state.partition()
            if (step + 1) % self.steps_per_temperature == 0:
                temp *= self.cooling

        return SearchResult(
            best_partition=best_partition,
            best_value=best_value,
            method=self.name,
            iterations=self.iterations,
            evaluations=evals,
            trace=trace,
            meta={"final_temperature": temp},
        )


__all__ = ["SimulatedAnnealing"]
