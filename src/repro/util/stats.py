"""Small statistics helpers used by the evaluation pipeline.

The paper reports Pearson correlation between the clustering coefficient and
network performance (Figure 6); :func:`pearson` is the workhorse there.
:class:`RunningStats` provides constant-memory mean/variance accumulation for
the simulator's latency samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson product-moment correlation coefficient of two samples.

    Returns ``nan`` when either sample is degenerate (fewer than two points
    or zero variance) instead of raising, because Figure 6's correlation at
    some load points is legitimately undefined (all mappings accept the same
    traffic at very low load).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape:
        raise ValueError(f"shape mismatch: {xa.shape} vs {ya.shape}")
    if xa.size < 2:
        return float("nan")
    xd = xa - xa.mean()
    yd = ya - ya.mean()
    sx = float(np.sqrt(np.dot(xd, xd)))
    sy = float(np.sqrt(np.dot(yd, yd)))
    if sx == 0.0 or sy == 0.0:
        return float("nan")
    # Subnormal-range deviations lose enough precision in the dot
    # products to push |r| past 1; clamp like numpy.corrcoef does.
    return float(min(1.0, max(-1.0, np.dot(xd, yd) / (sx * sy))))


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson on ranks, average-rank ties)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape:
        raise ValueError(f"shape mismatch: {xa.shape} vs {ya.shape}")
    return pearson(_rankdata(xa), _rankdata(ya))


def _rankdata(a: np.ndarray) -> np.ndarray:
    """Ranks with average tie handling (1-based), minimal scipy-free version."""
    order = np.argsort(a, kind="mergesort")
    ranks = np.empty(a.size, dtype=float)
    sorted_a = a[order]
    i = 0
    while i < a.size:
        j = i
        while j + 1 < a.size and sorted_a[j + 1] == sorted_a[i]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / min / max / median of a sample as a plain dict."""
    a = np.asarray(values, dtype=float)
    if a.size == 0:
        return {"n": 0, "mean": math.nan, "std": math.nan, "min": math.nan,
                "max": math.nan, "median": math.nan}
    return {
        "n": int(a.size),
        "mean": float(a.mean()),
        "std": float(a.std(ddof=1)) if a.size > 1 else 0.0,
        "min": float(a.min()),
        "max": float(a.max()),
        "median": float(np.median(a)),
    }


@dataclass
class RunningStats:
    """Welford's online mean/variance accumulator.

    The simulator records one latency sample per delivered message; with
    millions of messages per sweep we do not want to keep them all.
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=math.inf)
    _max: float = field(default=-math.inf)

    def add(self, x: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        n = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self._mean += delta * other.count / n
        self.count = n
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan


class ReservoirSampler:
    """Uniform reservoir sample of a stream (Vitter's algorithm R).

    Keeps a bounded uniform sample of the latency stream so percentiles
    can be reported without storing every observation.  Deterministic for
    a given seed and stream.
    """

    def __init__(self, capacity: int = 2048, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        import random as _random

        self.capacity = capacity
        self._rng = _random.Random(seed)
        self._sample: list = []
        self.count = 0

    def add(self, x: float) -> None:
        """Offer one observation to the reservoir."""
        self.count += 1
        if len(self._sample) < self.capacity:
            self._sample.append(x)
            return
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self._sample[j] = x

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) of the sampled stream; nan when empty."""
        if not (0 <= q <= 100):
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._sample:
            return math.nan
        return float(np.percentile(np.asarray(self._sample), q))

    def percentiles(self, qs: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
        """Named percentiles, e.g. ``{"p50": ..., "p95": ..., "p99": ...}``.

        One vectorized :func:`numpy.percentile` call: the per-call setup
        (array conversion, dispatch) is a measurable fixed cost per
        simulation run when computed once per quantile.

        An empty reservoir yields an explicitly empty dict rather than
        NaN-valued entries: NaN is not valid JSON, and every consumer
        (trace metrics records, the Prometheus exporter, report
        rendering) treats "no keys" as "no data".
        """
        for q in qs:
            if not (0 <= q <= 100):
                raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._sample:
            return {}
        vals = np.percentile(np.asarray(self._sample), list(qs))
        return {f"p{int(q)}": float(v) for q, v in zip(qs, vals)}

    @property
    def sample_size(self) -> int:
        return len(self._sample)


__all__ = ["pearson", "spearman", "summarize", "RunningStats",
           "ReservoirSampler"]
