"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (topology generation, heuristic
search, traffic injection) accepts a ``seed`` argument that may be an int,
``None`` or an already-constructed :class:`numpy.random.Generator`.  This
module centralizes the conversion so results are reproducible end to end:
the same seed always yields the same topology, the same Tabu trajectory and
the same simulated traffic.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, a
    ``SeedSequence`` or an existing ``Generator`` (returned unchanged so
    that callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used by multi-start searches and multi-mapping experiments so each
    restart/replicate has an independent stream while the whole run stays
    reproducible from a single integer.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit stream deterministically.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed: SeedLike, *keys: Union[int, str]) -> int:
    """Deterministically derive an integer sub-seed from ``seed`` and keys.

    Useful when a component needs a plain ``int`` seed (e.g. to store in a
    result record) rather than a live generator.
    """
    base = 0 if seed is None else seed
    if isinstance(base, np.random.Generator):
        base = int(base.integers(0, 2**31 - 1))
    if isinstance(base, np.random.SeedSequence):
        base = int(base.generate_state(1)[0])
    material = str(int(base)) + "|" + "|".join(str(k) for k in keys)
    # FNV-1a, stable across processes (unlike hash()).
    acc = 0xCBF29CE484222325
    for ch in material.encode():
        acc ^= ch
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFF


__all__ = ["SeedLike", "as_rng", "spawn_rngs", "derive_seed"]
