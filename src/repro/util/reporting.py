"""Plain-text tabular reporting.

The benchmark harness regenerates the paper's figures as text series; this
module renders them as aligned monospace tables so the output is readable in
a terminal and diffable in CI, without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np


def format_float(x: Any, digits: int = 4) -> str:
    """Format a number compactly; pass strings through unchanged."""
    if isinstance(x, str):
        return x
    if x is None:
        return "-"
    if isinstance(x, (bool, np.bool_)):
        return str(bool(x))
    if isinstance(x, (int, np.integer)):
        return str(int(x))
    xf = float(x)
    if math.isnan(xf):
        return "nan"
    if math.isinf(xf):
        return "inf" if xf > 0 else "-inf"
    if xf == 0:
        return "0"
    if abs(xf) >= 10 ** (digits + 2) or abs(xf) < 10 ** (-digits):
        return f"{xf:.{digits}e}"
    return f"{xf:.{digits}g}"


class Table:
    """Accumulate rows, render as an aligned text table.

    >>> t = Table(["mapping", "C_c", "throughput"])
    >>> t.add_row(["OP", 3.41, 0.52])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns: List[str] = [str(c) for c in columns]
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[Any], digits: int = 4) -> None:
        """Append one row; cell count must match the column count."""
        row = [format_float(v, digits) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The table as aligned monospace text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "  "
        lines = []
        if self.title:
            lines.append(self.title)
        header = sep.join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append(sep.join("-" * w for w in widths))
        for row in self.rows:
            lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


__all__ = ["Table", "format_float"]
