"""Argument-validation helpers with consistent error messages.

Raising early with a precise message is cheaper than debugging a silently
wrong distance table three layers up, so public constructors validate their
inputs through these helpers.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def check_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(value: float, name: str, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    check_in_range(value, name, 0.0, 1.0)


def check_square_matrix(m: Any, name: str) -> np.ndarray:
    """Coerce to a float ndarray and require it to be square 2-D."""
    a = np.asarray(m, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be a square 2-D matrix, got shape {a.shape}")
    return a


def check_symmetric(m: Any, name: str, atol: float = 1e-9) -> np.ndarray:
    """Require a square matrix symmetric within ``atol``."""
    a = check_square_matrix(m, name)
    if not np.allclose(a, a.T, atol=atol):
        raise ValueError(f"{name} must be symmetric (atol={atol})")
    return a


__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_square_matrix",
    "check_symmetric",
]
