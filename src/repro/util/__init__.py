"""Shared utilities: seeded RNG handling, statistics, validation, reporting.

These helpers are deliberately free of any domain knowledge so that every
substrate package (topology, routing, distance, simulation, ...) can depend
on them without creating import cycles.
"""

from repro.util.rng import as_rng, spawn_rngs, derive_seed
from repro.util.stats import (
    pearson,
    spearman,
    summarize,
    RunningStats,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
    check_square_matrix,
    check_symmetric,
)
from repro.util.reporting import Table, format_float
from repro.util.asciiplot import line_plot, bar_chart

__all__ = [
    "as_rng",
    "spawn_rngs",
    "derive_seed",
    "pearson",
    "spearman",
    "summarize",
    "RunningStats",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_square_matrix",
    "check_symmetric",
    "Table",
    "format_float",
    "line_plot",
    "bar_chart",
]
