"""Terminal line/scatter plots for the figure renderings.

The paper's Figures 1, 3, 5 and 6 are plots; the benchmark harness renders
them as monospace charts so a full reproduction run needs no plotting
stack and the archived outputs stay diffable.  Markers are assigned per
series; overlapping points show the later series' marker.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

Series = Tuple[Sequence[float], Sequence[float]]

_MARKERS = "ox+*#@%&"


def _nice_ticks(lo: float, hi: float, n: int) -> List[float]:
    """n roughly-even tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / max(1, n - 1)
    return [lo + i * step for i in range(n)]


def _fmt(x: float) -> str:
    if x == 0:
        return "0"
    if abs(x) >= 1000 or abs(x) < 0.01:
        return f"{x:.1e}"
    return f"{x:.3g}"


def line_plot(
    series: Mapping[str, Series],
    *,
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_log: bool = False,
) -> str:
    """Render named (xs, ys) series as an ASCII scatter plot.

    Parameters
    ----------
    series:
        Mapping of series name to ``(xs, ys)``.  NaN points are skipped.
    width, height:
        Plot-area size in characters (axes and legend are extra).
    y_log:
        Plot ``log10(y)`` (ticks still show raw values) — useful for the
        latency curves whose saturation blow-up dwarfs the low-load region.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError(f"plot area too small: {width}x{height}")

    def ty(v: float) -> float:
        return math.log10(v) if y_log else v

    points: Dict[str, List[Tuple[float, float]]] = {}
    for name, (xs, ys) in series.items():
        xs = list(xs)
        ys = list(ys)
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: x/y length mismatch")
        pts = [
            (float(x), float(y))
            for x, y in zip(xs, ys)
            if not (math.isnan(float(x)) or math.isnan(float(y)))
            and (not y_log or y > 0)
        ]
        points[name] = pts
    all_pts = [p for pts in points.values() for p in pts]
    if not all_pts:
        raise ValueError("no finite data points to plot")

    x_lo = min(p[0] for p in all_pts)
    x_hi = max(p[0] for p in all_pts)
    y_lo = min(ty(p[1]) for p in all_pts)
    y_hi = max(ty(p[1]) for p in all_pts)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(points.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            cx = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            cy = round((ty(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - cy][cx] = marker

    # y tick labels on 4 rows (top, 1/3, 2/3, bottom).
    label_rows = {0, height // 3, 2 * height // 3, height - 1}
    y_ticks = {}
    for r in label_rows:
        frac = (height - 1 - r) / (height - 1)
        v = y_lo + frac * (y_hi - y_lo)
        y_ticks[r] = _fmt(10 ** v if y_log else v)
    label_w = max(len(s) for s in y_ticks.values())

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label}{' (log scale)' if y_log else ''}")
    for r in range(height):
        label = y_ticks.get(r, "").rjust(label_w)
        lines.append(f"{label} |" + "".join(grid[r]))
    x_axis = " " * label_w + " +" + "-" * width
    lines.append(x_axis)
    left = _fmt(x_lo)
    right = _fmt(x_hi)
    gap = width - len(left) - len(right)
    lines.append(" " * (label_w + 2) + left + " " * max(1, gap) + right)
    if x_label:
        pad = max(0, (label_w + 2 + width - len(x_label)) // 2)
        lines.append(" " * pad + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(points)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    title: str = "",
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart (used for the Figure 6 correlations)."""
    if not values:
        raise ValueError("need at least one value")
    finite = {k: v for k, v in values.items() if not math.isnan(v)}
    v_lo = lo if lo is not None else min(0.0, *finite.values()) if finite else 0.0
    v_hi = hi if hi is not None else max(finite.values(), default=1.0)
    if v_hi <= v_lo:
        v_hi = v_lo + 1.0
    name_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, v in values.items():
        if math.isnan(v):
            lines.append(f"{name.rjust(name_w)} | (undefined)")
            continue
        filled = round((v - v_lo) / (v_hi - v_lo) * width)
        filled = min(max(filled, 0), width)
        lines.append(
            f"{name.rjust(name_w)} |{'#' * filled}{' ' * (width - filled)}| "
            f"{_fmt(v)}"
        )
    return "\n".join(lines)


__all__ = ["line_plot", "bar_chart"]
