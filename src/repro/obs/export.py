"""Prometheus text exposition of a :class:`MetricsRegistry` snapshot.

The operator console (:mod:`repro.reporting.console`) serves a
``/metrics`` endpoint; this module renders the registry's JSON-ready
snapshot — ``{"counters": ..., "gauges": ..., "histograms": ...}`` —
into the Prometheus text exposition format (version 0.0.4) without any
client-library dependency:

- counters become ``<name>_total`` samples with ``# TYPE ... counter``;
- gauges become plain samples with ``# TYPE ... gauge``;
- histograms (Welford moments + reservoir percentiles) become
  ``summary`` families: ``quantile``-labelled samples plus ``_count``
  and ``_sum`` (reconstructed as ``mean * count`` — the registry keeps
  moments, not a running sum).

Instrument names use dotted paths (``cache.dist.hit``); exposition
names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dots and any other
illegal characters are folded to underscores and everything is prefixed
with ``repro_``.

:func:`parse_exposition` is the strict inverse used by the tests and
the CI smoke job: it re-parses an exposition document, enforcing the
format's line grammar (HELP/TYPE comments first, one TYPE per family,
float-parseable sample values), so "valid Prometheus text format" is a
checkable property rather than a hope.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Tuple

PROM_PREFIX = "repro"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"\\]*)"$')
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def prom_name(name: str, prefix: str = PROM_PREFIX) -> str:
    """A dotted instrument name as a legal Prometheus metric name."""
    cleaned = _NAME_FIX.sub("_", name)
    if prefix:
        cleaned = f"{prefix}_{cleaned}"
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """A sample value in exposition syntax (NaN / +Inf / -Inf spelled out)."""
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def render_prometheus(
    snapshot: Mapping[str, Any], *, prefix: str = PROM_PREFIX
) -> str:
    """Render a registry snapshot as a Prometheus text exposition document.

    ``snapshot`` is what :meth:`MetricsRegistry.snapshot` returns; any of
    the three sections may be absent.  Families render in sorted-name
    order, so the document is deterministic for a given snapshot.
    """
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        fam = prom_name(name, prefix) + "_total"
        lines.append(f"# HELP {fam} Counter {name!r} from the repro registry.")
        lines.append(f"# TYPE {fam} counter")
        lines.append(f"{fam} {_fmt(counters[name])}")
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        fam = prom_name(name, prefix)
        lines.append(f"# HELP {fam} Gauge {name!r} from the repro registry.")
        lines.append(f"# TYPE {fam} gauge")
        lines.append(f"{fam} {_fmt(gauges[name])}")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        snap = histograms[name]
        fam = prom_name(name, prefix)
        lines.append(
            f"# HELP {fam} Histogram {name!r} from the repro registry.")
        lines.append(f"# TYPE {fam} summary")
        count = int(snap.get("count", 0))
        for key in sorted(k for k in snap if k.startswith("p")):
            q = float(key[1:]) / 100.0
            lines.append(f'{fam}{{quantile="{_fmt(q)}"}} {_fmt(snap[key])}')
        mean = float(snap.get("mean", 0.0)) if count else 0.0
        lines.append(f"{fam}_sum {_fmt(mean * count)}")
        lines.append(f"{fam}_count {count}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse (and thereby validate) a text exposition document.

    Returns ``{family sample name: [(labels, value), ...]}``.  Raises
    :class:`ValueError` on any grammar violation: a malformed sample
    line, an unknown TYPE, a repeated TYPE for one family, a sample
    value that does not parse as a float, or a missing final newline.
    """
    if text == "":
        return {}
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    metrics: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment: {line!r}")
            _, kind, fam, rest = parts
            if not _NAME_OK.match(fam):
                raise ValueError(f"line {lineno}: bad family name {fam!r}")
            if kind == "TYPE":
                if rest not in _TYPES:
                    raise ValueError(f"line {lineno}: unknown type {rest!r}")
                if fam in typed:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {fam}")
                typed[fam] = rest
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels: Dict[str, str] = {}
        raw = m.group("labels")
        if raw:
            for pair in raw.rstrip(",").split(","):
                lm = _LABEL.match(pair)
                if lm is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}")
                labels[lm.group("key")] = lm.group("val")
        value_text = m.group("value")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparseable value {value_text!r}") from None
        metrics.setdefault(m.group("name"), []).append((labels, value))
    return metrics


def validate_exposition(text: str) -> List[str]:
    """Grammar errors in an exposition document (empty list = valid)."""
    try:
        parse_exposition(text)
    except ValueError as exc:
        return [str(exc)]
    return []


__all__ = [
    "PROM_PREFIX",
    "prom_name",
    "render_prometheus",
    "parse_exposition",
    "validate_exposition",
]
