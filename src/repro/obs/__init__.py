"""Unified telemetry: structured tracing, metrics and run manifests.

Every figure in the paper is the output of a long pipeline — Tabu
restarts, flit-level simulation points, sweep aggregation — and this
package is the one place that pipeline reports what it did and where the
cycles went:

- :mod:`repro.obs.trace`   — a :class:`Tracer` producing nested spans and
  point events, scoped through a context variable so instrumented code
  never threads a handle;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms (backed by the Welford/reservoir machinery in
  :mod:`repro.util.stats`);
- :mod:`repro.obs.sinks`   — pluggable event sinks (in-memory for tests,
  JSONL files for runs);
- :mod:`repro.obs.manifest` — a per-run :class:`RunManifest` capturing
  the command, seeds, engine, worker count and package version;
- :mod:`repro.obs.schema`  — the JSONL event schema and its validator;
- :mod:`repro.obs.report`  — ``repro report``: summarize a trace file;
- :mod:`repro.obs.export`  — registry snapshots in Prometheus text
  exposition format (the console's ``/metrics`` endpoint).

The determinism contract (locked down by the engine-parity and
parallel-determinism suites): telemetry is **inert**.  It never touches
any RNG stream or canonical result payload — enabling a tracer changes
what is *recorded*, never what is *computed* — and with no tracer active
every instrumentation point is a near-zero-cost no-op.
"""

from repro.obs.export import (
    parse_exposition,
    render_prometheus,
    validate_exposition,
)
from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    use_registry,
)
from repro.obs.run import trace_run
from repro.obs.sinks import JsonlSink, MemorySink
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    current_tracer,
    event,
    span,
    use_tracer,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "current_tracer",
    "use_tracer",
    "span",
    "event",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "current_registry",
    "use_registry",
    "MemorySink",
    "JsonlSink",
    "RunManifest",
    "collect_manifest",
    "trace_run",
    "render_prometheus",
    "parse_exposition",
    "validate_exposition",
]
