"""Run-scoped wiring: one context manager that turns telemetry on.

:func:`trace_run` is what ``repro --trace PATH`` uses: it opens a JSONL
sink, writes the manifest as the first record, installs a fresh
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` into the context variables,
and on exit appends a final ``metrics`` snapshot record and closes the
file.  Everything instrumented in the library lights up for the duration
of the block and goes quiet after it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.sinks import JsonlSink, PathLike, Sink
from repro.obs.trace import Tracer, use_tracer


@contextmanager
def trace_run(
    path_or_sink: Union[PathLike, Sink],
    *,
    manifest: Optional[RunManifest] = None,
) -> Iterator[Tracer]:
    """Enable tracing + metrics for the block, writing one trace stream.

    Parameters
    ----------
    path_or_sink:
        A JSONL file path (the usual case) or any pre-built sink (tests
        pass a :class:`~repro.obs.sinks.MemorySink`).
    manifest:
        Written as the stream's first record when given.

    Yields the active :class:`~repro.obs.trace.Tracer`; the paired
    :class:`~repro.obs.metrics.MetricsRegistry` is reachable through
    :func:`repro.obs.metrics.current_registry` and is snapshotted into
    the stream's final ``metrics`` record on exit (also on error, so a
    crashed run still carries its numbers).
    """
    sink: Sink
    if hasattr(path_or_sink, "emit"):
        sink = path_or_sink  # type: ignore[assignment]
        own_sink = False
    else:
        sink = JsonlSink(path_or_sink)
        own_sink = True
    if manifest is not None:
        sink.emit(manifest.to_record())
    tracer = Tracer(sink)
    registry = MetricsRegistry()
    try:
        with use_tracer(tracer), use_registry(registry):
            yield tracer
    finally:
        sink.emit({
            "type": "metrics",
            "t": time.perf_counter(),
            "metrics": registry.snapshot(),
        })
        if own_sink:
            sink.close()


__all__ = ["trace_run"]
