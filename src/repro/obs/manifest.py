"""Per-run manifests: what was run, with which knobs, by which build.

A trace file is only evidence if it says what produced it.  The
:class:`RunManifest` is the first record of every ``--trace`` run and
captures the command, its arguments, the seed, the engine, the worker
count (as requested and as resolved) and the package/python versions —
enough to re-run the pipeline that produced the trace, and enough for
``repro report`` to label its output.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RunManifest:
    """Identity of one traced run.

    ``created_unix`` is wall-clock (``time.time``) — the only wall-clock
    timestamp in a trace; every span/event uses the monotonic clock.
    ``workers`` holds the request as given (``None``, an int, or
    ``"auto"``); ``workers_resolved`` the concrete count it resolved to.
    """

    command: str
    argv: List[str] = field(default_factory=list)
    seed: Optional[int] = None
    engine: Optional[str] = None
    workers: Optional[str] = None
    workers_resolved: int = 1
    package_version: str = ""
    python_version: str = ""
    platform: str = ""
    created_unix: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """The JSONL record form (``type: "manifest"``)."""
        return {
            "type": "manifest",
            "command": self.command,
            "argv": list(self.argv),
            "seed": self.seed,
            "engine": self.engine,
            "workers": self.workers,
            "workers_resolved": self.workers_resolved,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "platform": self.platform,
            "created_unix": self.created_unix,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "RunManifest":
        """Parse a manifest record back into a :class:`RunManifest`."""
        if record.get("type") != "manifest":
            raise ValueError(
                f"not a manifest record: type={record.get('type')!r}"
            )
        return cls(
            command=record["command"],
            argv=list(record.get("argv", [])),
            seed=record.get("seed"),
            engine=record.get("engine"),
            workers=record.get("workers"),
            workers_resolved=int(record.get("workers_resolved", 1)),
            package_version=record.get("package_version", ""),
            python_version=record.get("python_version", ""),
            platform=record.get("platform", ""),
            created_unix=float(record.get("created_unix", 0.0)),
            extra=dict(record.get("extra", {})),
        )


def collect_manifest(
    command: str,
    argv: Optional[List[str]] = None,
    *,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
    workers: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Build a manifest for the current process and configuration.

    ``workers`` accepts anything :func:`repro.parallel.resolve_workers`
    does; both the raw request and the resolved count are recorded.
    """
    from repro import __version__
    from repro.parallel import resolve_workers

    return RunManifest(
        command=command,
        argv=list(argv) if argv is not None else [],
        seed=seed,
        engine=engine,
        workers=None if workers is None else str(workers),
        workers_resolved=resolve_workers(workers),
        package_version=__version__,
        python_version=sys.version.split()[0],
        platform=platform.platform(),
        created_unix=time.time(),
        extra=dict(extra or {}),
    )


__all__ = ["RunManifest", "collect_manifest"]
