"""A registry of counters, gauges and histograms.

The registry is the numeric half of the telemetry layer: monotonically
increasing :class:`Counter` totals (cache hits, arbitration conflicts,
retries), last-value :class:`Gauge` readings (worker counts), and
:class:`Histogram` distributions backed by the same Welford accumulator
and reservoir sampler the simulator uses for latency statistics
(:mod:`repro.util.stats`) — constant memory no matter how many
observations flow in.

Like the tracer, the active registry is carried in a context variable:
instrumented code calls the module-level :func:`inc` / :func:`set_gauge`
/ :func:`observe` helpers, which are near-zero-cost no-ops when no
registry is installed.  Histograms draw their reservoir randomness from a
private ``random.Random`` seeded constantly, so recording a metric can
never perturb any experiment RNG stream.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional

from repro.util.stats import ReservoirSampler, RunningStats

_ACTIVE_REGISTRY: ContextVar[Optional["MetricsRegistry"]] = ContextVar(
    "repro_obs_registry", default=None
)


class Counter:
    """A monotonically increasing total (float-valued; starts at 0)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins instantaneous reading."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        """Record the current reading."""
        self.value = float(value)


class Histogram:
    """A bounded-memory distribution: Welford moments plus a reservoir.

    ``observe`` folds each sample into a
    :class:`~repro.util.stats.RunningStats` (mean/std/min/max) and offers
    it to a :class:`~repro.util.stats.ReservoirSampler` for percentiles.
    The reservoir's RNG is private and constant-seeded — deterministic
    for a given observation stream, invisible to every other RNG.
    """

    __slots__ = ("name", "stats", "reservoir")

    def __init__(self, name: str, reservoir_capacity: int = 512):
        self.name = name
        self.stats = RunningStats()
        self.reservoir = ReservoirSampler(capacity=reservoir_capacity, seed=0)

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram (NaN is ignored)."""
        value = float(value)
        if math.isnan(value):
            return
        self.stats.add(value)
        self.reservoir.add(value)

    def snapshot(self) -> Dict[str, float]:
        """Headline statistics plus p50/p95/p99 as a JSON-ready dict.

        A histogram that never saw an observation snapshots to the
        explicit empty result ``{"count": 0}`` — no NaN-valued moments,
        which would poison the JSON metrics record at trace close.
        """
        if self.stats.count == 0:
            return {"count": 0}
        out: Dict[str, float] = {
            "count": self.stats.count,
            "mean": self.stats.mean,
            "std": self.stats.std,
            "min": self.stats.min,
            "max": self.stats.max,
        }
        out.update(self.reservoir.percentiles())
        return out


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create semantics.

    Creation is serialized behind a lock (the distance-table cache updates
    its counters from multiple threads); increments on an existing
    instrument are plain attribute updates — the instruments' consumers
    here are tolerant of the benign races that leaves possible.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name))
        return h

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every instrument's current state as one JSON-ready dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(self._histograms.items())},
        }


def current_registry() -> Optional[MetricsRegistry]:
    """The registry active in this context, or ``None`` (metrics off)."""
    return _ACTIVE_REGISTRY.get()


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Make ``registry`` the active registry for the duration of the block."""
    token = _ACTIVE_REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_REGISTRY.reset(token)


def inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter on the active registry; no-op when none."""
    registry = _ACTIVE_REGISTRY.get()
    if registry is not None:
        registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry; no-op when none."""
    registry = _ACTIVE_REGISTRY.get()
    if registry is not None:
        registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Feed a histogram on the active registry; no-op when none."""
    registry = _ACTIVE_REGISTRY.get()
    if registry is not None:
        registry.histogram(name).observe(value)


def deactivate() -> None:
    """Unconditionally clear the active registry in this context.

    Fork-safety hook for pool workers; see
    :func:`repro.obs.trace.deactivate`.
    """
    _ACTIVE_REGISTRY.set(None)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "use_registry",
    "inc",
    "set_gauge",
    "observe",
    "deactivate",
]
