"""Structured tracing: nested spans and point events.

A :class:`Tracer` turns instrumented code into a stream of records —
*spans* (named intervals with a parent, measured on the monotonic clock)
and *events* (named points in time) — delivered to a pluggable sink
(:mod:`repro.obs.sinks`).  The active tracer is carried in a
:class:`contextvars.ContextVar`, so instrumented library code calls the
module-level :func:`span` / :func:`event` helpers and never threads a
tracer handle through its signatures.

The inertness contract: with no tracer active (the default), :func:`span`
returns a shared no-op context manager and :func:`event` returns
immediately — one context-variable read per call, no allocation beyond
the caller's keyword dict.  No code path here touches any RNG stream, so
enabling tracing cannot perturb a deterministic computation; the parity
and determinism suites assert exactly that.

Spans are emitted on *exit* (children before parents); the report layer
rebuilds the tree from ``span_id``/``parent_id``.  All timestamps come
from :func:`time.perf_counter` — monotonic, arbitrary origin — so only
durations and intra-run ordering are meaningful.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.obs.sinks import Sink

_ACTIVE_TRACER: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_obs_tracer", default=None
)


@dataclass
class TraceEvent:
    """Typed view of one trace record (a span or a point event).

    The tracer emits plain dicts for speed; this dataclass is the parsed
    form used by :mod:`repro.obs.report` and by
    :mod:`repro.serialize` round-trips.  ``kind`` is ``"span"`` or
    ``"event"``; spans carry a ``duration``, events do not.
    """

    kind: str
    name: str
    t: float
    duration: Optional[float] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """The JSONL record form of this event (see :mod:`repro.obs.schema`)."""
        if self.kind == "span":
            return {
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "t_start": self.t,
                "t_end": (self.t + self.duration
                          if self.duration is not None else self.t),
                "duration": self.duration,
                "attrs": dict(self.attrs),
            }
        return {
            "type": "event",
            "name": self.name,
            "t": self.t,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Parse a JSONL span/event record back into a :class:`TraceEvent`."""
        rtype = record.get("type")
        if rtype == "span":
            return cls(
                kind="span",
                name=record["name"],
                t=float(record["t_start"]),
                duration=(float(record["duration"])
                          if record.get("duration") is not None else None),
                span_id=record.get("span_id"),
                parent_id=record.get("parent_id"),
                attrs=dict(record.get("attrs", {})),
            )
        if rtype == "event":
            return cls(
                kind="event",
                name=record["name"],
                t=float(record["t"]),
                span_id=record.get("span_id"),
                attrs=dict(record.get("attrs", {})),
            )
        raise ValueError(f"not a span/event record: type={rtype!r}")


class _SpanHandle:
    """A live span: context-manager state handed out by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "t_start", "attrs",
                 "_token")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.t_start = 0.0
        self._token = None

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the span before it closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        self._token = self.tracer._span_stack.set(self.span_id)
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t_end = time.perf_counter()
        self.tracer._span_stack.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc))
        self.tracer._emit({
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "t_end": t_end,
            "duration": t_end - self.t_start,
            "attrs": self.attrs,
        })


class _NullSpan:
    """The shared no-op span returned when no tracer is active."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        """Discard attributes (no tracer is recording them)."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested spans and point events into a sink.

    Parameters
    ----------
    sink:
        Any object with ``emit(record: dict)`` (see
        :mod:`repro.obs.sinks`).  Records are plain JSON-ready dicts.

    Span nesting is tracked per execution context (a
    :class:`~contextvars.ContextVar` holding the current span id), so
    spans opened in different threads or asyncio tasks parent correctly.
    """

    def __init__(self, sink: Sink):
        self.sink = sink
        self._next_id = 0
        self._span_stack: ContextVar[Optional[int]] = ContextVar(
            "repro_obs_span", default=None
        )

    def _emit(self, record: Dict[str, Any]) -> None:
        self.sink.emit(record)

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def span(self, name: str, /, **attrs: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager.

        The span records ``perf_counter`` enter/exit times and is emitted
        on exit with its parent span id (if any).  Extra keyword
        arguments become span attributes; more can be attached through
        :meth:`_SpanHandle.set` before the block closes.
        """
        return _SpanHandle(self, name, self._new_id(),
                           self._span_stack.get(), attrs)

    def event(self, name: str, /, **attrs: Any) -> None:
        """Record an instantaneous named event under the current span."""
        self._emit({
            "type": "event",
            "name": name,
            "t": time.perf_counter(),
            "span_id": self._span_stack.get(),
            "attrs": attrs,
        })


def current_tracer() -> Optional[Tracer]:
    """The tracer active in this context, or ``None`` (tracing disabled)."""
    return _ACTIVE_TRACER.get()


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Make ``tracer`` the active tracer for the duration of the block."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


def span(name: str, /, **attrs: Any):
    """Open a span on the active tracer — a shared no-op when disabled.

    This is the instrumentation entry point used throughout the library::

        with obs.span("sweep.load", points=9) as sp:
            ...
            sp.set(completed=9)

    With no active tracer the returned object is a singleton whose
    ``__enter__``/``__exit__``/``set`` do nothing, so the disabled cost is
    one context-variable read plus the caller's keyword dict.
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, /, **attrs: Any) -> None:
    """Record a point event on the active tracer; no-op when disabled."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is not None:
        tracer.event(name, **attrs)


def deactivate() -> None:
    """Unconditionally clear the active tracer in this context.

    Fork-safety hook: a forked pool worker inherits the parent's tracer
    contextvar (and, through it, the parent's open sink).  Workers call
    this at startup so telemetry stays parent-side — the source of the
    serial ≡ pooled event-stream guarantee.
    """
    _ACTIVE_TRACER.set(None)


__all__ = [
    "TraceEvent",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "span",
    "event",
    "deactivate",
]
