"""``repro report`` — summarize a JSONL trace file.

Reads a trace produced by ``repro --trace PATH ...`` (or any
:func:`repro.obs.run.trace_run` stream) and renders, as plain text:

- the run manifest (command, seed, engine, workers, versions);
- a per-phase time breakdown — total and *self* time per span name,
  where self time subtracts child spans so nested phases don't double
  count;
- the slowest individual spans;
- cache hit/miss rates and engine counters from the final metrics
  snapshot;
- the search convergence table and an ASCII trajectory plot built from
  the per-restart ``search.restart`` events.

Every section degrades gracefully: a trace with no search events simply
has no convergence section, and so on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.manifest import RunManifest
from repro.obs.trace import TraceEvent
from repro.util.asciiplot import line_plot
from repro.util.reporting import Table

PathLike = Union[str, Path]


@dataclass
class TraceData:
    """A parsed trace file: manifest, spans, events, metrics snapshots.

    ``corrupt_lines`` counts lines that failed to parse (typically one
    torn final line from a run killed mid-write); the report renders the
    surviving records and says how many lines were dropped.
    """

    manifest: Optional[RunManifest] = None
    spans: List[TraceEvent] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    corrupt_lines: int = 0

    def events_named(self, name: str) -> List[TraceEvent]:
        """All point events with the given name, in file order."""
        return [e for e in self.events if e.name == name]

    @property
    def counters(self) -> Dict[str, float]:
        """The counters section of the last metrics snapshot (may be empty)."""
        return self.metrics.get("counters", {})


def load_trace(path: PathLike) -> TraceData:
    """Parse a JSONL trace file into a :class:`TraceData`.

    Unknown record types are skipped (forward compatibility); when a file
    carries several metrics snapshots the last one wins.
    """
    data = TraceData()
    with open(Path(path)) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            # A run killed mid-write leaves one torn line (usually the
            # last); drop it, count it, and keep everything that did land.
            try:
                record = json.loads(line)
                rtype = record.get("type")
                if rtype == "manifest":
                    data.manifest = RunManifest.from_record(record)
                elif rtype == "span":
                    data.spans.append(TraceEvent.from_record(record))
                elif rtype == "event":
                    data.events.append(TraceEvent.from_record(record))
                elif rtype == "metrics":
                    data.metrics = record.get("metrics", {})
            except (ValueError, KeyError, TypeError, AttributeError):
                data.corrupt_lines += 1
    return data


def _phase_stats(spans: List[TraceEvent]) -> List[Dict[str, Any]]:
    """Per-span-name totals with self time (children subtracted).

    A span whose ``parent_id`` references a span that never closed (or
    whose record was torn away) simply contributes no child time to
    anyone — orphans are summarized like roots, never an error.
    """
    child_time: Dict[int, float] = {}
    for sp in spans:
        if sp.parent_id is not None and sp.duration is not None:
            child_time[sp.parent_id] = (child_time.get(sp.parent_id, 0.0)
                                        + sp.duration)
    totals: Dict[str, List[float]] = {}  # name -> [count, total, self]
    for sp in spans:
        dur = sp.duration or 0.0
        self_time = max(0.0, dur - child_time.get(sp.span_id or -1, 0.0))
        row = totals.setdefault(sp.name, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += dur
        row[2] += self_time
    traced = sum(sp.duration or 0.0 for sp in spans if sp.parent_id is None)
    out = []
    for name, (count, total, self_time) in sorted(
            totals.items(), key=lambda kv: -kv[1][2]):
        share = 100.0 * self_time / traced if traced > 0 else math.nan
        out.append({"phase": name, "count": count, "total_s": total,
                    "self_s": self_time, "share_pct": share})
    return out


def _phase_breakdown(spans: List[TraceEvent]) -> Table:
    """Per-span-name totals with self time (children subtracted)."""
    t = Table(["phase", "count", "total s", "self s", "% of run"],
              title="per-phase time breakdown")
    for row in _phase_stats(spans):
        t.add_row([row["phase"], row["count"], row["total_s"],
                   row["self_s"], row["share_pct"]], digits=3)
    return t


def _slowest_spans(spans: List[TraceEvent], limit: int) -> Table:
    """The ``limit`` longest individual spans with a context hint."""
    t = Table(["span", "duration s", "context"],
              title=f"slowest spans (top {limit})")
    ranked = sorted(spans, key=lambda sp: -(sp.duration or 0.0))[:limit]
    for sp in ranked:
        hint = ", ".join(
            f"{k}={v}" for k, v in list(sp.attrs.items())[:3]
            if not isinstance(v, (list, dict))
        )
        t.add_row([sp.name, sp.duration or 0.0, hint or "-"], digits=4)
    return t


def _grouped_counters(counters: Dict[str, float],
                      prefix: str) -> Dict[str, Dict[str, float]]:
    """``{group: {kind: value}}`` for counters named ``<prefix>.<group>.<kind>``."""
    groups: Dict[str, Dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith(prefix + "."):
            continue
        _, group, kind = name.split(".", 2)
        groups.setdefault(group, {})[kind] = value
    return groups


def _cache_stats(counters: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """Hit/miss/eviction rates per cache, from ``cache.*`` counters."""
    out: Dict[str, Dict[str, float]] = {}
    for cache_name, vals in sorted(_grouped_counters(counters,
                                                     "cache").items()):
        hits = vals.get("hits", 0.0)
        misses = vals.get("misses", 0.0)
        rate = hits / (hits + misses) if hits + misses else math.nan
        out[cache_name] = {"hits": hits, "misses": misses,
                           "evictions": vals.get("evictions", 0.0),
                           "hit_rate": rate}
    return out


def _cache_section(counters: Dict[str, float]) -> Optional[Table]:
    """Hit/miss/eviction rates per cache, from ``cache.*`` counters."""
    caches = _cache_stats(counters)
    if not caches:
        return None
    t = Table(["cache", "hits", "misses", "evictions", "hit rate"],
              title="distance/routing-table caches")
    for cache_name, vals in caches.items():
        t.add_row([cache_name, vals["hits"], vals["misses"],
                   vals["evictions"], vals["hit_rate"]], digits=3)
    return t


def _engine_stats(counters: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """Engine counter totals keyed by engine name, from ``engine.*``."""
    out: Dict[str, Dict[str, float]] = {}
    for engine_name, vals in sorted(_grouped_counters(counters,
                                                      "engine").items()):
        requests = vals.get("arb_requests", 0.0)
        conflicts = vals.get("arb_conflicts", 0.0)
        out[engine_name] = {
            "runs": vals.get("runs", 0.0),
            "cycles_executed": vals.get("cycles_executed", 0.0),
            "cycles_skipped": vals.get("cycles_skipped", 0.0),
            "arb_conflicts": conflicts,
            "conflict_rate": conflicts / requests if requests else math.nan,
        }
    return out


def _engine_section(counters: Dict[str, float]) -> Optional[Table]:
    """Engine counter totals, one row per engine, from ``engine.*``."""
    engines = _engine_stats(counters)
    if not engines:
        return None
    cols = ["engine", "runs", "cycles exec", "cycles skipped",
            "arb conflicts", "conflict rate"]
    t = Table(cols, title="simulation engines")
    for engine_name, vals in engines.items():
        t.add_row([
            engine_name, vals["runs"], vals["cycles_executed"],
            vals["cycles_skipped"], vals["arb_conflicts"],
            vals["conflict_rate"],
        ], digits=3)
    return t


def _search_section(data: TraceData, max_series: int = 6) -> List[str]:
    """Convergence table + trajectory plot from ``search.restart`` events."""
    restarts = data.events_named("search.restart")
    if not restarts:
        return []
    t = Table(["restart", "method", "iters", "evals", "best F_G",
               "accepted", "uphill", "tabu masked"],
              title="search convergence (per restart)")
    series: Dict[str, Any] = {}
    for ev in restarts:
        a = ev.attrs
        t.add_row([
            a.get("index", "-"), a.get("method", "-"),
            a.get("iterations", "-"), a.get("evaluations", "-"),
            a.get("best_value", math.nan), a.get("accepted", "-"),
            a.get("uphill", "-"), a.get("tabu_masked", "-"),
        ], digits=4)
        trace = a.get("trace") or []
        if trace and len(series) < max_series:
            # Best-so-far envelope: the convergence view of the raw F series.
            best, env = math.inf, []
            for v in trace:
                if v is not None and v < best:
                    best = v
                env.append(best)
            series[f"restart {a.get('index', len(series))}"] = (
                list(range(len(env))), env,
            )
    out = [t.render()]
    if series:
        out.append(line_plot(
            series, width=60, height=14,
            x_label="iteration", y_label="best F_G so far",
        ))
    return out


def render_report(data: TraceData, *, slowest: int = 10) -> str:
    """Render a full text report of one parsed trace."""
    sections: List[str] = []
    m = data.manifest
    if m is not None:
        sections.append(
            "run manifest:\n"
            f"  command:  {m.command} {' '.join(m.argv)}\n"
            f"  seed={m.seed}  engine={m.engine}  "
            f"workers={m.workers or 'default'} (resolved {m.workers_resolved})\n"
            f"  repro {m.package_version} / python {m.python_version} / "
            f"{m.platform}"
        )
    if data.spans:
        sections.append(_phase_breakdown(data.spans).render())
        sections.append(_slowest_spans(data.spans, slowest).render())
    else:
        sections.append("(no spans recorded)")
    for table in (_cache_section(data.counters),
                  _engine_section(data.counters)):
        if table is not None:
            sections.append(table.render())
    sections.extend(_search_section(data))
    retries = data.events_named("parallel.job.retry")
    fallbacks = data.events_named("parallel.fallback")
    if retries or fallbacks:
        sections.append(
            f"execution-layer recoveries: {len(retries)} job retries, "
            f"{len(fallbacks)} pool fallbacks"
        )
    if data.corrupt_lines:
        sections.append(
            f"warning: {data.corrupt_lines} corrupt line(s) skipped "
            "(torn write?)"
        )
    return "\n\n".join(sections)


def _jsonsafe(value: Any) -> Any:
    """``value`` with NaN/Inf floats replaced by ``None``, recursively.

    ``repro report --json`` promises strictly valid JSON; Python's
    ``json`` would happily emit bare ``NaN`` tokens that other parsers
    reject.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonsafe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonsafe(v) for v in value]
    return value


REPORT_JSON_SCHEMA = "repro.report/1"


def report_json(data: TraceData, *, slowest: int = 10) -> Dict[str, Any]:
    """The trace report as one machine-readable, strictly-JSON-safe dict.

    Mirrors :func:`render_report` section by section; ``schema``
    identifies the payload shape so downstream consumers can reject
    versions they do not understand.
    """
    m = data.manifest
    ranked = sorted(data.spans, key=lambda sp: -(sp.duration or 0.0))[:slowest]
    restarts = [dict(ev.attrs) for ev in data.events_named("search.restart")]
    payload: Dict[str, Any] = {
        "schema": REPORT_JSON_SCHEMA,
        "manifest": m.to_record() if m is not None else None,
        "phases": _phase_stats(data.spans),
        "slowest_spans": [
            {"span": sp.name, "duration_s": sp.duration or 0.0,
             "attrs": dict(sp.attrs)}
            for sp in ranked
        ],
        "caches": _cache_stats(data.counters),
        "engines": _engine_stats(data.counters),
        "search_restarts": restarts,
        "recoveries": {
            "job_retries": len(data.events_named("parallel.job.retry")),
            "pool_fallbacks": len(data.events_named("parallel.fallback")),
        },
        "metrics": data.metrics,
        "corrupt_lines": data.corrupt_lines,
    }
    return _jsonsafe(payload)


def report_file(path: PathLike, *, slowest: int = 10) -> str:
    """Load ``path`` and render its report (the ``repro report`` body)."""
    return render_report(load_trace(path), slowest=slowest)


__all__ = ["TraceData", "load_trace", "render_report", "report_json",
           "REPORT_JSON_SCHEMA", "report_file"]
