"""``repro report`` — summarize a JSONL trace file.

Reads a trace produced by ``repro --trace PATH ...`` (or any
:func:`repro.obs.run.trace_run` stream) and renders, as plain text:

- the run manifest (command, seed, engine, workers, versions);
- a per-phase time breakdown — total and *self* time per span name,
  where self time subtracts child spans so nested phases don't double
  count;
- the slowest individual spans;
- cache hit/miss rates and engine counters from the final metrics
  snapshot;
- the search convergence table and an ASCII trajectory plot built from
  the per-restart ``search.restart`` events.

Every section degrades gracefully: a trace with no search events simply
has no convergence section, and so on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.manifest import RunManifest
from repro.obs.trace import TraceEvent
from repro.util.asciiplot import line_plot
from repro.util.reporting import Table

PathLike = Union[str, Path]


@dataclass
class TraceData:
    """A parsed trace file: manifest, spans, events, metrics snapshots."""

    manifest: Optional[RunManifest] = None
    spans: List[TraceEvent] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def events_named(self, name: str) -> List[TraceEvent]:
        """All point events with the given name, in file order."""
        return [e for e in self.events if e.name == name]

    @property
    def counters(self) -> Dict[str, float]:
        """The counters section of the last metrics snapshot (may be empty)."""
        return self.metrics.get("counters", {})


def load_trace(path: PathLike) -> TraceData:
    """Parse a JSONL trace file into a :class:`TraceData`.

    Unknown record types are skipped (forward compatibility); when a file
    carries several metrics snapshots the last one wins.
    """
    data = TraceData()
    with open(Path(path)) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            rtype = record.get("type")
            if rtype == "manifest":
                data.manifest = RunManifest.from_record(record)
            elif rtype == "span":
                data.spans.append(TraceEvent.from_record(record))
            elif rtype == "event":
                data.events.append(TraceEvent.from_record(record))
            elif rtype == "metrics":
                data.metrics = record.get("metrics", {})
    return data


def _phase_breakdown(spans: List[TraceEvent]) -> Table:
    """Per-span-name totals with self time (children subtracted)."""
    child_time: Dict[int, float] = {}
    for sp in spans:
        if sp.parent_id is not None and sp.duration is not None:
            child_time[sp.parent_id] = (child_time.get(sp.parent_id, 0.0)
                                        + sp.duration)
    totals: Dict[str, List[float]] = {}  # name -> [count, total, self]
    for sp in spans:
        dur = sp.duration or 0.0
        self_time = max(0.0, dur - child_time.get(sp.span_id or -1, 0.0))
        row = totals.setdefault(sp.name, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += dur
        row[2] += self_time
    traced = sum(sp.duration or 0.0 for sp in spans if sp.parent_id is None)
    t = Table(["phase", "count", "total s", "self s", "% of run"],
              title="per-phase time breakdown")
    for name, (count, total, self_time) in sorted(
            totals.items(), key=lambda kv: -kv[1][2]):
        share = 100.0 * self_time / traced if traced > 0 else math.nan
        t.add_row([name, count, total, self_time, share], digits=3)
    return t


def _slowest_spans(spans: List[TraceEvent], limit: int) -> Table:
    """The ``limit`` longest individual spans with a context hint."""
    t = Table(["span", "duration s", "context"],
              title=f"slowest spans (top {limit})")
    ranked = sorted(spans, key=lambda sp: -(sp.duration or 0.0))[:limit]
    for sp in ranked:
        hint = ", ".join(
            f"{k}={v}" for k, v in list(sp.attrs.items())[:3]
            if not isinstance(v, (list, dict))
        )
        t.add_row([sp.name, sp.duration or 0.0, hint or "-"], digits=4)
    return t


def _cache_section(counters: Dict[str, float]) -> Optional[Table]:
    """Hit/miss/eviction rates per cache, from ``cache.*`` counters."""
    caches: Dict[str, Dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith("cache."):
            continue
        _, cache_name, kind = name.split(".", 2)
        caches.setdefault(cache_name, {})[kind] = value
    if not caches:
        return None
    t = Table(["cache", "hits", "misses", "evictions", "hit rate"],
              title="distance/routing-table caches")
    for cache_name, vals in sorted(caches.items()):
        hits = vals.get("hits", 0.0)
        misses = vals.get("misses", 0.0)
        rate = hits / (hits + misses) if hits + misses else math.nan
        t.add_row([cache_name, hits, misses, vals.get("evictions", 0.0), rate],
                  digits=3)
    return t


def _engine_section(counters: Dict[str, float]) -> Optional[Table]:
    """Engine counter totals, one row per engine, from ``engine.*``."""
    engines: Dict[str, Dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith("engine."):
            continue
        _, engine_name, kind = name.split(".", 2)
        engines.setdefault(engine_name, {})[kind] = value
    if not engines:
        return None
    cols = ["engine", "runs", "cycles exec", "cycles skipped",
            "arb conflicts", "conflict rate"]
    t = Table(cols, title="simulation engines")
    for engine_name, vals in sorted(engines.items()):
        requests = vals.get("arb_requests", 0.0)
        conflicts = vals.get("arb_conflicts", 0.0)
        t.add_row([
            engine_name,
            vals.get("runs", 0.0),
            vals.get("cycles_executed", 0.0),
            vals.get("cycles_skipped", 0.0),
            conflicts,
            conflicts / requests if requests else math.nan,
        ], digits=3)
    return t


def _search_section(data: TraceData, max_series: int = 6) -> List[str]:
    """Convergence table + trajectory plot from ``search.restart`` events."""
    restarts = data.events_named("search.restart")
    if not restarts:
        return []
    t = Table(["restart", "method", "iters", "evals", "best F_G",
               "accepted", "uphill", "tabu masked"],
              title="search convergence (per restart)")
    series: Dict[str, Any] = {}
    for ev in restarts:
        a = ev.attrs
        t.add_row([
            a.get("index", "-"), a.get("method", "-"),
            a.get("iterations", "-"), a.get("evaluations", "-"),
            a.get("best_value", math.nan), a.get("accepted", "-"),
            a.get("uphill", "-"), a.get("tabu_masked", "-"),
        ], digits=4)
        trace = a.get("trace") or []
        if trace and len(series) < max_series:
            # Best-so-far envelope: the convergence view of the raw F series.
            best, env = math.inf, []
            for v in trace:
                if v is not None and v < best:
                    best = v
                env.append(best)
            series[f"restart {a.get('index', len(series))}"] = (
                list(range(len(env))), env,
            )
    out = [t.render()]
    if series:
        out.append(line_plot(
            series, width=60, height=14,
            x_label="iteration", y_label="best F_G so far",
        ))
    return out


def render_report(data: TraceData, *, slowest: int = 10) -> str:
    """Render a full text report of one parsed trace."""
    sections: List[str] = []
    m = data.manifest
    if m is not None:
        sections.append(
            "run manifest:\n"
            f"  command:  {m.command} {' '.join(m.argv)}\n"
            f"  seed={m.seed}  engine={m.engine}  "
            f"workers={m.workers or 'default'} (resolved {m.workers_resolved})\n"
            f"  repro {m.package_version} / python {m.python_version} / "
            f"{m.platform}"
        )
    if data.spans:
        sections.append(_phase_breakdown(data.spans).render())
        sections.append(_slowest_spans(data.spans, slowest).render())
    else:
        sections.append("(no spans recorded)")
    for table in (_cache_section(data.counters),
                  _engine_section(data.counters)):
        if table is not None:
            sections.append(table.render())
    sections.extend(_search_section(data))
    retries = data.events_named("parallel.job.retry")
    fallbacks = data.events_named("parallel.fallback")
    if retries or fallbacks:
        sections.append(
            f"execution-layer recoveries: {len(retries)} job retries, "
            f"{len(fallbacks)} pool fallbacks"
        )
    return "\n\n".join(sections)


def report_file(path: PathLike, *, slowest: int = 10) -> str:
    """Load ``path`` and render its report (the ``repro report`` body)."""
    return render_report(load_trace(path), slowest=slowest)


__all__ = ["TraceData", "load_trace", "render_report", "report_file"]
