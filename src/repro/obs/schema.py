"""The JSONL trace-file schema and its validator.

A trace file is a sequence of JSON lines, each a record of one of four
types:

- ``manifest`` — run identity (first record of a file, at most one);
- ``span``     — a closed interval: name, ids, monotonic start/end/duration;
- ``event``    — a named point in time;
- ``metrics``  — a registry snapshot (counters/gauges/histograms).

Validation here is deliberately dependency-free (no jsonschema in the
image): :func:`validate_record` checks required fields and types,
:func:`validate_trace_file` streams a file and returns per-type counts.
CI's trace-smoke step and the round-trip tests both go through these.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

PathLike = Union[str, Path]

#: Record types a trace file may contain.
RECORD_TYPES = ("manifest", "span", "event", "metrics")

_NUMERIC = (int, float)


class SchemaError(ValueError):
    """A trace record (or file) violates the event schema."""


def _require(record: Dict[str, Any], name: str, types, context: str) -> Any:
    if name not in record:
        raise SchemaError(f"{context}: missing field {name!r}")
    value = record[name]
    if types is not None and not isinstance(value, types):
        raise SchemaError(
            f"{context}: field {name!r} has type {type(value).__name__}, "
            f"expected {types}"
        )
    return value


def _optional(record: Dict[str, Any], name: str, types, context: str) -> Any:
    value = record.get(name)
    if value is not None and not isinstance(value, types):
        raise SchemaError(
            f"{context}: field {name!r} has type {type(value).__name__}, "
            f"expected {types} or null"
        )
    return value


def validate_record(record: Dict[str, Any]) -> str:
    """Validate one trace record; returns its type or raises :class:`SchemaError`."""
    if not isinstance(record, dict):
        raise SchemaError(f"record is {type(record).__name__}, expected object")
    rtype = record.get("type")
    if rtype not in RECORD_TYPES:
        raise SchemaError(
            f"unknown record type {rtype!r}; expected one of {RECORD_TYPES}"
        )
    ctx = f"{rtype} record"
    if rtype == "manifest":
        _require(record, "command", str, ctx)
        _require(record, "argv", list, ctx)
        _require(record, "package_version", str, ctx)
        _require(record, "python_version", str, ctx)
        _require(record, "created_unix", _NUMERIC, ctx)
        _require(record, "workers_resolved", int, ctx)
        _optional(record, "seed", int, ctx)
        _optional(record, "engine", str, ctx)
        _optional(record, "extra", dict, ctx)
    elif rtype == "span":
        _require(record, "name", str, ctx)
        _require(record, "span_id", int, ctx)
        _optional(record, "parent_id", int, ctx)
        t0 = _require(record, "t_start", _NUMERIC, ctx)
        t1 = _require(record, "t_end", _NUMERIC, ctx)
        dur = _require(record, "duration", _NUMERIC, ctx)
        _require(record, "attrs", dict, ctx)
        if dur < 0:
            raise SchemaError(f"{ctx}: negative duration {dur}")
        if t1 < t0:
            raise SchemaError(f"{ctx}: t_end {t1} before t_start {t0}")
    elif rtype == "event":
        _require(record, "name", str, ctx)
        _require(record, "t", _NUMERIC, ctx)
        _optional(record, "span_id", int, ctx)
        _require(record, "attrs", dict, ctx)
    else:  # metrics
        _require(record, "t", _NUMERIC, ctx)
        metrics = _require(record, "metrics", dict, ctx)
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics or not isinstance(metrics[section], dict):
                raise SchemaError(
                    f"{ctx}: metrics.{section} missing or not an object"
                )
    return rtype


def validate_trace_file(path: PathLike) -> Dict[str, int]:
    """Validate a whole JSONL trace file; returns per-type record counts.

    Raises :class:`SchemaError` on the first invalid line, on a manifest
    appearing anywhere but first, or on an empty file.
    """
    counts = {rtype: 0 for rtype in RECORD_TYPES}
    total = 0
    with open(Path(path)) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: invalid JSON: {exc}") from None
            try:
                rtype = validate_record(record)
            except SchemaError as exc:
                raise SchemaError(f"{path}:{lineno}: {exc}") from None
            if rtype == "manifest" and total > 0:
                raise SchemaError(
                    f"{path}:{lineno}: manifest must be the first record"
                )
            counts[rtype] += 1
            total += 1
    if total == 0:
        raise SchemaError(f"{path}: empty trace file")
    return counts


__all__ = ["RECORD_TYPES", "SchemaError", "validate_record",
           "validate_trace_file"]
