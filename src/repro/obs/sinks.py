"""Pluggable sinks for trace records.

A sink receives the plain-dict records produced by
:class:`repro.obs.trace.Tracer` (and the manifest/metrics records written
by :func:`repro.obs.run.trace_run`).  Two implementations cover the two
real uses: :class:`MemorySink` for tests and :class:`JsonlSink` for runs.

JSONL hygiene: floating telemetry values can legitimately be NaN (e.g. an
average latency with zero delivered messages).  ``json.dumps`` would emit
the non-standard ``NaN`` token, breaking strict downstream parsers, so
:class:`JsonlSink` sanitizes non-finite floats to ``null`` before
writing.  This only affects the *recorded* form — telemetry never feeds
back into computation.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Protocol, Union

PathLike = Union[str, Path]


class Sink(Protocol):
    """What a tracer needs from a sink: ``emit`` plus ``close``."""

    def emit(self, record: Dict[str, Any]) -> None:
        """Receive one JSON-ready trace record."""
        ...

    def close(self) -> None:
        """Flush and release any underlying resources."""
        ...


class MemorySink:
    """Collects records in a list — the test and introspection sink."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.closed = False

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one record to :attr:`records`."""
        self.records.append(record)

    def close(self) -> None:
        """Mark the sink closed (records stay readable)."""
        self.closed = True

    def by_type(self, rtype: str) -> List[Dict[str, Any]]:
        """All collected records with ``record["type"] == rtype``."""
        return [r for r in self.records if r.get("type") == rtype]

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        """All collected span/event records with the given name."""
        return [r for r in self.records if r.get("name") == name]


def sanitize(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (JSON-safe).

    Tuples become lists and dict keys are stringified, matching what a
    JSON round-trip would produce anyway; everything else passes through.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(v) for v in value]
    return value


class JsonlSink:
    """Appends each record as one strict-JSON line to a file.

    The file (and its parent directories) are created on construction.
    Each record is flushed as it is written, and writes are guarded by
    the opening process id: a ``fork``ed child inherits both the open
    handle *and* any buffered bytes, so without the flush-per-record +
    PID guard a pool worker would interleave its own records into the
    parent's trace and re-flush the inherited buffer on exit,
    duplicating everything written before the fork.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[Any] = open(self.path, "w")
        self._pid = os.getpid()

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one record as a JSON line (non-finite floats → null)."""
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        if os.getpid() != self._pid:
            return
        self._fh.write(json.dumps(sanitize(record), allow_nan=False) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent).

        In a forked child the inherited handle is dropped without
        flushing — the file belongs to the parent.
        """
        if self._fh is not None:
            if os.getpid() == self._pid:
                self._fh.flush()
            self._fh.close()
            self._fh = None


__all__ = ["Sink", "MemorySink", "JsonlSink", "sanitize"]
