"""Command-line interface.

``python -m repro <command>``:

- ``topology`` — generate a network (random irregular, four-rings, mesh,
  torus, hypercube), describe it, optionally save it as JSON;
- ``schedule`` — run the communication-aware scheduler on a topology
  (generated or loaded) and print the partition, quality scores and the
  comparison against random mappings;
- ``simulate``  — sweep one or more mappings through the wormhole
  simulator and print latency/throughput tables;
- ``figures``   — regenerate the paper's Figures 1–6 (text renderings);
- ``report``    — summarize a JSONL trace produced with ``--trace``.

``--trace PATH`` (global, also accepted after any execution subcommand)
records a structured JSONL trace of the run — manifest, nested spans,
events and a final metrics snapshot — without perturbing any result
(telemetry is inert by contract; see DESIGN.md).

Every command is a thin shell over the library; anything it prints can be
reproduced with a few lines of Python (see examples/).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import serialize
from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.cache import cached_routing_table, configure_cache
from repro.parallel import WorkersLike
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ENGINE_NAMES
from repro.simulation.sweep import make_load_points, run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.designed import (
    four_rings_topology,
    hypercube_topology,
    mesh_topology,
    torus_topology,
)
from repro.topology.graph import Topology
from repro.topology.irregular import random_irregular_topology
from repro.util.reporting import Table


def _workers_arg(value: str) -> WorkersLike:
    """Parse ``--workers``: a worker count, or ``auto`` for CPU detection."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = auto), got {count}"
        )
    return count


def _apply_cache_flag(args: argparse.Namespace) -> None:
    if getattr(args, "no_cache", False):
        configure_cache(enabled=False)


def _build_topology(args: argparse.Namespace) -> Topology:
    if getattr(args, "load", None):
        obj = serialize.load(args.load)
        if not isinstance(obj, Topology):
            raise SystemExit(f"{args.load} does not contain a topology")
        return obj
    kind = args.kind
    if kind == "irregular":
        return random_irregular_topology(args.switches, seed=args.seed)
    if kind == "four-rings":
        return four_rings_topology()
    if kind == "mesh":
        side = int(round(args.switches ** 0.5))
        return mesh_topology(side, side)
    if kind == "torus":
        side = int(round(args.switches ** 0.5))
        return torus_topology(side, side)
    if kind == "hypercube":
        dim = max(1, args.switches.bit_length() - 1)
        return hypercube_topology(dim)
    raise SystemExit(f"unknown topology kind {kind!r}")


def cmd_topology(args: argparse.Namespace) -> int:
    """Generate/describe a network; optionally save it as JSON."""
    topo = _build_topology(args)
    print(f"name:            {topo.name}")
    print(f"switches:        {topo.num_switches}")
    print(f"hosts:           {topo.num_hosts} ({topo.hosts_per_switch}/switch)")
    print(f"links:           {topo.num_links}")
    print(f"diameter:        {topo.diameter()}")
    degs = [topo.degree(s) for s in range(topo.num_switches)]
    print(f"degree (min/max): {min(degs)}/{max(degs)}")
    if args.save:
        serialize.save(topo, args.save)
        print(f"saved to {args.save}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    """Run the communication-aware scheduler and print the partition."""
    from repro.search.tabu import TabuSearch

    _apply_cache_flag(args)
    topo = _build_topology(args)
    if topo.num_switches % args.clusters != 0:
        raise SystemExit(
            f"{args.clusters} clusters do not evenly divide "
            f"{topo.num_switches} switches"
        )
    per_cluster = (topo.num_switches // args.clusters) * topo.hosts_per_switch
    workload = Workload.uniform(args.clusters, per_cluster)
    scheduler = CommunicationAwareScheduler(
        topo, search=TabuSearch(workers=args.workers)
    )
    result = scheduler.schedule(workload, seed=args.seed)

    print(f"topology: {topo.name} ({topo.num_switches} switches)")
    print(f"workload: {workload}")
    print("\nscheduled partition:")
    for i, members in enumerate(result.partition.clusters()):
        print(f"  cluster {i}: ({','.join(map(str, members))})")
    print(f"\nF_G={result.f_g:.4f}  D_G={result.d_g:.4f}  C_c={result.c_c:.4f}")

    t = Table(["mapping", "F_G", "C_c"], title="\nvs random mappings:")
    t.add_row(["scheduled", result.f_g, result.c_c])
    for s in range(args.randoms):
        r = scheduler.random_schedule(workload, seed=1000 + s)
        t.add_row([f"random-{s}", r.f_g, r.c_c])
    print(t.render())
    if args.save:
        serialize.save(result.partition, args.save)
        print(f"\npartition saved to {args.save}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Sweep mappings through the wormhole simulator."""
    _apply_cache_flag(args)
    topo = _build_topology(args)
    per_cluster = (topo.num_switches // args.clusters) * topo.hosts_per_switch
    workload = Workload.uniform(args.clusters, per_cluster)
    scheduler = CommunicationAwareScheduler(topo)
    rt = cached_routing_table(scheduler.routing)
    config = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        seed=args.seed, engine=args.engine,
    )
    rates = make_load_points(args.max_rate, n=args.points)

    mappings = {"scheduled": scheduler.schedule(workload, seed=args.seed)}
    for s in range(args.randoms):
        mappings[f"random-{s}"] = scheduler.random_schedule(
            workload, seed=2000 + s
        )

    t = Table(
        ["mapping", "C_c"]
        + [f"S{i+1} acc" for i in range(len(rates))]
        + [f"S{i+1} lat" for i in range(len(rates))],
        title=f"load sweep on {topo.name} "
              f"(rates {rates[0]:.4f}..{rates[-1]:.4f} msgs/host/cycle):",
    )
    for name, res in mappings.items():
        points = run_load_sweep(rt, IntraClusterTraffic(res.mapping), rates,
                                config, workers=args.workers)
        t.add_row(
            [name, res.c_c]
            + [p.result.accepted_flits_per_switch_cycle for p in points]
            + [p.result.avg_latency for p in points],
            digits=3,
        )
    print(t.render())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Print the classical structural metrics of a topology."""
    from repro.topology import metrics as tmetrics

    topo = _build_topology(args)
    s = tmetrics.summary(topo)
    print(f"topology:          {topo.name}")
    print(f"switches / links:  {s['switches']} / {s['links']}")
    print(f"diameter:          {s['diameter']}")
    print(f"average distance:  {s['average_distance']:.3f}")
    deg = s["degree"]
    print(f"degree:            min {deg['min']:.0f} / mean {deg['mean']:.2f} "
          f"/ max {deg['max']:.0f}")
    exact = "exact" if s["bisection_exact"] else "sampled upper bound"
    print(f"bisection width:   {s['bisection_width']} ({exact})")
    print(f"edge connectivity: {s['edge_connectivity']}")
    print(f"path diversity:    {s['path_diversity']:.3f} "
          "(mean hops/resistance; 1 = tree-like)")
    return 0


def cmd_failures(args: argparse.Namespace) -> int:
    """Run the fault-injection study (single faults or sampled k-fault)."""
    from repro.core.mapping import Workload
    from repro.experiments.common import ExperimentSetup
    from repro.experiments.failures import (
        render_fault_study,
        run_fault_study,
    )
    from repro.faults.model import (
        FaultScenario,
        sample_fault_scenarios,
        single_link_scenarios,
        single_switch_scenarios,
    )

    _apply_cache_flag(args)
    topo = _build_topology(args)
    per_cluster = (topo.num_switches // args.clusters) * topo.hosts_per_switch
    scheduler = CommunicationAwareScheduler(topo)
    setup = ExperimentSetup(
        topology=topo,
        scheduler=scheduler,
        workload=Workload.uniform(args.clusters, per_cluster),
        routing_table=RoutingTable(scheduler.routing),
        seed=args.seed,
    )
    if args.faults <= 1:
        scenarios = single_link_scenarios(topo)
        if args.include_switch_faults:
            scenarios += single_switch_scenarios(topo)
    else:
        scenarios = sample_fault_scenarios(
            topo, num_faults=args.faults, count=args.samples,
            seed=args.seed, include_switches=args.include_switch_faults,
        )
    if args.limit:
        scenarios = scenarios[:args.limit]
    res = run_fault_study(setup, scenarios, seed=1, workers=args.workers,
                          checkpoint_path=args.resume)
    print(render_fault_study(res))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Summarize a JSONL trace file (``repro report PATH``)."""
    from repro.obs.report import report_file

    try:
        print(report_file(args.trace_file, slowest=args.slowest))
    except FileNotFoundError:
        raise SystemExit(f"no trace file at {args.trace_file}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate the requested paper figures as text renderings."""
    from repro.experiments import (
        render_fig1, render_fig2, render_fig3, render_fig4, render_fig5,
        render_fig6, run_fig1, run_fig2, run_fig3, run_fig4, run_fig5,
        run_fig6,
    )

    _apply_cache_flag(args)
    config = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure, seed=7,
        engine=args.engine,
    )
    wanted = set(args.fig) if args.fig else {1, 2, 3, 4, 5, 6}
    fig3_cache = None
    if 1 in wanted:
        print(render_fig1(run_fig1()), "\n")
    if 2 in wanted:
        print(render_fig2(run_fig2()), "\n")
    if 3 in wanted or 6 in wanted:
        fig3_cache = run_fig3(num_random=args.randoms, config=config,
                              workers=args.workers)
    if 3 in wanted:
        print(render_fig3(fig3_cache), "\n")
    if 4 in wanted:
        print(render_fig4(run_fig4()), "\n")
    if 5 in wanted:
        print(render_fig5(run_fig5(num_random=3, config=config,
                                   workers=args.workers)), "\n")
    if 6 in wanted:
        print(render_fig6(run_fig6(sim_result=fig3_cache)), "\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-aware task scheduling (Orduña et al., "
                    "ICPP 2000) — reproduction toolkit",
    )
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a structured JSONL trace of the run "
                             "(spans, events, metrics; inspect it with "
                             "'repro report PATH')")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_topology_args(p, with_load=True):
        p.add_argument("--kind", default="irregular",
                       choices=["irregular", "four-rings", "mesh", "torus",
                                "hypercube"])
        p.add_argument("--switches", type=int, default=16)
        p.add_argument("--seed", type=int, default=42)
        if with_load:
            p.add_argument("--load", help="load a topology JSON instead")

    def add_exec_args(p):
        p.add_argument("--workers", type=_workers_arg, default=None,
                       metavar="N|auto",
                       help="process-pool width for restarts/sweep points "
                            "(default: $REPRO_WORKERS or serial; results "
                            "are identical either way)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the distance/routing-table cache")
        # SUPPRESS: only override the root-level --trace when actually
        # given after the subcommand, so both positions work.
        p.add_argument("--trace", metavar="PATH", default=argparse.SUPPRESS,
                       help="write a structured JSONL trace of the run")

    p = sub.add_parser("topology", help="generate/describe a network")
    add_topology_args(p)
    p.add_argument("--save", help="write the topology as JSON")
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser("schedule", help="run the communication-aware scheduler")
    add_topology_args(p)
    add_exec_args(p)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--randoms", type=int, default=5,
                   help="random mappings to compare against")
    p.add_argument("--save", help="write the partition as JSON")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("simulate", help="sweep mappings through the simulator")
    add_topology_args(p)
    add_exec_args(p)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--randoms", type=int, default=2)
    p.add_argument("--points", type=int, default=5)
    p.add_argument("--max-rate", type=float, default=0.02)
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--measure", type=int, default=1200)
    p.add_argument("--engine", default="fast",
                   choices=list(ENGINE_NAMES),
                   help="simulator engine (bit-identical; 'fast' is the "
                        "struct-of-arrays kernel, 'reference' the "
                        "per-message model)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("metrics", help="classical topology metrics")
    add_topology_args(p)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("failures",
                       help="fault-injection study (links/switches, "
                            "repair vs reschedule)")
    add_topology_args(p)
    add_exec_args(p)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--limit", type=int, default=0,
                   help="only the first N scenarios (0 = all)")
    p.add_argument("--faults", type=int, default=1, metavar="K",
                   help="faults per scenario: 1 = exhaustive single faults, "
                        ">=2 = sampled k-fault scenarios (default: 1)")
    p.add_argument("--samples", type=int, default=10,
                   help="scenarios to sample when --faults >= 2 (default: 10)")
    p.add_argument("--include-switch-faults", action="store_true",
                   help="also fail whole switches, not just links")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="checkpoint file: record completed scenarios and "
                        "resume an interrupted study bit-identically")
    p.set_defaults(func=cmd_failures)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    add_exec_args(p)
    p.add_argument("--fig", type=int, action="append",
                   choices=[1, 2, 3, 4, 5, 6],
                   help="figure number (repeatable; default: all)")
    p.add_argument("--randoms", type=int, default=9)
    p.add_argument("--warmup", type=int, default=400)
    p.add_argument("--measure", type=int, default=1500)
    p.add_argument("--engine", default="fast",
                   choices=list(ENGINE_NAMES),
                   help="simulator engine for the fig3/fig5 sweeps "
                        "(results are engine-independent)")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("report", help="summarize a JSONL trace file")
    p.add_argument("trace_file", help="trace written by --trace PATH")
    p.add_argument("--slowest", type=int, default=10,
                   help="how many of the slowest spans to list (default: 10)")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    With ``--trace PATH`` the whole command executes inside
    :func:`repro.obs.run.trace_run`: the manifest (command, seed, engine,
    workers, versions) is the file's first record and the final metrics
    snapshot its last.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path and args.command != "report":
        from repro.obs import collect_manifest, trace_run

        manifest = collect_manifest(
            args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            seed=getattr(args, "seed", None),
            engine=getattr(args, "engine", None),
            workers=getattr(args, "workers", None),
        )
        with trace_run(trace_path, manifest=manifest):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
