"""Command-line interface.

``python -m repro <command>``:

- ``topology`` — generate a network (random irregular, four-rings, mesh,
  torus, hypercube), describe it, optionally save it as JSON;
- ``schedule`` — run the communication-aware scheduler on a topology
  (generated or loaded) and print the partition, quality scores and the
  comparison against random mappings;
- ``simulate``  — sweep one or more mappings through the wormhole
  simulator and print latency/throughput tables;
- ``figures``   — regenerate the paper's Figures 1–6 (text renderings);
- ``report``    — summarize a JSONL trace produced with ``--trace``
  (``--json`` for the machine-readable form), or run a declarative
  variation study (``--study spec.json``) and render it as comparative
  markdown / self-contained HTML — optionally serving the result on the
  HTTP operator console (``--serve``);
- ``serve``     — run the resident scheduling service (persistent worker
  pool, micro-batching, result store; ``--wal``/``--deadline``/
  ``--heartbeat`` enable the self-healing tier; ``--console-port``
  adds the HTTP operator console: /healthz, /metrics, /status,
  /report);
- ``submit``    — send one scheduling request to a running service;
- ``status``    — print a running service's counters;
- ``chaos``     — run the deterministic fault-injection scenarios against
  a freshly started service and report the invariant verdicts.

``--trace PATH`` (global, also accepted after any execution subcommand)
records a structured JSONL trace of the run — manifest, nested spans,
events and a final metrics snapshot — without perturbing any result
(telemetry is inert by contract; see DESIGN.md).

Every command is a thin shell over the library; anything it prints can be
reproduced with a few lines of Python (see examples/).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import serialize
from repro.core.mapping import Workload
from repro.core.scheduler import CommunicationAwareScheduler
from repro.distance.cache import cached_routing_table, configure_cache
from repro.parallel import WorkersLike
from repro.routing.tables import RoutingTable
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ENGINE_NAMES
from repro.simulation.sweep import make_load_points, run_load_sweep
from repro.simulation.traffic import IntraClusterTraffic
from repro.topology.designed import (
    four_rings_topology,
    hypercube_topology,
    mesh_topology,
    torus_topology,
)
from repro.topology.graph import Topology
from repro.topology.irregular import random_irregular_topology
from repro.util.reporting import Table


def _workers_arg(value: str) -> WorkersLike:
    """Parse ``--workers``: a worker count, or ``auto`` for CPU detection."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = auto), got {count}"
        )
    return count


def _apply_cache_flag(args: argparse.Namespace) -> None:
    if getattr(args, "no_cache", False):
        configure_cache(enabled=False)


def _build_topology(args: argparse.Namespace) -> Topology:
    if getattr(args, "load", None):
        obj = serialize.load(args.load)
        if not isinstance(obj, Topology):
            raise SystemExit(f"{args.load} does not contain a topology")
        return obj
    kind = args.kind
    if kind == "irregular":
        return random_irregular_topology(args.switches, seed=args.seed)
    if kind == "four-rings":
        return four_rings_topology()
    if kind == "mesh":
        side = int(round(args.switches ** 0.5))
        return mesh_topology(side, side)
    if kind == "torus":
        side = int(round(args.switches ** 0.5))
        return torus_topology(side, side)
    if kind == "hypercube":
        dim = max(1, args.switches.bit_length() - 1)
        return hypercube_topology(dim)
    raise SystemExit(f"unknown topology kind {kind!r}")


def cmd_topology(args: argparse.Namespace) -> int:
    """Generate/describe a network; optionally save it as JSON."""
    topo = _build_topology(args)
    print(f"name:            {topo.name}")
    print(f"switches:        {topo.num_switches}")
    print(f"hosts:           {topo.num_hosts} ({topo.hosts_per_switch}/switch)")
    print(f"links:           {topo.num_links}")
    print(f"diameter:        {topo.diameter()}")
    degs = [topo.degree(s) for s in range(topo.num_switches)]
    print(f"degree (min/max): {min(degs)}/{max(degs)}")
    if args.save:
        serialize.save(topo, args.save)
        print(f"saved to {args.save}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    """Run the communication-aware scheduler and print the partition."""
    from repro.search.tabu import TabuSearch

    _apply_cache_flag(args)
    topo = _build_topology(args)
    if topo.num_switches % args.clusters != 0:
        raise SystemExit(
            f"{args.clusters} clusters do not evenly divide "
            f"{topo.num_switches} switches"
        )
    per_cluster = (topo.num_switches // args.clusters) * topo.hosts_per_switch
    workload = Workload.uniform(args.clusters, per_cluster)
    scheduler = CommunicationAwareScheduler(
        topo, search=TabuSearch(workers=args.workers)
    )
    result = scheduler.schedule(workload, seed=args.seed)

    print(f"topology: {topo.name} ({topo.num_switches} switches)")
    print(f"workload: {workload}")
    print("\nscheduled partition:")
    for i, members in enumerate(result.partition.clusters()):
        print(f"  cluster {i}: ({','.join(map(str, members))})")
    print(f"\nF_G={result.f_g:.4f}  D_G={result.d_g:.4f}  C_c={result.c_c:.4f}")

    t = Table(["mapping", "F_G", "C_c"], title="\nvs random mappings:")
    t.add_row(["scheduled", result.f_g, result.c_c])
    for s in range(args.randoms):
        r = scheduler.random_schedule(workload, seed=1000 + s)
        t.add_row([f"random-{s}", r.f_g, r.c_c])
    print(t.render())
    if args.save:
        serialize.save(result.partition, args.save)
        print(f"\npartition saved to {args.save}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Sweep mappings through the wormhole simulator."""
    _apply_cache_flag(args)
    topo = _build_topology(args)
    per_cluster = (topo.num_switches // args.clusters) * topo.hosts_per_switch
    workload = Workload.uniform(args.clusters, per_cluster)
    scheduler = CommunicationAwareScheduler(topo)
    rt = cached_routing_table(scheduler.routing)
    config = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure,
        seed=args.seed, engine=args.engine,
    )
    rates = make_load_points(args.max_rate, n=args.points)

    mappings = {"scheduled": scheduler.schedule(workload, seed=args.seed)}
    for s in range(args.randoms):
        mappings[f"random-{s}"] = scheduler.random_schedule(
            workload, seed=2000 + s
        )

    t = Table(
        ["mapping", "C_c"]
        + [f"S{i+1} acc" for i in range(len(rates))]
        + [f"S{i+1} lat" for i in range(len(rates))],
        title=f"load sweep on {topo.name} "
              f"(rates {rates[0]:.4f}..{rates[-1]:.4f} msgs/host/cycle):",
    )
    for name, res in mappings.items():
        points = run_load_sweep(rt, IntraClusterTraffic(res.mapping), rates,
                                config, workers=args.workers)
        t.add_row(
            [name, res.c_c]
            + [p.result.accepted_flits_per_switch_cycle for p in points]
            + [p.result.avg_latency for p in points],
            digits=3,
        )
    print(t.render())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Print the classical structural metrics of a topology."""
    from repro.topology import metrics as tmetrics

    topo = _build_topology(args)
    s = tmetrics.summary(topo)
    print(f"topology:          {topo.name}")
    print(f"switches / links:  {s['switches']} / {s['links']}")
    print(f"diameter:          {s['diameter']}")
    print(f"average distance:  {s['average_distance']:.3f}")
    deg = s["degree"]
    print(f"degree:            min {deg['min']:.0f} / mean {deg['mean']:.2f} "
          f"/ max {deg['max']:.0f}")
    exact = "exact" if s["bisection_exact"] else "sampled upper bound"
    print(f"bisection width:   {s['bisection_width']} ({exact})")
    print(f"edge connectivity: {s['edge_connectivity']}")
    print(f"path diversity:    {s['path_diversity']:.3f} "
          "(mean hops/resistance; 1 = tree-like)")
    return 0


def cmd_failures(args: argparse.Namespace) -> int:
    """Run the fault-injection study (single faults or sampled k-fault)."""
    from repro.core.mapping import Workload
    from repro.experiments.common import ExperimentSetup
    from repro.experiments.failures import (
        render_fault_study,
        run_fault_study,
    )
    from repro.faults.model import (
        FaultScenario,
        sample_fault_scenarios,
        single_link_scenarios,
        single_switch_scenarios,
    )

    _apply_cache_flag(args)
    topo = _build_topology(args)
    per_cluster = (topo.num_switches // args.clusters) * topo.hosts_per_switch
    scheduler = CommunicationAwareScheduler(topo)
    setup = ExperimentSetup(
        topology=topo,
        scheduler=scheduler,
        workload=Workload.uniform(args.clusters, per_cluster),
        routing_table=RoutingTable(scheduler.routing),
        seed=args.seed,
    )
    if args.faults <= 1:
        scenarios = single_link_scenarios(topo)
        if args.include_switch_faults:
            scenarios += single_switch_scenarios(topo)
    else:
        scenarios = sample_fault_scenarios(
            topo, num_faults=args.faults, count=args.samples,
            seed=args.seed, include_switches=args.include_switch_faults,
        )
    if args.limit:
        scenarios = scenarios[:args.limit]
    res = run_fault_study(setup, scenarios, seed=1, workers=args.workers,
                          checkpoint_path=args.resume)
    print(render_fault_study(res))
    if args.report:
        from pathlib import Path

        from repro.reporting import (
            records_from_fault_study,
            render_html,
            wrap_records,
        )

        result = wrap_records(
            records_from_fault_study(res),
            name=f"fault study ({topo.name})",
            switches=topo.num_switches,
        )
        Path(args.report).write_text(render_html(result))
        print(f"html report written to {args.report}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the scheduling service until interrupted (``repro serve``)."""
    from repro.service import AdmissionPolicy, ServiceConfig, run_service

    if args.wal and args.no_dedup:
        raise SystemExit("--wal requires deduplication; drop --no-dedup "
                         "(replay rides the store/in-flight dedup path)")
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        store_ttl=args.store_ttl if args.store_ttl > 0 else None,
        admission=AdmissionPolicy(max_switches=args.max_switches),
        batching=not args.no_batching,
        dedup=not args.no_dedup,
        request_deadline=args.deadline if args.deadline > 0 else None,
        max_redispatch=args.max_redispatch,
        heartbeat_interval=args.heartbeat if args.heartbeat > 0 else None,
        wal_path=args.wal,
        console_port=args.console_port,
    )
    return run_service(config)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos scenarios and report verdicts (``repro chaos``)."""
    import json as _json

    from repro.chaos import SCENARIOS, render_report, run_scenarios

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0
    try:
        results = run_scenarios(args.scenario or None, seed=args.seed,
                                workdir=args.workdir)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(_json.dumps([r.to_dict() for r in results], indent=2,
                          sort_keys=True))
    else:
        print(render_report(results))
    return 0 if all(r.invariant_ok for r in results) else 1


def _build_request(args: argparse.Namespace):
    """Assemble the ScheduleRequest for ``repro submit``."""
    from repro.service import ProtocolError, ScheduleRequest, SimulateSpec

    if getattr(args, "request", None):
        import json as _json
        from pathlib import Path

        payload = _json.loads(Path(args.request).read_text())
        try:
            return ScheduleRequest.from_dict(payload)
        except ProtocolError as exc:
            raise SystemExit(f"{args.request}: {exc}")
    topo = _build_topology(args)
    simulate = SimulateSpec() if args.simulate else None
    try:
        return ScheduleRequest.build(
            topo, clusters=args.clusters, method=args.method,
            seed=args.seed, priority=args.priority, simulate=simulate,
        )
    except ProtocolError as exc:
        raise SystemExit(str(exc))


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one request to a running service and print the reply."""
    import json as _json

    from repro.service import ServiceClient, ServiceError

    request = _build_request(args)
    try:
        with ServiceClient(args.host, args.port,
                           timeout=args.timeout) as client:
            reply = client.submit(request, wait=not args.no_wait)
    except ConnectionRefusedError:
        raise SystemExit(
            f"no service at {args.host}:{args.port} — start one with "
            "'repro serve'"
        )
    except ServiceError as exc:
        raise SystemExit(f"request refused: {exc}")
    if args.no_wait and "ticket" in reply:
        print(f"queued; poll with: repro status --host {args.host} "
              f"--port {args.port}")
        print(f"ticket: {reply['ticket']}")
        return 0
    result = reply["result"]
    served = reply.get("served", {})
    if args.json:
        print(_json.dumps(result, indent=2, sort_keys=True))
        return 0
    print(f"topology: {result['topology_name']}  method: {result['method']}  "
          f"seed: {result['seed']}")
    print(f"served:   {served.get('from', '?')}"
          + (f" (batch of {served['batch_size']})"
             if served.get("batch_size", 0) > 1 else ""))
    degraded = result.get("degraded")
    if degraded is not None:
        print(f"degraded: scenario {degraded['scenario']} — "
              f"{'connected' if degraded['connected'] else 'partitioned'}, "
              f"{len(degraded['placements'])} placed, "
              f"{len(degraded['unplaced'])} unplaced")
    else:
        partition = serialize.partition_from_dict(result["partition"])
        for i, members in enumerate(partition.clusters()):
            print(f"  cluster {i}: ({','.join(map(str, members))})")
        print(f"F_G={result['f_g']:.4f}  D_G={result['d_g']:.4f}  "
              f"C_c={result['c_c']:.4f}")
    if result.get("simulation"):
        t = Table(["rate", "accepted", "avg latency"],
                  title="simulated load sweep:")
        for row in result["simulation"]:
            t.add_row([row["rate"], row["accepted"], row["avg_latency"]],
                      digits=4)
        print(t.render())
    if args.save:
        from pathlib import Path

        Path(args.save).write_text(
            _json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"response saved to {args.save}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Print a running service's counters (``repro status``)."""
    import json as _json

    from repro.service import ServiceClient

    try:
        with ServiceClient(args.host, args.port,
                           timeout=args.timeout) as client:
            status = client.status()
    except ConnectionRefusedError:
        raise SystemExit(f"no service at {args.host}:{args.port}")
    if args.json:
        print(_json.dumps(status.to_dict(), indent=2, sort_keys=True))
        return 0
    d = status.to_dict()
    print(f"service version:  {d['package_version']}  "
          f"(uptime {d['uptime_seconds']:.1f}s)")
    print(f"requests:         {d['requests_total']}")
    s = d["served"]
    print(f"  served:         computed={s['computed']} store={s['store']} "
          f"inflight={s['inflight']}")
    r = d["rejected"]
    print(f"  rejected:       backpressure={r['backpressure']} "
          f"admission={r['admission']} protocol={r['protocol']} "
          f"failed={r['failed']}")
    print(f"queue:            {d['queue_depth']}/{d['queue_capacity']} "
          f"pending, {d['inflight']} in flight")
    st = d["store"]
    print(f"store:            {st['size']} entries, {st['hits']} hits / "
          f"{st['misses']} misses")
    b = d["batches"]
    mean = f"{b['mean_size']:.2f}" if b["mean_size"] is not None else "-"
    print(f"batches:          {b['count']} "
          f"(mean size {mean}, max {b['max_size']})")
    p = d["pool"]
    print(f"pool:             {p['workers']} workers "
          f"({'active' if p['active'] else 'idle'})")
    return 0


def _study_status(result) -> dict:
    """The console ``/status`` payload for a served variation study."""
    return {
        "type": "variation_study",
        "name": result.spec.name,
        "cells": result.spec.cells,
        "rates": list(result.rates),
        "records": [r.name for r in result.records],
    }


def _study_metrics(result) -> str:
    """The per-cell counters summed, as Prometheus text exposition."""
    from repro.obs.export import render_prometheus

    counters: dict = {}
    for r in result.records:
        for key, value in r.counters.items():
            counters[key] = counters.get(key, 0) + value
    return render_prometheus(
        {"counters": counters, "gauges": {}, "histograms": {}})


def _report_study(args: argparse.Namespace) -> int:
    """Run a variation study and emit/serve its reports."""
    import json as _json
    from pathlib import Path

    from repro.reporting import (
        StudySpec,
        render_html,
        render_markdown,
        run_variation_study,
        serve_console,
    )

    try:
        spec = StudySpec.load(args.study)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"{args.study}: {exc}")
    if args.baseline:
        spec = StudySpec.from_dict(
            {**spec.to_dict(), "baseline": args.baseline})
    result = run_variation_study(spec, workers=args.workers)
    markdown = render_markdown(result)
    if args.md:
        Path(args.md).write_text(markdown)
        print(f"markdown report written to {args.md}")
    if args.html:
        Path(args.html).write_text(render_html(result))
        print(f"html report written to {args.html}")
    if args.records:
        rows = [r.to_dict() for r in result.records]
        Path(args.records).write_text(
            _json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"{len(rows)} variation records written to {args.records}")
    if args.serve:
        page = render_html(result)
        status = _study_status(result)
        metrics = _study_metrics(result)
        serve_console(
            host=args.serve_host,
            port=args.serve_port,
            metrics=lambda: metrics,
            status=lambda: status,
            report=lambda: page,
        )
        return 0
    if not (args.md or args.html or args.records):
        print(markdown, end="")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Trace summaries and variation studies (``repro report``)."""
    if args.study:
        return _report_study(args)
    if not args.trace_file:
        raise SystemExit(
            "provide a trace file or --study SPEC (see 'repro report -h')")
    import json as _json

    from repro.obs.report import load_trace, render_report, report_json

    try:
        data = load_trace(args.trace_file)
    except FileNotFoundError:
        raise SystemExit(f"no trace file at {args.trace_file}")
    if args.json:
        print(_json.dumps(report_json(data, slowest=args.slowest),
                          indent=2, sort_keys=True))
    else:
        print(render_report(data, slowest=args.slowest))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate the requested paper figures as text renderings."""
    from repro.experiments import (
        render_fig1, render_fig2, render_fig3, render_fig4, render_fig5,
        render_fig6, run_fig1, run_fig2, run_fig3, run_fig4, run_fig5,
        run_fig6,
    )

    _apply_cache_flag(args)
    config = SimulationConfig(
        warmup_cycles=args.warmup, measure_cycles=args.measure, seed=7,
        engine=args.engine,
    )
    wanted = set(args.fig) if args.fig else {1, 2, 3, 4, 5, 6}
    fig3_cache = None
    fig5_cache = None
    if 1 in wanted:
        print(render_fig1(run_fig1()), "\n")
    if 2 in wanted:
        print(render_fig2(run_fig2()), "\n")
    if 3 in wanted or 6 in wanted or (args.report and 5 not in wanted):
        fig3_cache = run_fig3(num_random=args.randoms, config=config,
                              workers=args.workers)
    if 3 in wanted:
        print(render_fig3(fig3_cache), "\n")
    if 4 in wanted:
        print(render_fig4(run_fig4()), "\n")
    if 5 in wanted:
        fig5_cache = run_fig5(num_random=3, config=config,
                              workers=args.workers)
        print(render_fig5(fig5_cache), "\n")
    if 6 in wanted:
        print(render_fig6(run_fig6(sim_result=fig3_cache)), "\n")
    if args.report:
        from pathlib import Path

        from repro.reporting import (
            records_from_sim_figure,
            render_html,
            wrap_records,
        )

        records = []
        names = []
        for label, res in (("fig3", fig3_cache), ("fig5", fig5_cache)):
            if res is not None:
                records += records_from_sim_figure(res, engine=label)
                names.append(f"{label} ({res.topology_name})")
        result = wrap_records(records, name=" + ".join(names))
        Path(args.report).write_text(render_html(result))
        print(f"html report written to {args.report}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-aware task scheduling (Orduña et al., "
                    "ICPP 2000) — reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a structured JSONL trace of the run "
                             "(spans, events, metrics; inspect it with "
                             "'repro report PATH')")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_topology_args(p, with_load=True):
        p.add_argument("--kind", default="irregular",
                       choices=["irregular", "four-rings", "mesh", "torus",
                                "hypercube"])
        p.add_argument("--switches", type=int, default=16)
        p.add_argument("--seed", type=int, default=42)
        if with_load:
            p.add_argument("--load", help="load a topology JSON instead")

    def add_exec_args(p):
        p.add_argument("--workers", type=_workers_arg, default=None,
                       metavar="N|auto",
                       help="process-pool width for restarts/sweep points "
                            "(default: $REPRO_WORKERS or serial; results "
                            "are identical either way)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the distance/routing-table cache")
        # SUPPRESS: only override the root-level --trace when actually
        # given after the subcommand, so both positions work.
        p.add_argument("--trace", metavar="PATH", default=argparse.SUPPRESS,
                       help="write a structured JSONL trace of the run")

    p = sub.add_parser("topology", help="generate/describe a network")
    add_topology_args(p)
    p.add_argument("--save", help="write the topology as JSON")
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser("schedule", help="run the communication-aware scheduler")
    add_topology_args(p)
    add_exec_args(p)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--randoms", type=int, default=5,
                   help="random mappings to compare against")
    p.add_argument("--save", help="write the partition as JSON")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("simulate", help="sweep mappings through the simulator")
    add_topology_args(p)
    add_exec_args(p)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--randoms", type=int, default=2)
    p.add_argument("--points", type=int, default=5)
    p.add_argument("--max-rate", type=float, default=0.02)
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--measure", type=int, default=1200)
    p.add_argument("--engine", default="fast",
                   choices=list(ENGINE_NAMES),
                   help="simulator engine ('reference'/'fast'/'batch' are "
                        "bit-identical; 'vector' is the many-seed kernel "
                        "under the statistical-equivalence contract)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("metrics", help="classical topology metrics")
    add_topology_args(p)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("failures",
                       help="fault-injection study (links/switches, "
                            "repair vs reschedule)")
    add_topology_args(p)
    add_exec_args(p)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--limit", type=int, default=0,
                   help="only the first N scenarios (0 = all)")
    p.add_argument("--faults", type=int, default=1, metavar="K",
                   help="faults per scenario: 1 = exhaustive single faults, "
                        ">=2 = sampled k-fault scenarios (default: 1)")
    p.add_argument("--samples", type=int, default=10,
                   help="scenarios to sample when --faults >= 2 (default: 10)")
    p.add_argument("--include-switch-faults", action="store_true",
                   help="also fail whole switches, not just links")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="checkpoint file: record completed scenarios and "
                        "resume an interrupted study bit-identically")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="also write the study as a self-contained HTML "
                        "report")
    p.set_defaults(func=cmd_failures)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    add_exec_args(p)
    p.add_argument("--fig", type=int, action="append",
                   choices=[1, 2, 3, 4, 5, 6],
                   help="figure number (repeatable; default: all)")
    p.add_argument("--randoms", type=int, default=9)
    p.add_argument("--warmup", type=int, default=400)
    p.add_argument("--measure", type=int, default=1500)
    p.add_argument("--engine", default="fast",
                   choices=list(ENGINE_NAMES),
                   help="simulator engine for the fig3/fig5 sweeps "
                        "(results are engine-independent)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="also write the fig3/fig5 sweeps as a "
                        "self-contained HTML report")
    p.set_defaults(func=cmd_figures)

    def add_service_addr(p):
        from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

        p.add_argument("--host", default=DEFAULT_HOST)
        p.add_argument("--port", type=int, default=DEFAULT_PORT)

    p = sub.add_parser("serve",
                       help="run the resident scheduling service")
    add_service_addr(p)
    p.add_argument("--workers", type=_workers_arg, default=None,
                   metavar="N|auto",
                   help="persistent pool width (default: $REPRO_WORKERS "
                        "or serial)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="queued-request bound before backpressure "
                        "(default: 64)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="micro-batch size cap (default: 16)")
    p.add_argument("--batch-window", type=float, default=0.02,
                   help="seconds the batcher waits to fill (default: 0.02)")
    p.add_argument("--store-ttl", type=float, default=300.0,
                   help="result-store TTL in seconds, 0 disables expiry "
                        "(default: 300)")
    p.add_argument("--max-switches", type=int, default=256,
                   help="admission bound on topology size (default: 256)")
    p.add_argument("--no-batching", action="store_true",
                   help="dispatch one request per pool job")
    p.add_argument("--no-dedup", action="store_true",
                   help="disable the result store and request coalescing")
    p.add_argument("--wal", metavar="PATH", default=None,
                   help="journal accepted requests to PATH and replay "
                        "unfinished ones on the next start (crash safety)")
    p.add_argument("--deadline", type=float, default=0.0,
                   help="per-attempt worker deadline in seconds; a wedged "
                        "batch is killed, restarted and answered with a "
                        "typed error (0 disables; default: 0)")
    p.add_argument("--max-redispatch", type=int, default=2,
                   help="re-dispatches after a worker crash before the "
                        "request fails typed (default: 2)")
    p.add_argument("--heartbeat", type=float, default=0.0,
                   help="probe an idle pool every N seconds and restart it "
                        "on a missed beat (0 disables; default: 0)")
    p.add_argument("--console-port", type=int, default=None, metavar="PORT",
                   help="also serve the HTTP operator console on PORT "
                        "(/healthz, /metrics, /status, /report; 0 picks "
                        "an ephemeral port; default: off)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("chaos",
                       help="run the deterministic fault-injection "
                            "scenarios against a fresh service")
    p.add_argument("--scenario", action="append", metavar="NAME",
                   help="scenario to run (repeatable; default: all; "
                        "see --list)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed; the same seed injects the same "
                        "faults at the same points (default: 0)")
    p.add_argument("--workdir", metavar="PATH", default=None,
                   help="directory for latches/journals (default: a fresh "
                        "temp dir)")
    p.add_argument("--json", action="store_true",
                   help="print structured per-scenario results")
    p.add_argument("--list", action="store_true",
                   help="list scenario names and exit")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("submit",
                       help="submit one request to a running service")
    add_service_addr(p)
    add_topology_args(p)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--method", default="tabu",
                   choices=["tabu", "annealing", "genetic", "gsa", "random"])
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority (higher runs sooner; does not "
                        "change the result)")
    p.add_argument("--simulate", action="store_true",
                   help="also sweep the mapping through the simulator")
    p.add_argument("--request", metavar="FILE",
                   help="submit a schedule_request JSON file instead of "
                        "building one from the topology flags")
    p.add_argument("--no-wait", action="store_true",
                   help="enqueue and return a ticket instead of waiting")
    p.add_argument("--timeout", type=float, default=120.0)
    p.add_argument("--json", action="store_true",
                   help="print the raw canonical response payload")
    p.add_argument("--save", metavar="PATH",
                   help="write the canonical response payload as JSON")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="print a running service's counters")
    add_service_addr(p)
    p.add_argument("--timeout", type=float, default=10.0)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("report",
                       help="summarize a trace, or run a variation study "
                            "and render/serve its reports")
    p.add_argument("trace_file", nargs="?", default=None,
                   help="trace written by --trace PATH")
    p.add_argument("--slowest", type=int, default=10,
                   help="how many of the slowest spans to list (default: 10)")
    p.add_argument("--json", action="store_true",
                   help="print the trace report as one machine-readable "
                        "JSON document instead of text")
    p.add_argument("--study", metavar="SPEC", default=None,
                   help="run the variation study described by a "
                        "variation_study_spec JSON file instead of "
                        "summarizing a trace")
    p.add_argument("--md", metavar="PATH", default=None,
                   help="write the study's comparative markdown report")
    p.add_argument("--html", metavar="PATH", default=None,
                   help="write the study as one self-contained HTML file")
    p.add_argument("--records", metavar="PATH", default=None,
                   help="write the study's variation records as JSON")
    p.add_argument("--baseline", metavar="NAME", default=None,
                   help="override the spec's baseline mapping for deltas "
                        "and regression flags")
    p.add_argument("--workers", type=_workers_arg, default=None,
                   metavar="N|auto",
                   help="fan the study's load sweeps onto a process pool "
                        "(results are identical either way)")
    p.add_argument("--serve", action="store_true",
                   help="after the study, serve the report on the operator "
                        "console until interrupted")
    p.add_argument("--host", dest="serve_host", default="127.0.0.1",
                   help="console bind address for --serve "
                        "(default: 127.0.0.1)")
    p.add_argument("--port", dest="serve_port", type=int, default=8080,
                   help="console port for --serve (default: 8080)")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    With ``--trace PATH`` the whole command executes inside
    :func:`repro.obs.run.trace_run`: the manifest (command, seed, engine,
    workers, versions) is the file's first record and the final metrics
    snapshot its last.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path and args.command != "report":
        from repro.obs import collect_manifest, trace_run

        manifest = collect_manifest(
            args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            seed=getattr(args, "seed", None),
            engine=getattr(args, "engine", None),
            workers=getattr(args, "workers", None),
        )
        with trace_run(trace_path, manifest=manifest):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
