"""Random irregular topology generation per the paper's constraints.

Section 5.1: "The network topology is irregular and has been generated
randomly.  [...] there are exactly 4 workstations connected to each switch
[...] two neighbouring switches are connected by a single link [...] all
the switches have the same size.  We assumed 8-port switches [...] From
these 4 ports, three of them are used in each switch when the topology is
generated.  The remaining port is left open."

So the inter-switch graph is a random connected simple *d*-regular graph
(d = 3 in the paper).  We generate it with the configuration (pairing)
model plus rejection of non-simple / disconnected outcomes, which samples
(asymptotically) uniformly over simple d-regular graphs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.topology.graph import Link, Topology
from repro.util.rng import SeedLike, as_rng

_MAX_ATTEMPTS = 5000


def random_irregular_topology(
    num_switches: int,
    *,
    degree: int = 3,
    hosts_per_switch: int = 4,
    switch_ports: int = 8,
    seed: SeedLike = None,
    name: str = "",
) -> Topology:
    """Generate a random connected simple ``degree``-regular switch network.

    Parameters
    ----------
    num_switches:
        Number of switches; ``num_switches * degree`` must be even and
        ``num_switches > degree`` (otherwise no simple regular graph exists).
    degree:
        Inter-switch links per switch (paper: 3 of the 4 free ports).
    hosts_per_switch, switch_ports:
        Forwarded to :class:`~repro.topology.graph.Topology`; the paper uses
        4 hosts on 8-port switches.
    seed:
        Anything accepted by :func:`repro.util.rng.as_rng`.

    Raises
    ------
    ValueError
        If the parameters admit no simple regular graph, or if rejection
        sampling fails to find a connected simple graph (practically
        impossible for the paper's sizes).
    """
    n, d = int(num_switches), int(degree)
    if d < 1:
        raise ValueError(f"degree must be >= 1, got {d}")
    if n <= d:
        raise ValueError(f"need num_switches > degree for a simple graph ({n} <= {d})")
    if (n * d) % 2 != 0:
        raise ValueError(f"num_switches * degree must be even, got {n}*{d}")
    if d > switch_ports - hosts_per_switch:
        raise ValueError(
            f"degree {d} exceeds inter-switch ports "
            f"({switch_ports} - {hosts_per_switch} hosts)"
        )
    rng = as_rng(seed)
    for _ in range(_MAX_ATTEMPTS):
        links = _pairing_model(n, d, rng)
        if links is None:
            continue
        topo = Topology(
            n,
            links,
            hosts_per_switch=hosts_per_switch,
            switch_ports=switch_ports,
            name=name or f"irregular-{n}sw-d{d}",
        )
        if topo.is_connected():
            return topo
    raise ValueError(
        f"failed to sample a connected simple {d}-regular graph on {n} switches "
        f"after {_MAX_ATTEMPTS} attempts"
    )


def _pairing_model(n: int, d: int, rng: np.random.Generator) -> Optional[List[Link]]:
    """One configuration-model draw; None when the matching is not simple.

    Each switch contributes ``d`` stubs; a uniformly random perfect matching
    of the stubs induces a multigraph.  We reject draws containing loops or
    parallel edges rather than repairing them, to keep the distribution
    (asymptotically) uniform.
    """
    stubs = np.repeat(np.arange(n), d)
    rng.shuffle(stubs)
    links: List[Link] = []
    seen = set()
    for i in range(0, stubs.size, 2):
        u, v = int(stubs[i]), int(stubs[i + 1])
        if u == v:
            return None
        key = (u, v) if u < v else (v, u)
        if key in seen:
            return None
        seen.add(key)
        links.append(key)
    return links


__all__ = ["random_irregular_topology"]
