"""Hand-designed and regular topologies.

:func:`four_rings_topology` rebuilds the "specially designed" 24-switch
network of Figure 4: four interconnected rings of six switches each, used
to test whether the scheduling technique recovers well-defined clusters.
The remaining constructors (ring, mesh, torus, hypercube, ...) exercise the
paper's claim that the technique "is applicable to both regular and
irregular topologies".
"""

from __future__ import annotations

from typing import Dict, List


from repro.topology.graph import Link, Topology
from repro.util.rng import SeedLike, as_rng


def four_rings_topology(
    *,
    rings: int = 4,
    ring_size: int = 6,
    links_between_adjacent_rings: int = 1,
    hosts_per_switch: int = 4,
    switch_ports: int = 8,
) -> Topology:
    """Interconnected rings: the "especially designed" network of Figure 4.

    ``rings`` rings of ``ring_size`` switches each, joined in a cycle of
    rings: ring ``r`` connects to ring ``r+1 (mod rings)`` through
    ``links_between_adjacent_rings`` links at evenly spaced attachment
    points (offset by half a ring on the far side, so inter-ring links do
    not concentrate on one arc).

    The natural clusters are the rings themselves — switches
    ``r*ring_size .. (r+1)*ring_size - 1`` form ring ``r`` — and with the
    default sparse interconnect the scheduling technique recovers them
    exactly, reproducing the paper's Figure 4 observation.  The sparse
    inter-ring bisection is also what makes random mappings collapse in
    Figure 5 (the ~5× throughput gap).
    """
    if rings < 3:
        raise ValueError(f"a cycle of rings needs >= 3 rings, got {rings}")
    if ring_size < 3:
        raise ValueError(f"ring_size must be >= 3, got {ring_size}")
    if not (1 <= links_between_adjacent_rings <= ring_size):
        raise ValueError(
            f"links_between_adjacent_rings must be in 1..{ring_size}, "
            f"got {links_between_adjacent_rings}"
        )
    n = rings * ring_size
    links: List[Link] = []

    def node(r: int, k: int) -> int:
        return r * ring_size + k % ring_size

    for r in range(rings):
        for k in range(ring_size):
            links.append((node(r, k), node(r, k + 1)))

    per_pair = links_between_adjacent_rings
    for r in range(rings):
        nr = (r + 1) % rings
        for i in range(per_pair):
            ka = (i * ring_size) // per_pair
            kb = ka + ring_size // 2
            links.append((node(r, ka), node(nr, kb)))

    return Topology(
        n,
        links,
        hosts_per_switch=hosts_per_switch,
        switch_ports=switch_ports,
        name=f"{rings}x{ring_size}-rings",
    )


def ring_topology(n: int, *, hosts_per_switch: int = 4, switch_ports: int = 8) -> Topology:
    """A single cycle of ``n`` switches."""
    if n < 3:
        raise ValueError(f"a ring needs >= 3 switches, got {n}")
    links = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n, links, hosts_per_switch=hosts_per_switch,
                    switch_ports=switch_ports, name=f"ring-{n}")


def mesh_topology(rows: int, cols: int, *, hosts_per_switch: int = 4,
                  switch_ports: int = 8) -> Topology:
    """A 2-D mesh (no wraparound)."""
    if rows < 1 or cols < 1:
        raise ValueError(f"mesh dimensions must be >= 1, got {rows}x{cols}")
    if rows * cols < 2:
        raise ValueError("mesh needs at least 2 switches")
    links: List[Link] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                links.append((u, u + 1))
            if r + 1 < rows:
                links.append((u, u + cols))
    return Topology(rows * cols, links, hosts_per_switch=hosts_per_switch,
                    switch_ports=switch_ports, name=f"mesh-{rows}x{cols}")


def torus_topology(rows: int, cols: int, *, hosts_per_switch: int = 4,
                   switch_ports: int = 8) -> Topology:
    """A 2-D torus (mesh with wraparound); needs rows, cols >= 3 to stay simple."""
    if rows < 3 or cols < 3:
        raise ValueError(f"torus dimensions must be >= 3 to avoid parallel links, "
                         f"got {rows}x{cols}")
    links: List[Link] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            links.append((u, r * cols + (c + 1) % cols))
            links.append((u, ((r + 1) % rows) * cols + c))
    return Topology(rows * cols, links, hosts_per_switch=hosts_per_switch,
                    switch_ports=switch_ports, name=f"torus-{rows}x{cols}")


def hypercube_topology(dim: int, *, hosts_per_switch: int = 4,
                       switch_ports: int | None = None) -> Topology:
    """A ``dim``-dimensional binary hypercube (degree = dim)."""
    if dim < 1:
        raise ValueError(f"hypercube dimension must be >= 1, got {dim}")
    n = 1 << dim
    links = [(u, u ^ (1 << b)) for u in range(n) for b in range(dim) if u < (u ^ (1 << b))]
    ports = switch_ports if switch_ports is not None else hosts_per_switch + dim
    return Topology(n, links, hosts_per_switch=hosts_per_switch,
                    switch_ports=ports, name=f"hypercube-{dim}d")


def complete_topology(n: int, *, hosts_per_switch: int = 4,
                      switch_ports: int | None = None) -> Topology:
    """A fully connected switch network (degree = n-1)."""
    if n < 2:
        raise ValueError(f"complete topology needs >= 2 switches, got {n}")
    links = [(u, v) for u in range(n) for v in range(u + 1, n)]
    ports = switch_ports if switch_ports is not None else hosts_per_switch + n - 1
    return Topology(n, links, hosts_per_switch=hosts_per_switch,
                    switch_ports=ports, name=f"complete-{n}")


def star_topology(n: int, *, hosts_per_switch: int = 4,
                  switch_ports: int | None = None) -> Topology:
    """Switch 0 at the centre, switches 1..n-1 as leaves."""
    if n < 2:
        raise ValueError(f"star topology needs >= 2 switches, got {n}")
    links = [(0, i) for i in range(1, n)]
    ports = switch_ports if switch_ports is not None else hosts_per_switch + n - 1
    return Topology(n, links, hosts_per_switch=hosts_per_switch,
                    switch_ports=ports, name=f"star-{n}")


def binary_tree_topology(levels: int, *, hosts_per_switch: int = 4,
                         switch_ports: int = 8) -> Topology:
    """A complete binary tree with ``levels`` levels (2**levels - 1 switches)."""
    if levels < 1:
        raise ValueError(f"tree needs >= 1 level, got {levels}")
    n = (1 << levels) - 1
    links = [((i - 1) // 2, i) for i in range(1, n)]
    return Topology(n, links, hosts_per_switch=hosts_per_switch,
                    switch_ports=switch_ports, name=f"btree-{levels}")


def clustered_random_topology(
    clusters: int,
    cluster_size: int,
    *,
    intra_degree: int = 2,
    inter_links_per_cluster: int = 2,
    hosts_per_switch: int = 4,
    switch_ports: int = 8,
    seed: SeedLike = None,
) -> Topology:
    """Random topology with planted cluster structure.

    Each cluster is a ring of ``cluster_size`` switches (guaranteeing
    intra-cluster connectivity), optionally densified with random chords up
    to ``intra_degree`` extra links per switch, and clusters are joined in a
    cycle by ``inter_links_per_cluster`` random links to the next cluster.
    Used by tests and ablations: the planted partition should be recovered
    by the scheduling technique and should score a high clustering
    coefficient.
    """
    if clusters < 2:
        raise ValueError(f"need >= 2 clusters, got {clusters}")
    if cluster_size < 3:
        raise ValueError(f"cluster_size must be >= 3, got {cluster_size}")
    rng = as_rng(seed)
    n = clusters * cluster_size
    links = set()

    def add(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in links:
            return False
        links.add(key)
        return True

    for c in range(clusters):
        base = c * cluster_size
        for k in range(cluster_size):
            add(base + k, base + (k + 1) % cluster_size)
        # Random chords inside the cluster.
        extra = max(0, intra_degree - 2) * cluster_size // 2
        attempts = 0
        while extra > 0 and attempts < 100 * cluster_size:
            u, v = rng.integers(0, cluster_size, size=2)
            if add(base + int(u), base + int(v)):
                extra -= 1
            attempts += 1

    for c in range(clusters):
        nxt = (c + 1) % clusters
        placed = 0
        attempts = 0
        while placed < inter_links_per_cluster and attempts < 1000:
            u = c * cluster_size + int(rng.integers(0, cluster_size))
            v = nxt * cluster_size + int(rng.integers(0, cluster_size))
            if add(u, v):
                placed += 1
            attempts += 1

    max_deg = switch_ports - hosts_per_switch
    degs: Dict[int, int] = {i: 0 for i in range(n)}
    for u, v in links:
        degs[u] += 1
        degs[v] += 1
    ports = switch_ports
    if max(degs.values()) > max_deg:
        ports = hosts_per_switch + max(degs.values())
    return Topology(n, sorted(links), hosts_per_switch=hosts_per_switch,
                    switch_ports=ports,
                    name=f"clustered-{clusters}x{cluster_size}")


__all__ = [
    "four_rings_topology",
    "ring_topology",
    "mesh_topology",
    "torus_topology",
    "hypercube_topology",
    "complete_topology",
    "star_topology",
    "binary_tree_topology",
    "clustered_random_topology",
]
